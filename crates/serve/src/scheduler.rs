//! The request scheduler — sharded in fair mode, round-barriered in
//! deterministic mode — and the in-process client API.
//!
//! ## Modes
//!
//! * **Deterministic** ([`SchedulerMode::Deterministic`]) — one global
//!   scheduler thread owns the whole [`SourcePool`] and waits until
//!   `expected_clients` clients have registered, then serves in
//!   *rounds*: a round runs only when every open client has a request
//!   pending, and grants are issued in ascending client id. Which bytes
//!   each client receives is then a pure function of the pool config
//!   and the per-client request traces — independent of thread timing,
//!   connection order, worker count **and shard count**: in this mode
//!   `shards` only widens the producer worker layout
//!   (`workers.max(shards)`), never the consumption order, so the
//!   served allocation is byte-identical at shards 1, 2 and 8 (pinned
//!   by `tests/sharding.rs` and the `serve_load` determinism section).
//! * **Fair** ([`SchedulerMode::Fair`]) — one scheduler shard per
//!   configured core. Shard `k` of `S` owns the pool partition
//!   `{ slot | slot % S == k }` ([`SourcePool::start_partition`]) and
//!   the clients `{ id | id % S == k }`. Serving is deficit
//!   round-robin: each pass grants at most one queued request per
//!   client, so a greedy client cannot starve its neighbours. An idle
//!   shard **steals** the oldest queued request from a loaded sibling,
//!   so one hot shard cannot leave the others' sources idle.
//!
//! ## Backpressure classes (fair mode)
//!
//! Admission is checked in severity order and every rejection is a
//! typed *reply*, never a stalled socket:
//!
//! 1. [`ServeError::Shedding`] — the service-wide queued count is at or
//!    over the operator-set [`ServeConfig::shed_limit`] watermark;
//! 2. [`ServeError::RateLimited`] — the per-client token bucket
//!    ([`RateLimit`]) lacks tokens for the request, with the refill
//!    wait advertised in microseconds;
//! 3. [`ServeError::Busy`] — the home shard's `max_in_flight` budget is
//!    exhausted.
//!
//! Deterministic mode serves a closed, pre-registered client set and
//! applies none of these (the round barrier is its admission control).

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{ErrorKind, Write};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use strentropy::pool::PoolConfig;

use crate::chaos::{ChaosAction, ChaosInjector};
use crate::error::ServeError;
use crate::pool::{ConsumptionPolicy, SourcePool, SourceStatus};
use crate::supervisor::{supervise, IncidentKind, IncidentLog, RestartPolicy, SupervisionOutcome};

/// How long a client waits for its grant. Generous: a pool rebuilding a
/// dead ring mid-request stays well under this.
const REPLY_TIMEOUT: Duration = Duration::from_secs(120);

/// Scheduler idle tick — a scheduler (or shard) blocked with no local
/// work re-checks for stealable work and shutdown at least this often.
const IDLE_TICK: Duration = Duration::from_millis(1);

/// How requests are admitted and ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerMode {
    /// Round-barrier serving for reproducible byte allocation; see the
    /// module docs.
    Deterministic {
        /// Clients that must register before any request is served.
        expected_clients: usize,
    },
    /// Deficit round-robin with a bounded per-shard in-flight budget.
    Fair {
        /// Queued requests each shard admits before new ones get
        /// [`ServeError::Busy`]. Zero rejects everything (useful for
        /// drills).
        max_in_flight: usize,
    },
}

/// Per-client token-bucket rate limit (fair mode only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Steady-state refill rate, in granted bytes per second.
    pub bytes_per_sec: f64,
    /// Bucket capacity — the largest burst a client can draw after
    /// idling.
    pub burst_bytes: f64,
}

/// Full service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The source pool to serve from.
    pub pool: PoolConfig,
    /// Producer worker threads per shard (clamped to `[1, slots]`).
    pub workers: usize,
    /// Scheduler shards (fair mode; clamped to `[1, sources]`). In
    /// deterministic mode this only widens the producer worker layout.
    pub shards: usize,
    /// Scheduling mode.
    pub mode: SchedulerMode,
    /// Per-client token-bucket rate limit; `None` disables the
    /// `RateLimited` class. Fair mode only.
    pub rate_limit: Option<RateLimit>,
    /// Service-wide queued-request watermark for overload shedding;
    /// `None` disables the `Shedding` class. Operators set this below
    /// `shards * max_in_flight` to cap aggregate queueing independent
    /// of shard count. Fair mode only.
    pub shed_limit: Option<usize>,
    /// Weight pool consumption by each source's online Markov
    /// min-entropy estimate: sources whose published estimate falls
    /// below `pool.demotion_threshold()` are demoted to a
    /// [`DEMOTED_WEIGHT`](crate::pool::DEMOTED_WEIGHT)-per-cycle share.
    /// **Fair mode only** — the deterministic round barrier ignores the
    /// flag and always consumes strictly, so its byte-allocation digest
    /// stays identical at every shard count with or without weighting.
    pub entropy_weighting: bool,
    /// Restart policy every supervised unit (scheduler shards, pool
    /// workers) runs under.
    pub restart: RestartPolicy,
    /// Chaos triggers polled at scheduler loop boundaries; `None` (the
    /// default) injects nothing. Drills arm this.
    pub chaos: Option<Arc<ChaosInjector>>,
}

impl ServeConfig {
    /// A configuration with one worker, one shard, no rate limiting or
    /// shedding, the default restart policy and no chaos — override
    /// fields as needed.
    #[must_use]
    pub fn new(pool: PoolConfig, mode: SchedulerMode) -> Self {
        ServeConfig {
            pool,
            workers: 1,
            shards: 1,
            mode,
            rate_limit: None,
            shed_limit: None,
            entropy_weighting: false,
            restart: RestartPolicy::default(),
            chaos: None,
        }
    }
}

type ReplyTx = SyncSender<Result<Vec<u8>, ServeError>>;

/// One finished grant (or typed rejection) for a queued request.
#[derive(Debug)]
pub struct Completion {
    /// The caller-chosen token identifying the request.
    pub token: u64,
    /// The granted bytes or the typed error.
    pub result: Result<Vec<u8>, ServeError>,
}

/// A lock-protected completion mailbox with a readiness wake-up, the
/// asynchronous reply path of the socket event loop: the scheduler
/// pushes a [`Completion`] and writes one byte into the wake stream,
/// which the event loop holds in its `poll(2)` set.
#[derive(Debug)]
pub struct CompletionQueue {
    inner: Mutex<Vec<Completion>>,
    wake: UnixStream,
    wake_full: AtomicU64,
    wake_errors: AtomicU64,
}

impl CompletionQueue {
    /// Wraps the write half of a wake channel (the caller keeps the
    /// read half in its poll set). `wake` should be nonblocking: a full
    /// wake pipe means a wake-up is already pending, which is exactly
    /// when dropping the byte is harmless.
    #[must_use]
    pub fn new(wake: UnixStream) -> Self {
        CompletionQueue {
            inner: Mutex::new(Vec::new()),
            wake,
            wake_full: AtomicU64::new(0),
            wake_errors: AtomicU64::new(0),
        }
    }

    /// Delivers one completion and signals the wake channel.
    pub fn push(&self, token: u64, result: Result<Vec<u8>, ServeError>) {
        self.inner
            .lock()
            .expect("completion queue lock")
            .push(Completion { token, result });
        // EAGAIN-safe wake: a full pipe (`WouldBlock`) is benign — the
        // consumer polls the read half level-triggered and at least one
        // unread byte is already in the pipe, so the wakeup cannot be
        // lost — but it is *counted*, never silently swallowed. A
        // transient `Interrupted` retries once; anything else means the
        // consumer is gone and is counted as a wake error.
        match (&self.wake).write(&[1u8]) {
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                self.wake_full.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {
                match (&self.wake).write(&[1u8]) {
                    Ok(_) => {}
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        self.wake_full.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        self.wake_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(_) => {
                self.wake_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Wake-pipe writes dropped because the pipe was already full (a
    /// pending wakeup made them redundant; level-triggered polling
    /// guarantees delivery).
    #[must_use]
    pub fn wake_full(&self) -> u64 {
        self.wake_full.load(Ordering::Relaxed)
    }

    /// Wake-pipe writes that failed outright (consumer gone).
    #[must_use]
    pub fn wake_errors(&self) -> u64 {
        self.wake_errors.load(Ordering::Relaxed)
    }

    /// Takes every pending completion.
    #[must_use]
    pub fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.inner.lock().expect("completion queue lock"))
    }
}

/// Where a grant result is delivered.
enum Sink {
    /// A blocked in-process caller.
    Sync(ReplyTx),
    /// A completion mailbox (the socket event loop), keyed by token.
    Queue { queue: Arc<CompletionQueue>, token: u64 },
}

impl Sink {
    fn send(self, result: Result<Vec<u8>, ServeError>) {
        match self {
            // A vanished caller is not the scheduler's problem.
            Sink::Sync(reply) => drop(reply.send(result)),
            Sink::Queue { queue, token } => queue.push(token, result),
        }
    }
}

enum Msg {
    Register {
        client_id: u32,
        reply: SyncSender<Result<(), ServeError>>,
    },
    Request {
        client_id: u32,
        nbytes: usize,
        sink: Sink,
    },
    Close {
        client_id: u32,
    },
    Status {
        reply: SyncSender<Vec<(usize, SourceStatus)>>,
    },
    /// Graceful-drain phase 2: stop admitting, serve what is queued
    /// until the deadline, refuse the remainder typed. Replies whether
    /// the queue fully drained in time.
    Drain {
        deadline: Instant,
        reply: SyncSender<bool>,
    },
    Shutdown,
}

/// The running entropy service: owns one scheduler thread per shard.
#[derive(Debug)]
pub struct EntropyService {
    shards: Vec<Sender<Msg>>,
    handles: Vec<JoinHandle<()>>,
    incidents: IncidentLog,
    quarantined: Arc<Vec<AtomicBool>>,
}

impl EntropyService {
    /// Builds the pool partitions (fail-fast) and spawns the scheduler
    /// shard threads.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid pool configuration or a source
    /// that fails to build.
    pub fn start(config: &ServeConfig) -> Result<Self, ServeError> {
        config.pool.validate()?;
        let slots = config.pool.sources.len();
        let incidents = IncidentLog::new();
        match config.mode {
            SchedulerMode::Deterministic { .. } => {
                // One global consumer keeps the round-robin interleave
                // and the round barrier identical at every shard count;
                // shards only widen the producer side.
                let workers = config.workers.max(config.shards).clamp(1, slots.max(1));
                let pool = SourcePool::start_partition_supervised(
                    &config.pool,
                    1,
                    0,
                    workers,
                    &config.restart,
                    &incidents,
                )?;
                let mode = config.mode;
                let quarantined = Arc::new(vec![AtomicBool::new(false)]);
                let (tx, rx) = mpsc::channel();
                let policy = config.restart.clone();
                let log = incidents.clone();
                let chaos = config.chaos.clone();
                let flags = Arc::clone(&quarantined);
                let mut sched = BarrierScheduler::new(pool, mode, chaos, log.clone());
                // Startup spawn: one scheduler thread per service.
                let handle = thread::Builder::new()
                    .name("strent-serve-scheduler".to_owned())
                    .spawn(move || {
                        let outcome = supervise(
                            "scheduler",
                            &policy,
                            &log,
                            &mut sched,
                            |_| {},
                            |s| s.run(&rx),
                        );
                        if let SupervisionOutcome::Escalated { .. } = outcome {
                            flags[0].store(true, Ordering::SeqCst);
                            log.record(
                                "scheduler",
                                IncidentKind::Quarantined,
                                "restart budget exhausted; pending requests refused",
                            );
                            sched.abandon();
                        }
                    })
                    .map_err(ServeError::Io)?;
                Ok(EntropyService {
                    shards: vec![tx],
                    handles: vec![handle],
                    incidents,
                    quarantined,
                })
            }
            SchedulerMode::Fair { max_in_flight } => {
                let shard_count = config.shards.clamp(1, slots.max(1));
                let mut pools = Vec::with_capacity(shard_count);
                for k in 0..shard_count {
                    let mut pool = SourcePool::start_partition_supervised(
                        &config.pool,
                        shard_count,
                        k,
                        config.workers,
                        &config.restart,
                        &incidents,
                    )?;
                    if config.entropy_weighting {
                        // Each shard weights its own partition by the
                        // estimates riding on its delivered chunks — a
                        // pure function of those chunks, so still
                        // worker-count invariant per shard.
                        pool.set_consumption_policy(ConsumptionPolicy::Weighted {
                            threshold: config.pool.demotion_threshold(),
                        });
                    }
                    pools.push(pool);
                }
                let shared: Vec<Arc<ShardShared>> = (0..shard_count)
                    .map(|_| Arc::new(ShardShared::default()))
                    .collect();
                let quarantined: Arc<Vec<AtomicBool>> = Arc::new(
                    (0..shard_count).map(|_| AtomicBool::new(false)).collect(),
                );
                let mut senders = Vec::with_capacity(shard_count);
                let mut handles = Vec::with_capacity(shard_count);
                for (k, pool) in pools.into_iter().enumerate() {
                    let (tx, rx) = mpsc::channel();
                    let mut shard = FairShard {
                        pool,
                        shard_id: k,
                        shared: shared.clone(),
                        max_in_flight,
                        shed_limit: config.shed_limit,
                        rate: config.rate_limit,
                        buckets: BTreeMap::new(),
                        registered: BTreeSet::new(),
                        ticks: 0,
                        chaos: config.chaos.clone(),
                        draining: false,
                        log: incidents.clone(),
                    };
                    let policy = config.restart.clone();
                    let log = incidents.clone();
                    let flags = Arc::clone(&quarantined);
                    // Startup spawn: one thread per scheduler shard.
                    let handle = thread::Builder::new()
                        .name(format!("strent-serve-shard-{k}"))
                        .spawn(move || {
                            let unit = format!("shard-{k}");
                            let outcome = supervise(
                                &unit,
                                &policy,
                                &log,
                                &mut shard,
                                |_| {},
                                |s| s.run(&rx),
                            );
                            if let SupervisionOutcome::Escalated { .. } = outcome {
                                // Quarantine: new registrations reroute
                                // to the next healthy sibling; what was
                                // already queued is refused typed (or
                                // was stolen by siblings first).
                                flags[k].store(true, Ordering::SeqCst);
                                log.record(
                                    &unit,
                                    IncidentKind::Quarantined,
                                    "restart budget exhausted; clients rerouted to siblings",
                                );
                                shard.shutdown();
                            }
                        })
                        .map_err(ServeError::Io)?;
                    senders.push(tx);
                    handles.push(handle);
                }
                Ok(EntropyService {
                    shards: senders,
                    handles,
                    incidents,
                    quarantined,
                })
            }
        }
    }

    /// The incident log every supervised unit of this service (shards,
    /// workers) records into.
    #[must_use]
    pub fn incidents(&self) -> &IncidentLog {
        &self.incidents
    }

    /// Per-shard quarantine flags (true once a shard exhausted its
    /// restart budget and was taken out of rotation).
    #[must_use]
    pub fn quarantined(&self) -> Vec<bool> {
        self.quarantined
            .iter()
            .map(|flag| flag.load(Ordering::SeqCst))
            .collect()
    }

    /// A cloneable handle frontends use to register clients.
    #[must_use]
    pub fn connector(&self) -> Connector {
        Connector {
            shards: self.shards.clone(),
            quarantined: Arc::clone(&self.quarantined),
        }
    }

    /// Registers a client with the given id and returns its handle.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] for a duplicate id,
    /// [`ServeError::Shutdown`] if the scheduler is gone.
    pub fn connect(&self, client_id: u32) -> Result<EntropyClient, ServeError> {
        self.connector().connect(client_id)
    }

    /// Snapshot of every pool slot's health/lifecycle status, merged
    /// across shards in global slot order.
    ///
    /// # Errors
    ///
    /// [`ServeError::Shutdown`] or [`ServeError::Timeout`] if a shard
    /// cannot answer.
    pub fn status(&self) -> Result<Vec<SourceStatus>, ServeError> {
        self.connector().status()
    }

    /// Graceful-drain phase: every shard stops admitting new requests
    /// (refusing them with [`ServeError::Draining`]), serves what is
    /// already queued until `budget` elapses, and refuses the
    /// remainder typed. Returns whether every shard fully drained in
    /// time; a shard that already escalated counts as not drained.
    pub fn drain(&self, budget: Duration) -> bool {
        let deadline = Instant::now() + budget;
        let mut all = true;
        let mut replies = Vec::with_capacity(self.shards.len());
        for tx in &self.shards {
            let (reply, rx) = mpsc::sync_channel(1);
            if tx.send(Msg::Drain { deadline, reply }).is_err() {
                all = false;
                continue;
            }
            replies.push(rx);
        }
        for rx in replies {
            match recv_reply(&rx) {
                Ok(drained) => all &= drained,
                Err(_) => all = false,
            }
        }
        all
    }

    /// The full graceful-shutdown state machine: stop admitting, drain
    /// in-flight grants within `budget`, then stop the shards (which
    /// flush and stop their pool partitions) and join every thread.
    /// Returns whether the drain completed before the deadline.
    ///
    /// # Errors
    ///
    /// [`ServeError::Shutdown`] if a scheduler thread panicked.
    pub fn shutdown_graceful(self, budget: Duration) -> Result<bool, ServeError> {
        let drained = self.drain(budget);
        self.shutdown()?;
        Ok(drained)
    }

    /// Stops every shard (which stops its pool partition) and joins.
    ///
    /// # Errors
    ///
    /// [`ServeError::Shutdown`] if a scheduler thread panicked.
    pub fn shutdown(mut self) -> Result<(), ServeError> {
        for tx in &self.shards {
            let _ = tx.send(Msg::Shutdown);
        }
        let mut panicked = false;
        for handle in self.handles.drain(..) {
            panicked |= handle.join().is_err();
        }
        if panicked {
            return Err(ServeError::Shutdown);
        }
        Ok(())
    }
}

impl Drop for EntropyService {
    fn drop(&mut self) {
        for tx in &self.shards {
            let _ = tx.send(Msg::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A cloneable client-registration handle (used by the socket event
/// loop). Routes client `id` to its home shard `id % shards` — or,
/// when that shard has been quarantined by escalation, walks forward
/// to the first healthy sibling so registration keeps working through
/// a shard loss.
#[derive(Debug, Clone)]
pub struct Connector {
    shards: Vec<Sender<Msg>>,
    quarantined: Arc<Vec<AtomicBool>>,
}

impl Connector {
    fn route(&self, client_id: u32) -> &Sender<Msg> {
        let n = self.shards.len();
        let home = client_id as usize % n;
        for step in 0..n {
            let k = (home + step) % n;
            if !self.quarantined[k].load(Ordering::SeqCst) {
                return &self.shards[k];
            }
        }
        // Every shard quarantined: send to the home shard and let the
        // dead channel surface as a typed Shutdown.
        &self.shards[home]
    }

    /// Registers a client with the given id.
    ///
    /// # Errors
    ///
    /// Same conditions as [`EntropyService::connect`].
    pub fn connect(&self, client_id: u32) -> Result<EntropyClient, ServeError> {
        // Resolve the route once and pin the client to it, so a
        // quarantine flag flipping mid-registration cannot split the
        // register and request paths across two shards.
        let route = self.route(client_id).clone();
        let (reply, rx) = mpsc::sync_channel(1);
        route
            .send(Msg::Register { client_id, reply })
            .map_err(|_| ServeError::Shutdown)?;
        recv_reply(&rx)??;
        Ok(EntropyClient {
            id: client_id,
            tx: route,
        })
    }

    /// Snapshot of every pool slot's health, lifecycle and entropy
    /// status, merged across shards in global slot order — what a
    /// frontend feeds into `ServerStats::publish_entropy`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Shutdown`] or [`ServeError::Timeout`] if a shard
    /// cannot answer.
    pub fn status(&self) -> Result<Vec<SourceStatus>, ServeError> {
        let mut tagged = Vec::new();
        for tx in &self.shards {
            let (reply, rx) = mpsc::sync_channel(1);
            tx.send(Msg::Status { reply })
                .map_err(|_| ServeError::Shutdown)?;
            tagged.extend(recv_reply(&rx)?);
        }
        tagged.sort_by_key(|(slot, _)| *slot);
        Ok(tagged.into_iter().map(|(_, status)| status).collect())
    }
}

/// Waits for one reply with the standard timeout mapping.
fn recv_reply<T>(rx: &Receiver<T>) -> Result<T, ServeError> {
    match rx.recv_timeout(REPLY_TIMEOUT) {
        Ok(value) => Ok(value),
        Err(RecvTimeoutError::Timeout) => Err(ServeError::Timeout),
        Err(RecvTimeoutError::Disconnected) => Err(ServeError::Shutdown),
    }
}

/// An in-process client of the service. Dropping it closes the client
/// (in deterministic mode, removing it from the round barrier).
#[derive(Debug)]
pub struct EntropyClient {
    id: u32,
    tx: Sender<Msg>,
}

impl EntropyClient {
    /// This client's id (its rank in the deterministic serving order).
    #[must_use]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Requests exactly `nbytes` conditioned, health-passed bytes,
    /// blocking until granted.
    ///
    /// # Errors
    ///
    /// A typed backpressure rejection ([`ServeError::Busy`],
    /// [`ServeError::RateLimited`], [`ServeError::Shedding`]) when
    /// admission refused the request; [`ServeError::Shutdown`] /
    /// [`ServeError::Timeout`] when the service went away.
    pub fn request(&self, nbytes: usize) -> Result<Vec<u8>, ServeError> {
        if nbytes == 0 {
            return Ok(Vec::new());
        }
        let (reply, rx) = mpsc::sync_channel(1);
        self.tx
            .send(Msg::Request {
                client_id: self.id,
                nbytes,
                sink: Sink::Sync(reply),
            })
            .map_err(|_| ServeError::Shutdown)?;
        recv_reply(&rx)?
    }

    /// Submits a request whose result is delivered to `queue` under
    /// `token` instead of blocking the caller — the socket event loop's
    /// request path. A zero-byte request completes through the queue
    /// like any other.
    ///
    /// # Errors
    ///
    /// [`ServeError::Shutdown`] if the scheduler is gone (nothing was
    /// queued); every later outcome, including typed backpressure,
    /// arrives as the completion's `result`.
    pub fn request_queued(
        &self,
        nbytes: usize,
        queue: &Arc<CompletionQueue>,
        token: u64,
    ) -> Result<(), ServeError> {
        if nbytes == 0 {
            queue.push(token, Ok(Vec::new()));
            return Ok(());
        }
        self.tx
            .send(Msg::Request {
                client_id: self.id,
                nbytes,
                sink: Sink::Queue {
                    queue: Arc::clone(queue),
                    token,
                },
            })
            .map_err(|_| ServeError::Shutdown)
    }

    /// Closes the client explicitly (equivalent to dropping it).
    pub fn close(self) {}
}

impl Drop for EntropyClient {
    fn drop(&mut self) {
        let _ = self.tx.send(Msg::Close { client_id: self.id });
    }
}

// ---------------------------------------------------------------------
// Deterministic mode: the global round-barrier scheduler.
// ---------------------------------------------------------------------

struct ClientSlot {
    pending: VecDeque<(usize, Sink)>,
}

struct BarrierScheduler {
    pool: SourcePool,
    mode: SchedulerMode,
    clients: BTreeMap<u32, ClientSlot>,
    registered: usize,
    /// Loop-boundary counter the chaos injector is keyed on. Persists
    /// across supervised restarts so one-shot triggers stay one-shot.
    ticks: u64,
    chaos: Option<Arc<ChaosInjector>>,
    draining: bool,
    log: IncidentLog,
}

impl BarrierScheduler {
    fn new(
        pool: SourcePool,
        mode: SchedulerMode,
        chaos: Option<Arc<ChaosInjector>>,
        log: IncidentLog,
    ) -> Self {
        BarrierScheduler {
            pool,
            mode,
            clients: BTreeMap::new(),
            registered: 0,
            ticks: 0,
            chaos,
            draining: false,
            log,
        }
    }

    /// Escalation path: refuse everything still pending (typed, never
    /// silent) and stop the pool.
    fn abandon(&mut self) {
        for (_, slot) in std::mem::take(&mut self.clients) {
            for (_, sink) in slot.pending {
                sink.send(Err(ServeError::Shutdown));
            }
        }
        self.pool.shutdown();
    }

    fn run(&mut self, rx: &Receiver<Msg>) {
        loop {
            // Chaos triggers fire only here, at the clean top-of-loop
            // boundary — no message half-applied, no grant half-issued
            // — so a supervised restart resumes byte-transparently.
            self.ticks += 1;
            if let Some(chaos) = &self.chaos {
                match chaos.poll(0, self.ticks) {
                    Some(ChaosAction::Panic) => {
                        panic!("injected scheduler panic at tick {}", self.ticks)
                    }
                    Some(ChaosAction::Stall(pause)) => thread::sleep(pause),
                    None => {}
                }
            }
            // Drain every queued message first so registrations and
            // closes are visible before the next round, then serve.
            loop {
                match rx.try_recv() {
                    Ok(msg) => {
                        if !self.handle(msg) {
                            self.pool.shutdown();
                            return;
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        self.pool.shutdown();
                        return;
                    }
                }
            }
            if self.barrier_ready() {
                self.serve_one_pass();
            } else {
                // Idle (or barred): block for the next message. The
                // idle tick bounds the wait so a shutdown is never
                // missed for long.
                match rx.recv_timeout(IDLE_TICK) {
                    Ok(msg) => {
                        if !self.handle(msg) {
                            self.pool.shutdown();
                            return;
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => {
                        self.pool.shutdown();
                        return;
                    }
                }
            }
        }
    }

    /// Applies one message; `false` means shut down.
    fn handle(&mut self, msg: Msg) -> bool {
        match msg {
            Msg::Register { client_id, reply } => {
                let result = if self.draining {
                    Err(ServeError::Draining)
                } else {
                    match self.clients.entry(client_id) {
                        Entry::Occupied(_) => Err(ServeError::Protocol(format!(
                            "client id {client_id} is already registered"
                        ))),
                        Entry::Vacant(slot) => {
                            slot.insert(ClientSlot {
                                pending: VecDeque::new(),
                            });
                            self.registered += 1;
                            Ok(())
                        }
                    }
                };
                let _ = reply.send(result);
            }
            Msg::Request {
                client_id,
                nbytes,
                sink,
            } => {
                if self.draining {
                    sink.send(Err(ServeError::Draining));
                } else if self.clients.contains_key(&client_id) {
                    let slot = self.clients.get_mut(&client_id).expect("checked");
                    slot.pending.push_back((nbytes, sink));
                } else {
                    sink.send(Err(ServeError::Protocol(format!(
                        "client {client_id} sent a request before registering"
                    ))));
                }
            }
            Msg::Close { client_id } => {
                // Dropping the slot drops any pending sync senders
                // (their clients observe Shutdown) and orphans queued
                // tokens (the event loop ignores stale generations).
                self.clients.remove(&client_id);
            }
            Msg::Status { reply } => {
                let _ = reply.send(self.pool.slot_status());
            }
            Msg::Drain { deadline, reply } => {
                self.draining = true;
                let drained = self.drain_until(deadline);
                if !drained {
                    self.log.record(
                        "scheduler",
                        IncidentKind::DrainTimedOut,
                        "deterministic drain deadline hit; remainder refused",
                    );
                }
                let _ = reply.send(drained);
            }
            Msg::Shutdown => return false,
        }
        true
    }

    /// Serves the already-pending requests until the queues are empty
    /// or the deadline passes; no new request can arrive (admission is
    /// closed), so repeated passes over the pending set are still
    /// deterministic. Anything left at the deadline is refused with
    /// [`ServeError::Draining`].
    fn drain_until(&mut self, deadline: Instant) -> bool {
        while self.clients.values().any(|s| !s.pending.is_empty()) {
            if Instant::now() >= deadline {
                for slot in self.clients.values_mut() {
                    while let Some((_, sink)) = slot.pending.pop_front() {
                        sink.send(Err(ServeError::Draining));
                    }
                }
                return false;
            }
            self.serve_one_pass();
        }
        true
    }

    /// The round barrier: everyone expected has registered, at least
    /// one client is still open, and every open client has a request.
    fn barrier_ready(&self) -> bool {
        let SchedulerMode::Deterministic { expected_clients } = self.mode else {
            return false;
        };
        self.registered >= expected_clients
            && !self.clients.is_empty()
            && self.clients.values().all(|s| !s.pending.is_empty())
    }

    /// Grants one pending request per client, in ascending client-id
    /// order.
    fn serve_one_pass(&mut self) {
        let ids: Vec<u32> = self.clients.keys().copied().collect();
        for id in ids {
            let Some(slot) = self.clients.get_mut(&id) else {
                continue;
            };
            let Some((nbytes, sink)) = slot.pending.pop_front() else {
                continue;
            };
            let grant = self.pool.read_bytes(nbytes);
            sink.send(grant);
        }
    }
}

// ---------------------------------------------------------------------
// Fair mode: per-core shards with work stealing.
// ---------------------------------------------------------------------

/// A queued, admitted request. `home` is the shard whose budget it
/// occupies (always the shard that admitted it; thieves execute the
/// grant but credit the home shard's budget on completion).
struct Job {
    nbytes: usize,
    sink: Sink,
    client_id: u32,
    home: usize,
}

/// The cross-shard state work stealing needs: the stealable queue and
/// the admitted-but-unreplied count.
#[derive(Default)]
struct ShardShared {
    injector: Mutex<VecDeque<Job>>,
    in_flight: AtomicUsize,
}

/// Per-client token bucket.
struct TokenBucket {
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(limit: &RateLimit) -> Self {
        TokenBucket {
            tokens: limit.burst_bytes,
            last: Instant::now(),
        }
    }

    /// Takes `nbytes` tokens, or reports the refill wait in µs.
    fn try_take(&mut self, nbytes: usize, limit: &RateLimit) -> Result<(), u64> {
        let now = Instant::now();
        let elapsed = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + elapsed * limit.bytes_per_sec).min(limit.burst_bytes);
        #[allow(clippy::cast_precision_loss)]
        let need = nbytes as f64;
        if self.tokens >= need {
            self.tokens -= need;
            return Ok(());
        }
        let wait_s = (need - self.tokens) / limit.bytes_per_sec.max(f64::MIN_POSITIVE);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        Err((wait_s * 1e6).min(1e15) as u64 + 1)
    }
}

struct FairShard {
    pool: SourcePool,
    shard_id: usize,
    shared: Vec<Arc<ShardShared>>,
    max_in_flight: usize,
    shed_limit: Option<usize>,
    rate: Option<RateLimit>,
    buckets: BTreeMap<u32, TokenBucket>,
    registered: BTreeSet<u32>,
    /// Loop-boundary counter the chaos injector is keyed on. Persists
    /// across supervised restarts so one-shot triggers stay one-shot.
    ticks: u64,
    chaos: Option<Arc<ChaosInjector>>,
    draining: bool,
    log: IncidentLog,
}

impl FairShard {
    fn run(&mut self, rx: &Receiver<Msg>) {
        loop {
            // Chaos triggers fire only here, at the clean top-of-loop
            // boundary — between serving passes, never mid-grant — so
            // a supervised restart resumes without losing a job.
            self.ticks += 1;
            if let Some(chaos) = &self.chaos {
                match chaos.poll(self.shard_id, self.ticks) {
                    Some(ChaosAction::Panic) => panic!(
                        "injected shard {} panic at tick {}",
                        self.shard_id, self.ticks
                    ),
                    Some(ChaosAction::Stall(pause)) => thread::sleep(pause),
                    None => {}
                }
            }
            loop {
                match rx.try_recv() {
                    Ok(msg) => {
                        if !self.handle(msg) {
                            self.shutdown();
                            return;
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        self.shutdown();
                        return;
                    }
                }
            }
            let worked = self.serve_pass();
            if !worked {
                // Idle: block for the next message; the tick bounds the
                // wait so stealable work on a sibling is found quickly.
                match rx.recv_timeout(IDLE_TICK) {
                    Ok(msg) => {
                        if !self.handle(msg) {
                            self.shutdown();
                            return;
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => {
                        self.shutdown();
                        return;
                    }
                }
            }
        }
    }

    fn shutdown(&mut self) {
        // Refuse everything still queued locally so no sink is left
        // dangling, then stop the pool partition.
        let jobs = std::mem::take(&mut *self.own_queue());
        for job in jobs {
            self.shared[job.home].in_flight.fetch_sub(1, Ordering::Relaxed);
            job.sink.send(Err(ServeError::Shutdown));
        }
        self.pool.shutdown();
    }

    fn own_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
        self.shared[self.shard_id]
            .injector
            .lock()
            .expect("injector lock")
    }

    /// Applies one message; `false` means shut down.
    fn handle(&mut self, msg: Msg) -> bool {
        match msg {
            Msg::Register { client_id, reply } => {
                let result = if self.draining {
                    Err(ServeError::Draining)
                } else if self.registered.insert(client_id) {
                    Ok(())
                } else {
                    Err(ServeError::Protocol(format!(
                        "client id {client_id} is already registered"
                    )))
                };
                let _ = reply.send(result);
            }
            Msg::Request {
                client_id,
                nbytes,
                sink,
            } => self.admit(client_id, nbytes, sink),
            Msg::Close { client_id } => {
                self.registered.remove(&client_id);
                self.buckets.remove(&client_id);
                // Drop the client's still-queued jobs; anything already
                // stolen or granted completes into a stale token.
                let mut queue = self.own_queue();
                let dropped: Vec<Job> = {
                    let mut kept = VecDeque::with_capacity(queue.len());
                    let mut dropped = Vec::new();
                    while let Some(job) = queue.pop_front() {
                        if job.client_id == client_id {
                            dropped.push(job);
                        } else {
                            kept.push_back(job);
                        }
                    }
                    *queue = kept;
                    dropped
                };
                drop(queue);
                for job in dropped {
                    self.shared[job.home].in_flight.fetch_sub(1, Ordering::Relaxed);
                    job.sink.send(Err(ServeError::Shutdown));
                }
            }
            Msg::Status { reply } => {
                let _ = reply.send(self.pool.slot_status());
            }
            Msg::Drain { deadline, reply } => {
                self.draining = true;
                let drained = self.drain_until(deadline);
                if !drained {
                    self.log.record(
                        &format!("shard-{}", self.shard_id),
                        IncidentKind::DrainTimedOut,
                        "drain deadline hit; remainder refused",
                    );
                }
                let _ = reply.send(drained);
            }
            Msg::Shutdown => return false,
        }
        true
    }

    /// Serves the local queue until it is empty or the deadline
    /// passes; admission is already closed, and siblings may keep
    /// stealing concurrently. Anything left at the deadline is refused
    /// with [`ServeError::Draining`] — typed, never dropped.
    fn drain_until(&mut self, deadline: Instant) -> bool {
        loop {
            if Instant::now() >= deadline {
                let jobs = std::mem::take(&mut *self.own_queue());
                if jobs.is_empty() {
                    return true;
                }
                for job in jobs {
                    self.shared[job.home].in_flight.fetch_sub(1, Ordering::Relaxed);
                    job.sink.send(Err(ServeError::Draining));
                }
                return false;
            }
            let batch = self.pop_local_pass();
            if batch.is_empty() {
                return true;
            }
            for job in batch {
                self.grant(job);
            }
        }
    }

    /// Admission control, most severe class first; see module docs.
    fn admit(&mut self, client_id: u32, nbytes: usize, sink: Sink) {
        if self.draining {
            sink.send(Err(ServeError::Draining));
            return;
        }
        let queued: usize = self
            .shared
            .iter()
            .map(|s| s.in_flight.load(Ordering::Relaxed))
            .sum();
        if let Some(limit) = self.shed_limit {
            if queued >= limit {
                sink.send(Err(ServeError::Shedding { queued }));
                return;
            }
        }
        if let Some(limit) = self.rate {
            let bucket = self
                .buckets
                .entry(client_id)
                .or_insert_with(|| TokenBucket::new(&limit));
            if let Err(retry_after_us) = bucket.try_take(nbytes, &limit) {
                sink.send(Err(ServeError::RateLimited { retry_after_us }));
                return;
            }
        }
        let mine = self.shared[self.shard_id].in_flight.load(Ordering::Relaxed);
        if mine >= self.max_in_flight {
            sink.send(Err(ServeError::Busy { in_flight: mine }));
            return;
        }
        // Fair mode admits unregistered clients on first contact.
        self.registered.insert(client_id);
        self.shared[self.shard_id]
            .in_flight
            .fetch_add(1, Ordering::Relaxed);
        self.own_queue().push_back(Job {
            nbytes,
            sink,
            client_id,
            home: self.shard_id,
        });
    }

    /// One serving pass: a DRR pass over the local queue (at most one
    /// job per client, oldest first), or — when the local queue is
    /// empty — one job stolen from the most loaded sibling. Returns
    /// whether any grant was issued.
    fn serve_pass(&mut self) -> bool {
        let batch = self.pop_local_pass();
        if !batch.is_empty() {
            for job in batch {
                self.grant(job);
            }
            return true;
        }
        if let Some(job) = self.steal() {
            self.grant(job);
            return true;
        }
        false
    }

    /// Takes at most one queued job per client, preserving arrival
    /// order — the deficit-round-robin pass.
    fn pop_local_pass(&mut self) -> Vec<Job> {
        let mut queue = self.own_queue();
        let mut taken = Vec::new();
        let mut seen = BTreeSet::new();
        let mut kept = VecDeque::with_capacity(queue.len());
        while let Some(job) = queue.pop_front() {
            if seen.insert(job.client_id) {
                taken.push(job);
            } else {
                kept.push_back(job);
            }
        }
        *queue = kept;
        taken
    }

    /// Steals the oldest job from the deepest sibling queue.
    fn steal(&mut self) -> Option<Job> {
        let mut victim: Option<usize> = None;
        let mut depth = 0usize;
        for (k, shard) in self.shared.iter().enumerate() {
            if k == self.shard_id {
                continue;
            }
            let queued = shard.injector.lock().expect("injector lock").len();
            if queued > depth {
                depth = queued;
                victim = Some(k);
            }
        }
        let victim = victim?;
        self.shared[victim]
            .injector
            .lock()
            .expect("injector lock")
            .pop_front()
    }

    fn grant(&mut self, job: Job) {
        /// Releases the home shard's budget on drop, so a panic inside
        /// `read_bytes` (the sink drops too — the client observes a
        /// typed disconnect) cannot leak the in-flight count and wedge
        /// admission forever.
        struct InFlightGuard<'a>(&'a AtomicUsize);
        impl Drop for InFlightGuard<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::Relaxed);
            }
        }
        let _guard = InFlightGuard(&self.shared[job.home].in_flight);
        let result = self.pool.read_bytes(job.nbytes);
        job.sink.send(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strent_trng::postprocess::ConditionerKind;

    fn small_serve_config(sources: usize, mode: SchedulerMode) -> ServeConfig {
        let mut pool = PoolConfig::mixed_default(sources, 42);
        pool.conditioner = ConditionerKind::Raw;
        pool.sample_period_factor = 2.37;
        pool.batch_raw_bits = 64;
        pool.warmup_periods = 16.0;
        let mut config = ServeConfig::new(pool, mode);
        config.workers = 2;
        config
    }

    #[test]
    fn single_client_stream_matches_the_pool_prefix() {
        let config = small_serve_config(
            2,
            SchedulerMode::Deterministic {
                expected_clients: 1,
            },
        );
        let service = EntropyService::start(&config).expect("starts");
        let client = service.connect(0).expect("registers");
        let mut served = Vec::new();
        for n in [8usize, 16, 4] {
            let grant = client.request(n).expect("granted");
            assert_eq!(grant.len(), n);
            served.extend(grant);
        }
        client.close();
        service.shutdown().expect("clean shutdown");

        let mut pool = SourcePool::start(&config.pool, 1).expect("starts");
        let expected = pool.read_bytes(28).expect("reads");
        assert_eq!(served, expected, "served stream is the pool stream");
    }

    #[test]
    fn zero_budget_rejects_with_typed_busy() {
        let config = small_serve_config(2, SchedulerMode::Fair { max_in_flight: 0 });
        let service = EntropyService::start(&config).expect("starts");
        let client = service.connect(1).expect("registers");
        let err = client.request(8).expect_err("budget 0 rejects everything");
        assert!(err.is_busy(), "{err}");
        assert!(matches!(err, ServeError::Busy { in_flight: 0 }));
        assert_eq!(err.backpressure(), Some(crate::error::BackpressureClass::Busy));
        service.shutdown().expect("clean shutdown");
    }

    #[test]
    fn fair_mode_serves_sequential_requests() {
        let config = small_serve_config(2, SchedulerMode::Fair { max_in_flight: 4 });
        let service = EntropyService::start(&config).expect("starts");
        let client = service.connect(9).expect("registers");
        let a = client.request(16).expect("granted");
        let b = client.request(16).expect("granted");
        assert_eq!(a.len(), 16);
        assert_ne!(a, b, "stream advances between grants");
        assert!(client.request(0).expect("trivial").is_empty());
        let status = service.status().expect("answers");
        assert_eq!(status.len(), 2);
        service.shutdown().expect("clean shutdown");
    }

    #[test]
    fn sharded_fair_mode_serves_every_client_and_merges_status() {
        let mut config = small_serve_config(4, SchedulerMode::Fair { max_in_flight: 8 });
        config.shards = 2;
        let service = EntropyService::start(&config).expect("starts");
        // Clients 0/2 land on shard 0, clients 1/3 on shard 1.
        for id in 0..4u32 {
            let client = service.connect(id).expect("registers");
            let grant = client.request(24).expect("granted");
            assert_eq!(grant.len(), 24);
            client.close();
        }
        let status = service.status().expect("answers");
        assert_eq!(status.len(), 4, "all slots visible through the merge");
        service.shutdown().expect("clean shutdown");
    }

    #[test]
    fn token_bucket_rejects_with_rate_limited_then_refills() {
        let mut config = small_serve_config(2, SchedulerMode::Fair { max_in_flight: 8 });
        // The slow refill keeps the bucket empty for 80 ms — wide
        // enough that scheduling hiccups between the burst grant and
        // the follow-up cannot refill it under a loaded test host.
        config.rate_limit = Some(RateLimit {
            bytes_per_sec: 200.0,
            burst_bytes: 16.0,
        });
        let service = EntropyService::start(&config).expect("starts");
        let client = service.connect(5).expect("registers");
        // The burst covers the first 16 bytes; the immediate follow-up
        // finds an empty bucket.
        let first = client.request(16).expect("burst granted");
        assert_eq!(first.len(), 16);
        let err = client.request(16).expect_err("bucket drained");
        let ServeError::RateLimited { retry_after_us } = err else {
            panic!("expected RateLimited, got {err}");
        };
        assert!(retry_after_us > 0);
        assert_eq!(
            err.backpressure(),
            Some(crate::error::BackpressureClass::RateLimited)
        );
        // 16 bytes at 200 B/s refill in 80 ms; wait it out and retry.
        thread::sleep(Duration::from_micros(retry_after_us) + Duration::from_millis(2));
        let retried = client.request(16).expect("refilled");
        assert_eq!(retried.len(), 16);
        service.shutdown().expect("clean shutdown");
    }

    #[test]
    fn shed_limit_zero_rejects_with_shedding_before_any_other_class() {
        let mut config = small_serve_config(2, SchedulerMode::Fair { max_in_flight: 8 });
        config.shed_limit = Some(0);
        // Even with a rate limiter configured, shedding wins: it is the
        // most severe class and is checked first.
        config.rate_limit = Some(RateLimit {
            bytes_per_sec: 1e9,
            burst_bytes: 1e9,
        });
        let service = EntropyService::start(&config).expect("starts");
        let client = service.connect(2).expect("registers");
        let err = client.request(8).expect_err("shedding everything");
        assert!(matches!(err, ServeError::Shedding { queued: 0 }), "{err}");
        assert_eq!(
            err.backpressure(),
            Some(crate::error::BackpressureClass::Shedding)
        );
        service.shutdown().expect("clean shutdown");
    }

    #[test]
    fn queued_requests_complete_through_the_completion_queue() {
        let config = small_serve_config(2, SchedulerMode::Fair { max_in_flight: 4 });
        let service = EntropyService::start(&config).expect("starts");
        let client = service.connect(7).expect("registers");
        let (wake_tx, wake_rx) = UnixStream::pair().expect("socketpair");
        wake_tx.set_nonblocking(true).expect("nonblocking");
        wake_rx.set_nonblocking(true).expect("nonblocking");
        let queue = Arc::new(CompletionQueue::new(wake_tx));
        client.request_queued(12, &queue, 0xA1).expect("queued");
        client.request_queued(0, &queue, 0xA2).expect("trivial");
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut done = Vec::new();
        while done.len() < 2 {
            assert!(Instant::now() < deadline, "completions never arrived");
            done.extend(queue.drain());
            thread::sleep(Duration::from_millis(1));
        }
        done.sort_by_key(|c| c.token);
        assert_eq!(done[0].token, 0xA1);
        assert_eq!(done[0].result.as_ref().expect("granted").len(), 12);
        assert_eq!(done[1].token, 0xA2);
        assert!(done[1].result.as_ref().expect("trivial").is_empty());
        service.shutdown().expect("clean shutdown");
    }

    #[test]
    fn duplicate_client_ids_are_rejected() {
        let config = small_serve_config(
            2,
            SchedulerMode::Deterministic {
                expected_clients: 1,
            },
        );
        let service = EntropyService::start(&config).expect("starts");
        let _first = service.connect(3).expect("registers");
        let err = service.connect(3).expect_err("duplicate id");
        assert!(matches!(err, ServeError::Protocol(_)), "{err}");
        service.shutdown().expect("clean shutdown");
    }

    #[test]
    fn drain_closes_admission_with_a_typed_refusal() {
        let config = small_serve_config(2, SchedulerMode::Fair { max_in_flight: 4 });
        let service = EntropyService::start(&config).expect("starts");
        let client = service.connect(1).expect("registers");
        let first = client.request(8).expect("granted");
        assert_eq!(first.len(), 8);
        assert!(
            service.drain(Duration::from_secs(5)),
            "empty queues drain instantly"
        );
        let err = client.request(8).expect_err("draining refuses requests");
        assert!(matches!(err, ServeError::Draining), "{err}");
        let err = service.connect(9).expect_err("draining refuses registration");
        assert!(matches!(err, ServeError::Draining), "{err}");
        service.shutdown().expect("clean shutdown");
    }

    #[test]
    fn scheduler_panic_restart_preserves_served_bytes() {
        let mode = SchedulerMode::Deterministic {
            expected_clients: 1,
        };
        let serve = |chaos: Option<Arc<ChaosInjector>>| {
            let mut config = small_serve_config(2, mode);
            config.restart.initial_backoff = Duration::from_micros(100);
            config.chaos = chaos;
            let service = EntropyService::start(&config).expect("starts");
            let client = service.connect(0).expect("registers");
            let mut served = Vec::new();
            for n in [8usize, 16, 8] {
                served.extend(client.request(n).expect("granted"));
            }
            client.close();
            let incidents = service.incidents().snapshot().len();
            service.shutdown().expect("clean shutdown");
            (served, incidents)
        };
        let (clean, _) = serve(None);
        let plan = crate::chaos::ChaosPlan::derive(11);
        let (chaotic, incidents) = serve(Some(ChaosInjector::from_plan(&plan, 1)));
        assert_eq!(chaotic, clean, "supervised restart perturbed served bytes");
        assert!(incidents >= 2, "panic and restart were recorded");
    }

    #[test]
    fn escalated_shard_quarantines_and_reroutes_new_clients() {
        let mut config = small_serve_config(4, SchedulerMode::Fair { max_in_flight: 8 });
        config.shards = 2;
        config.restart = RestartPolicy {
            initial_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_micros(200),
            max_restarts: 2,
            window: Duration::from_secs(60),
            jitter_seed: 5,
        };
        config.chaos = Some(ChaosInjector::escalation_storm(0, 2));
        let service = EntropyService::start(&config).expect("starts");
        let deadline = Instant::now() + Duration::from_secs(30);
        while !service.quarantined()[0] {
            assert!(Instant::now() < deadline, "shard 0 never escalated");
            thread::sleep(Duration::from_millis(1));
        }
        assert!(!service.quarantined()[1], "sibling stays healthy");
        // Client 0's home shard is dead; the connector walks to shard 1.
        let client = service.connect(0).expect("reroutes to the healthy sibling");
        let grant = client.request(16).expect("granted by the sibling");
        assert_eq!(grant.len(), 16);
        assert!(service.incidents().count_of("quarantined") >= 1);
        assert!(service.incidents().count_of("escalated") >= 1);
        client.close();
        service.shutdown().expect("clean shutdown");
    }

    #[test]
    fn deterministic_digests_ignore_entropy_weighting_at_any_shard_count() {
        let serve = |shards: usize, weighting: bool| {
            let mut config = small_serve_config(
                3,
                SchedulerMode::Deterministic {
                    expected_clients: 1,
                },
            );
            config.shards = shards;
            config.entropy_weighting = weighting;
            let service = EntropyService::start(&config).expect("starts");
            let client = service.connect(0).expect("registers");
            let mut served = Vec::new();
            for n in [16usize, 8, 24] {
                served.extend(client.request(n).expect("granted"));
            }
            client.close();
            service.shutdown().expect("clean shutdown");
            served
        };
        // The deterministic scheduler always consumes strictly, so the
        // weighting flag must never move a byte at any shard count.
        let baseline = serve(1, false);
        for shards in [1usize, 2, 8] {
            assert_eq!(
                serve(shards, true),
                baseline,
                "weighting perturbed the deterministic stream at {shards} shards"
            );
        }
    }

    #[test]
    fn fair_mode_entropy_weighting_publishes_estimates_and_serves() {
        let mut config = small_serve_config(3, SchedulerMode::Fair { max_in_flight: 8 });
        // A window small enough to saturate within the drill, so every
        // slot has a published verdict by the time we read the status.
        config.pool.entropy_order = 1;
        config.pool.entropy_window_bits = 128;
        config.pool.batch_raw_bits = 128;
        config.entropy_weighting = true;
        let service = EntropyService::start(&config).expect("starts");
        let client = service.connect(4).expect("registers");
        let grant = client.request(256).expect("granted under weighting");
        assert_eq!(grant.len(), 256);
        let status = service.status().expect("answers");
        assert_eq!(status.len(), 3);
        assert!(
            status.iter().all(|s| s.entropy.is_some()),
            "every slot delivered enough bits for a verdict: {status:?}"
        );
        let stats = crate::server::ServerStats::default();
        stats.publish_entropy(&status, config.pool.demotion_threshold());
        assert_eq!(stats.entropy_known(), 3);
        assert!(stats.entropy_min_millibits() > 0, "raw streams carry entropy");
        assert!(stats.entropy_demoted() <= 3);
        client.close();
        service.shutdown().expect("clean shutdown");
    }

    #[test]
    fn unregistered_deterministic_request_is_a_protocol_error() {
        let config = small_serve_config(
            2,
            SchedulerMode::Deterministic {
                expected_clients: 1,
            },
        );
        let service = EntropyService::start(&config).expect("starts");
        let registered = service.connect(0).expect("registers");
        // Forge a client handle that never registered.
        let rogue = EntropyClient {
            id: 99,
            tx: registered.tx.clone(),
        };
        let err = rogue.request(4).expect_err("must register first");
        assert!(matches!(err, ServeError::Protocol(_)), "{err}");
        drop(rogue);
        registered.close();
        service.shutdown().expect("clean shutdown");
    }
}
