//! The source pool: W worker threads producing batches from S sources,
//! consumed in a deterministic interleave.
//!
//! ## The determinism contract
//!
//! Each source's byte stream is a pure function of its spec and the
//! pool config (see [`PooledSource`]). Workers only decide *when* a
//! batch gets computed, never *what* it contains; the consumer side
//! reads batches strictly round-robin by source index (round `r` takes
//! batch `r` of source 0, then source 1, …). The concatenated stream is
//! therefore bit-identical for any worker count — the same contract the
//! experiment layer's `SweepRunner` pins for thread-count invariance,
//! applied to a long-running service.
//!
//! Backpressure inside the pool is structural: each source feeds a
//! bounded channel, so workers stall (cheaply, in simulated-time work
//! not yet done) when the consumer falls behind, and memory stays
//! bounded.
//!
//! ## Sharding
//!
//! A pool can also be started as one *partition* of a sharded service
//! ([`SourcePool::start_partition`]): shard `k` of `S` owns exactly the
//! global slots `{ i | i % S == k }`, builds them with their **global**
//! indices (so a slot's spec, seed derivation and replacement stream
//! are identical no matter how many shards exist), and consumes them
//! round-robin in ascending global-slot order. The full pool is the
//! special case `S = 1`.
//!
//! ## Supervision
//!
//! Every worker runs its producer loop under
//! [`supervise`](crate::supervisor::supervise): a panic (injected by a
//! chaos drill via `SourceSpec::panic_after_batches`, or a genuine
//! simulator bug) is caught, and before the restart the panicked slot
//! is **rebuilt from its spec and fast-forwarded** by its
//! already-delivered batch count — per-source streams are pure
//! functions of `(SourceSpec, PoolConfig)`, so the rebuilt source
//! resumes at exactly the next undelivered batch and the consumer
//! never sees a duplicated, dropped or reordered byte. Exhausting the
//! restart budget escalates: the worker's senders drop and the
//! consumer sees a typed `SourceFailed`, never a silent stall.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use strentropy::pool::{EntropyEstimate, PoolConfig, SourceSpec, SourceState, SourceStats};

use crate::error::ServeError;
use crate::source::PooledSource;
use crate::supervisor::{supervise, IncidentLog, RestartPolicy};

/// Batches a source may run ahead of the consumer.
const CHANNEL_DEPTH: usize = 2;

/// How long the consumer waits for one batch before declaring a source
/// stuck (a healthy batch takes milliseconds of host time).
const PRODUCE_TIMEOUT: Duration = Duration::from_secs(60);

/// Producer backoff while its bounded channel is full.
const SEND_BACKOFF: Duration = Duration::from_micros(200);

/// Chunks a healthy slot receives per weighted-consumption cycle.
pub const HEALTHY_WEIGHT: u64 = 4;

/// Chunks a demoted slot receives per weighted-consumption cycle — it
/// keeps contributing (and keeps its estimate fresh), just less often.
pub const DEMOTED_WEIGHT: u64 = 1;

/// How [`SourcePool::next_chunk`] orders consumption across slots.
///
/// Both policies are pure functions of the delivered chunks (the
/// entropy estimates they weight by ride *on* the chunks), so either
/// way the served stream stays worker-count and shard-count invariant.
/// The deterministic scheduler always runs [`ConsumptionPolicy::Strict`]
/// — its byte-allocation contract is pinned by digest tests — while
/// fair mode may opt into weighting via `ServeConfig::entropy_weighting`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsumptionPolicy {
    /// Strict round-robin by slot index: round `r` takes batch `r` of
    /// every slot in ascending order.
    #[default]
    Strict,
    /// Credit-based weighted round-robin: each refill cycle grants
    /// [`HEALTHY_WEIGHT`] chunks to slots whose published entropy
    /// estimate clears `threshold` (or is still unavailable — a short
    /// window is "no verdict yet", never "low entropy") and
    /// [`DEMOTED_WEIGHT`] to slots below it.
    Weighted {
        /// Demotion threshold, normally
        /// `PoolConfig::demotion_threshold()`.
        threshold: EntropyEstimate,
    },
}

/// One health-passed byte batch, tagged with its origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolChunk {
    /// Per-source batch sequence number (0-based).
    pub round: u64,
    /// Pool slot that produced the bytes.
    pub source: usize,
    /// The conditioned, health-passed bytes.
    pub bytes: Vec<u8>,
    /// Source lifecycle state after producing this batch.
    pub state: SourceState,
    /// Lifetime counters after producing this batch.
    pub stats: SourceStats,
    /// Ring generation that produced the batch.
    pub generation: u64,
    /// Online min-entropy estimate of the source's delivered window
    /// after this batch (`None` while the window is too short).
    pub entropy: Option<EntropyEstimate>,
}

/// Last observed condition of one pool slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceStatus {
    /// Lifecycle state.
    pub state: SourceState,
    /// Lifetime counters.
    pub stats: SourceStats,
    /// Ring generation.
    pub generation: u64,
    /// Last published entropy estimate (`None` until the source's
    /// sliding window saturates).
    pub entropy: Option<EntropyEstimate>,
}

impl Default for SourceStatus {
    fn default() -> Self {
        SourceStatus {
            state: SourceState::Healthy,
            stats: SourceStats::default(),
            generation: 0,
            entropy: None,
        }
    }
}

/// A running pool of entropy sources (possibly one shard's partition).
#[derive(Debug)]
pub struct SourcePool {
    receivers: Vec<Receiver<PoolChunk>>,
    /// Global slot index of each receiver, ascending.
    slots: Vec<usize>,
    workers: Vec<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
    cursor: usize,
    policy: ConsumptionPolicy,
    /// Chunks each slot may still draw this weighted cycle (empty under
    /// [`ConsumptionPolicy::Strict`], refilled from the slot statuses
    /// when exhausted).
    credits: Vec<u64>,
    rounds_completed: u64,
    status: Vec<SourceStatus>,
    buffer: VecDeque<u8>,
    finished: bool,
    incidents: IncidentLog,
}

impl SourcePool {
    /// Validates `config`, builds every source (fail-fast, in slot
    /// order) and spawns `workers` producer threads. Source `i` is
    /// owned by worker `i % workers`; ownership only affects wall-clock
    /// scheduling, never byte content.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid configuration or a source that
    /// fails to build (static verification, bad fault plan, …).
    pub fn start(config: &PoolConfig, workers: usize) -> Result<Self, ServeError> {
        SourcePool::start_partition(config, 1, 0, workers)
    }

    /// Starts shard `shard` of `shards`: builds only the global slots
    /// `{ i | i % shards == shard }`, each with its global index, so
    /// per-slot byte streams are identical at every shard count.
    /// Workers run under the default [`RestartPolicy`] with a fresh
    /// incident log.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SourcePool::start`], plus a config error
    /// for an out-of-range shard or an empty partition.
    pub fn start_partition(
        config: &PoolConfig,
        shards: usize,
        shard: usize,
        workers: usize,
    ) -> Result<Self, ServeError> {
        SourcePool::start_partition_supervised(
            config,
            shards,
            shard,
            workers,
            &RestartPolicy::default(),
            &IncidentLog::new(),
        )
    }

    /// [`SourcePool::start_partition`] with an explicit worker restart
    /// policy and a shared incident log (the scheduler passes its own
    /// log so shard and worker incidents land in one place).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SourcePool::start_partition`].
    pub fn start_partition_supervised(
        config: &PoolConfig,
        shards: usize,
        shard: usize,
        workers: usize,
        policy: &RestartPolicy,
        incidents: &IncidentLog,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        if shards == 0 || shard >= shards {
            return Err(ServeError::Protocol(format!(
                "shard {shard} of {shards} is not a valid partition"
            )));
        }
        let mut sources = Vec::new();
        let mut slots = Vec::new();
        for (i, spec) in config.sources.iter().enumerate() {
            if i % shards == shard {
                sources.push(PooledSource::build(i, spec, config)?);
                slots.push(i);
            }
        }
        if sources.is_empty() {
            return Err(ServeError::Protocol(format!(
                "shard {shard} of {shards} owns no slot of a {}-source pool",
                config.sources.len()
            )));
        }
        let worker_count = workers.clamp(1, sources.len());
        let shutdown = Arc::new(AtomicBool::new(false));

        let mut receivers = Vec::with_capacity(sources.len());
        let mut senders = Vec::with_capacity(sources.len());
        for _ in 0..sources.len() {
            let (tx, rx) = mpsc::sync_channel(CHANNEL_DEPTH);
            senders.push(Some(tx));
            receivers.push(rx);
        }

        let status = vec![SourceStatus::default(); sources.len()];
        let mut groups: Vec<Vec<WorkerSlot>> = (0..worker_count).map(|_| Vec::new()).collect();
        for (i, source) in sources.into_iter().enumerate() {
            let tx = senders[i].take().expect("one sender per source");
            let global = slots[i];
            let spec = config.sources[global].clone();
            groups[i % worker_count].push(WorkerSlot {
                panic_pending: spec.panic_after_batches.is_some(),
                source,
                tx,
                global,
                spec,
                delivered: 0,
                pending: None,
            });
        }

        let mut handles = Vec::with_capacity(worker_count);
        for (w, group) in groups.into_iter().enumerate() {
            let flag = Arc::clone(&shutdown);
            let policy = policy.clone();
            let log = incidents.clone();
            let mut state = WorkerState {
                slots: group,
                config: config.clone(),
                active: None,
            };
            let handle = thread::Builder::new()
                .name(format!("strent-serve-worker-{w}"))
                .spawn(move || {
                    let unit = format!("worker-{w}");
                    // Escalation drops the state (and with it every
                    // sender), so the consumer sees SourceFailed — a
                    // typed end, never a silent stall.
                    let _ = supervise(
                        &unit,
                        &policy,
                        &log,
                        &mut state,
                        |s| repair_worker(s, &flag),
                        |s| produce_loop(s, &flag),
                    );
                })
                .map_err(ServeError::Io)?;
            handles.push(handle);
        }

        Ok(SourcePool {
            receivers,
            slots,
            workers: handles,
            shutdown,
            cursor: 0,
            policy: ConsumptionPolicy::Strict,
            credits: Vec::new(),
            rounds_completed: 0,
            status,
            buffer: VecDeque::new(),
            finished: false,
            incidents: incidents.clone(),
        })
    }

    /// The incident log this pool's workers record into.
    #[must_use]
    pub fn incident_log(&self) -> &IncidentLog {
        &self.incidents
    }

    /// Number of pool slots owned by this pool (partition).
    #[must_use]
    pub fn sources(&self) -> usize {
        self.status.len()
    }

    /// Global slot indices owned by this pool (partition), ascending.
    #[must_use]
    pub fn slots(&self) -> &[usize] {
        &self.slots
    }

    /// Last observed status of every owned slot, tagged with its global
    /// slot index — what a sharded scheduler merges into a full view.
    #[must_use]
    pub fn slot_status(&self) -> Vec<(usize, SourceStatus)> {
        self.slots
            .iter()
            .copied()
            .zip(self.status.iter().copied())
            .collect()
    }

    /// Completed consumption rounds (every source read once per round).
    #[must_use]
    pub fn rounds_completed(&self) -> u64 {
        self.rounds_completed
    }

    /// Last observed status of every slot, in slot order.
    #[must_use]
    pub fn status(&self) -> &[SourceStatus] {
        &self.status
    }

    /// The consumption policy currently in force.
    #[must_use]
    pub fn consumption_policy(&self) -> ConsumptionPolicy {
        self.policy
    }

    /// Switches the consumption policy. Changing policy discards any
    /// partially-spent weighted cycle; the per-source streams themselves
    /// are untouched (a policy only reorders which slot is read next).
    pub fn set_consumption_policy(&mut self, policy: ConsumptionPolicy) {
        self.policy = policy;
        self.credits.clear();
    }

    /// The per-cycle chunk budget of a slot with the given published
    /// estimate: an estimate below the threshold demotes the slot; a
    /// missing estimate (window still short — the estimator's typed
    /// `InsufficientData` case) keeps full weight, because "no verdict
    /// yet" must never read as "low entropy".
    fn consumption_weight(entropy: Option<EntropyEstimate>, threshold: EntropyEstimate) -> u64 {
        match entropy {
            Some(estimate) if estimate < threshold => DEMOTED_WEIGHT,
            _ => HEALTHY_WEIGHT,
        }
    }

    /// The slot the current policy reads next (refilling the weighted
    /// credit cycle from the latest slot statuses when exhausted).
    fn next_slot(&mut self) -> usize {
        let n = self.receivers.len();
        match self.policy {
            ConsumptionPolicy::Strict => self.cursor,
            ConsumptionPolicy::Weighted { threshold } => {
                if self.credits.len() != n || self.credits.iter().all(|&c| c == 0) {
                    self.credits = self
                        .status
                        .iter()
                        .map(|s| Self::consumption_weight(s.entropy, threshold))
                        .collect();
                }
                let mut i = self.cursor % n;
                // Terminates: every weight is at least DEMOTED_WEIGHT,
                // so a fresh refill leaves no all-zero credit vector.
                while self.credits[i] == 0 {
                    i = (i + 1) % n;
                }
                i
            }
        }
    }

    /// The next chunk in the deterministic interleave — strict
    /// round-robin by slot index, or the credit-weighted order under
    /// [`ConsumptionPolicy::Weighted`]. Either way the interleave is a
    /// pure function of the delivered chunks, independent of worker
    /// count.
    ///
    /// # Errors
    ///
    /// [`ServeError::Timeout`] if the slot's worker produced nothing
    /// within the produce deadline, [`ServeError::SourceFailed`] if it
    /// died, [`ServeError::Shutdown`] after [`SourcePool::shutdown`].
    pub fn next_chunk(&mut self) -> Result<PoolChunk, ServeError> {
        if self.finished {
            return Err(ServeError::Shutdown);
        }
        let i = self.next_slot();
        let chunk = self.receivers[i]
            .recv_timeout(PRODUCE_TIMEOUT)
            .map_err(|e| match e {
                RecvTimeoutError::Timeout => ServeError::Timeout,
                RecvTimeoutError::Disconnected => ServeError::SourceFailed {
                    source: self.slots[i],
                },
            })?;
        self.status[i] = SourceStatus {
            state: chunk.state,
            stats: chunk.stats,
            generation: chunk.generation,
            entropy: chunk.entropy,
        };
        match self.policy {
            ConsumptionPolicy::Strict => {
                self.cursor = (self.cursor + 1) % self.receivers.len();
                if self.cursor == 0 {
                    self.rounds_completed += 1;
                }
            }
            ConsumptionPolicy::Weighted { .. } => {
                self.credits[i] -= 1;
                self.cursor = (i + 1) % self.receivers.len();
                if self.credits.iter().all(|&c| c == 0) {
                    self.rounds_completed += 1;
                }
            }
        }
        Ok(chunk)
    }

    /// Reads exactly `n` bytes of the pooled stream, buffering any
    /// chunk remainder for the next call.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SourcePool::next_chunk`].
    pub fn read_bytes(&mut self, n: usize) -> Result<Vec<u8>, ServeError> {
        while self.buffer.len() < n {
            let chunk = self.next_chunk()?;
            self.buffer.extend(chunk.bytes);
        }
        Ok(self.buffer.drain(..n).collect())
    }

    /// Stops the workers and joins them. Idempotent; also run on drop.
    pub fn shutdown(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.shutdown.store(true, Ordering::SeqCst);
        // Dropping the receivers disconnects every channel, so workers
        // blocked on a full send exit immediately.
        self.receivers.clear();
        for handle in self.workers.drain(..) {
            // A panicked worker already printed its message; the pool
            // is going away either way.
            if handle.join().is_err() {
                continue;
            }
        }
    }
}

impl Drop for SourcePool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One pool slot as a worker sees it: the live source, its outbound
/// channel, and the bookkeeping the repair path needs to rebuild the
/// source after a panic.
struct WorkerSlot {
    source: PooledSource,
    tx: SyncSender<PoolChunk>,
    /// Global pool slot index (streams are keyed by it).
    global: usize,
    /// The spec the slot was built from — rebuilt verbatim on repair.
    spec: SourceSpec,
    /// Batches already handed to the consumer channel; the repair path
    /// fast-forwards a rebuilt source by exactly this count.
    delivered: u64,
    /// A produced batch whose channel was full — retried before the
    /// slot produces again, so per-slot order is preserved while the
    /// worker keeps its *other* slots flowing (weighted consumption
    /// drains slots at different rates; head-of-line blocking here
    /// would stall every slot behind the slowest-drained one).
    pending: Option<PoolChunk>,
    /// One-shot chaos trigger state (`SourceSpec::panic_after_batches`):
    /// cleared *before* the panic fires so a restarted body does not
    /// re-panic forever.
    panic_pending: bool,
}

/// A worker's whole mutable state, held outside the supervision unwind
/// boundary so a restart resumes exactly where the panic interrupted.
struct WorkerState {
    slots: Vec<WorkerSlot>,
    config: PoolConfig,
    /// Slot being produced when the body panicked — the only slot whose
    /// internal stream state may be mid-batch and needs a rebuild.
    active: Option<usize>,
}

/// Supervised producer body: round-robin over the worker's sources,
/// pushing each batch into that source's bounded channel. Returning
/// normally (shutdown, consumer gone, unrecoverable source) completes
/// the supervision loop.
fn produce_loop(state: &mut WorkerState, shutdown: &AtomicBool) {
    'outer: loop {
        if shutdown.load(Ordering::Relaxed) || state.slots.is_empty() {
            break;
        }
        // Whether any send landed this pass; an all-full pass sleeps
        // instead of spinning.
        let mut sent_any = false;
        for k in 0..state.slots.len() {
            if shutdown.load(Ordering::Relaxed) {
                break 'outer;
            }
            state.active = Some(k);
            let slot = &mut state.slots[k];
            // Retry a batch stashed while this slot's channel was full
            // before producing anything new, preserving per-slot order.
            if let Some(chunk) = slot.pending.take() {
                match slot.tx.try_send(chunk) {
                    Ok(()) => {
                        slot.delivered += 1;
                        sent_any = true;
                    }
                    Err(TrySendError::Full(back)) => {
                        // Still full: park it again and keep the
                        // worker's other slots flowing — no
                        // head-of-line blocking across slots.
                        slot.pending = Some(back);
                        state.active = None;
                        continue;
                    }
                    Err(TrySendError::Disconnected(_)) => break 'outer,
                }
            }
            let trigger = slot.spec.panic_after_batches.unwrap_or(u64::MAX);
            if slot.panic_pending && slot.delivered >= trigger {
                // Chaos drill: fire once, at the clean between-batches
                // boundary, so the repair path's rebuild-and-fast-forward
                // provably reproduces the stream position.
                slot.panic_pending = false;
                panic!(
                    "injected worker panic: slot {} after {} delivered batches",
                    slot.global, slot.delivered
                );
            }
            let Ok(bytes) = slot.source.next_batch() else {
                // Unrecoverable simulator error: drop every sender so
                // the consumer sees the disconnect as SourceFailed.
                state.active = None;
                break 'outer;
            };
            let chunk = PoolChunk {
                round: slot.delivered,
                source: slot.source.index(),
                bytes,
                state: slot.source.state(),
                stats: slot.source.stats(),
                generation: slot.source.generation(),
                entropy: slot.source.entropy(),
            };
            match slot.tx.try_send(chunk) {
                Ok(()) => {
                    slot.delivered += 1;
                    sent_any = true;
                }
                Err(TrySendError::Full(back)) => slot.pending = Some(back),
                Err(TrySendError::Disconnected(_)) => break 'outer,
            }
            state.active = None;
        }
        if !sent_any {
            thread::sleep(SEND_BACKOFF);
        }
    }
}

/// Pre-restart repair: rebuild the slot the panic interrupted and
/// fast-forward it past every batch already delivered. Streams are pure
/// functions of `(SourceSpec, PoolConfig)`, so the replayed source is
/// byte-identical to the lost one — including its health/quarantine
/// lifecycle position. A slot that cannot be rebuilt is removed, which
/// drops its sender and surfaces as a typed `SourceFailed`.
fn repair_worker(state: &mut WorkerState, shutdown: &AtomicBool) {
    let Some(k) = state.active.take() else {
        return;
    };
    if k >= state.slots.len() {
        return;
    }
    let slot = &state.slots[k];
    match PooledSource::build(slot.global, &slot.spec, &state.config) {
        Ok(mut fresh) => {
            let mut replayed = 0u64;
            while replayed < state.slots[k].delivered {
                if shutdown.load(Ordering::Relaxed) {
                    // Mid-repair shutdown: leave the stale source in
                    // place; the restarted body exits immediately.
                    return;
                }
                if fresh.next_batch().is_err() {
                    state.slots.remove(k);
                    return;
                }
                replayed += 1;
            }
            state.slots[k].source = fresh;
            // The rebuilt source reproduces every batch from
            // `delivered` onward; a stashed unsent chunk (also batch
            // `delivered`) would be served twice if kept.
            state.slots[k].pending = None;
        }
        Err(_) => {
            state.slots.remove(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strent_trng::postprocess::ConditionerKind;

    fn small_config(sources: usize) -> PoolConfig {
        let mut config = PoolConfig::mixed_default(sources, 42);
        config.conditioner = ConditionerKind::Raw;
        config.sample_period_factor = 2.37;
        config.batch_raw_bits = 64;
        config.warmup_periods = 16.0;
        config
    }

    #[test]
    fn stream_is_worker_count_invariant() {
        let config = small_config(3);
        let mut reference: Option<Vec<u8>> = None;
        for workers in [1usize, 2, 8] {
            let mut pool = SourcePool::start(&config, workers).expect("starts");
            let bytes = pool.read_bytes(96).expect("reads");
            pool.shutdown();
            match &reference {
                None => reference = Some(bytes),
                Some(expected) => {
                    assert_eq!(&bytes, expected, "{workers} workers diverged");
                }
            }
        }
    }

    #[test]
    fn chunks_interleave_round_robin_by_slot() {
        let config = small_config(3);
        let mut pool = SourcePool::start(&config, 2).expect("starts");
        for round in 0..3u64 {
            for slot in 0..3usize {
                let chunk = pool.next_chunk().expect("produces");
                assert_eq!((chunk.source, chunk.round), (slot, round));
                assert!(!chunk.bytes.is_empty());
            }
            assert_eq!(pool.rounds_completed(), round + 1);
        }
        assert_eq!(pool.status().len(), 3);
        pool.shutdown();
        assert!(matches!(pool.next_chunk(), Err(ServeError::Shutdown)));
    }

    #[test]
    fn partitions_preserve_global_slot_streams() {
        let config = small_config(3);
        // Reference: first chunk of every slot from the unsharded pool.
        let mut full = SourcePool::start(&config, 1).expect("starts");
        let mut reference = Vec::new();
        for slot in 0..3usize {
            let chunk = full.next_chunk().expect("produces");
            assert_eq!(chunk.source, slot);
            reference.push(chunk.bytes);
        }
        full.shutdown();
        // Each shard of a 2-way split must reproduce its slots' chunks
        // byte-for-byte, under their global indices.
        for shard in 0..2usize {
            let mut part = SourcePool::start_partition(&config, 2, shard, 1).expect("starts");
            let owned: Vec<usize> = (0..3).filter(|i| i % 2 == shard).collect();
            assert_eq!(part.slots(), owned.as_slice());
            for &slot in &owned {
                let chunk = part.next_chunk().expect("produces");
                assert_eq!(chunk.source, slot);
                assert_eq!(chunk.bytes, reference[slot], "slot {slot} diverged");
            }
            let status = part.slot_status();
            assert_eq!(status.len(), owned.len());
            assert_eq!(status[0].0, owned[0]);
            part.shutdown();
        }
    }

    /// A config whose sources publish an estimate after their first
    /// delivered batch (128 delivered bits > the 65-bit order-1 floor).
    fn estimator_config(sources: usize) -> PoolConfig {
        let mut config = small_config(sources);
        config.entropy_order = 1;
        config.entropy_window_bits = 128;
        config.batch_raw_bits = 128;
        config
    }

    #[test]
    fn weighted_policy_with_no_demotions_matches_strict() {
        let config = estimator_config(3);
        let mut strict = SourcePool::start(&config, 2).expect("starts");
        let expected = strict.read_bytes(96).expect("reads");
        strict.shutdown();

        let mut weighted = SourcePool::start(&config, 2).expect("starts");
        // Threshold 0: no estimate can fall below it, every slot keeps
        // HEALTHY_WEIGHT, and the weighted order degenerates to the
        // strict round-robin — weighting only ever *reorders*, it
        // never changes per-slot bytes.
        let policy = ConsumptionPolicy::Weighted {
            threshold: EntropyEstimate::from_bits_per_bit(0.0),
        };
        weighted.set_consumption_policy(policy);
        assert_eq!(weighted.consumption_policy(), policy);
        let bytes = weighted.read_bytes(96).expect("reads");
        weighted.shutdown();
        assert_eq!(bytes, expected, "uniform weights must reproduce strict order");
    }

    #[test]
    fn weighted_policy_demotes_low_scoring_slots() {
        let config = estimator_config(3);
        // Probe the estimate each slot will have published when the
        // first weighted cycle ends (after 4 delivered batches) —
        // streams are pure functions of (spec, config), so a rebuilt
        // source replays the pool's slots exactly.
        let mut after4 = Vec::new();
        for (i, spec) in config.sources.iter().enumerate() {
            let mut source = PooledSource::build(i, spec, &config).expect("builds");
            for _ in 0..4 {
                source.next_batch().expect("produces");
            }
            after4.push(source.entropy().expect("saturated window"));
        }
        let lo = *after4.iter().min().expect("slots");
        let hi = *after4.iter().max().expect("slots");
        assert!(lo < hi, "presets must score apart for this drill: {after4:?}");
        // One millibit above the lowest scorer: it (and any tie) is
        // demoted, everyone else keeps full weight.
        let threshold =
            EntropyEstimate::from_bits_per_bit(f64::from(lo.millibits() + 1) / 1000.0);
        let demoted: Vec<bool> = after4.iter().map(|&e| e < threshold).collect();

        let mut pool = SourcePool::start(&config, 2).expect("starts");
        pool.set_consumption_policy(ConsumptionPolicy::Weighted { threshold });
        // Cycle 1: no verdict has been consumed yet, so every slot
        // holds full weight — 3 slots x HEALTHY_WEIGHT chunks.
        for _ in 0..12 {
            pool.next_chunk().expect("produces");
        }
        assert_eq!(pool.rounds_completed(), 1);
        // Cycle 2 refills from the published estimates: each slot's
        // share is exactly its weight.
        let cycle: u64 = demoted
            .iter()
            .map(|&d| if d { DEMOTED_WEIGHT } else { HEALTHY_WEIGHT })
            .sum();
        let mut seen = [0u64; 3];
        for _ in 0..cycle {
            seen[pool.next_chunk().expect("produces").source] += 1;
        }
        for (i, &was_demoted) in demoted.iter().enumerate() {
            let want = if was_demoted { DEMOTED_WEIGHT } else { HEALTHY_WEIGHT };
            assert_eq!(seen[i], want, "slot {i} drew the wrong share: {seen:?}");
        }
        assert_eq!(pool.rounds_completed(), 2);
        pool.shutdown();
    }

    #[test]
    fn weighted_stream_is_worker_count_invariant() {
        let config = estimator_config(3);
        let policy = ConsumptionPolicy::Weighted {
            threshold: config.demotion_threshold(),
        };
        let mut reference: Option<Vec<u8>> = None;
        for workers in [1usize, 2, 8] {
            let mut pool = SourcePool::start(&config, workers).expect("starts");
            pool.set_consumption_policy(policy);
            let bytes = pool.read_bytes(256).expect("reads");
            pool.shutdown();
            match &reference {
                None => reference = Some(bytes),
                Some(expected) => {
                    assert_eq!(&bytes, expected, "{workers} workers diverged");
                }
            }
        }
    }

    #[test]
    fn invalid_partitions_are_rejected() {
        let config = small_config(2);
        assert!(SourcePool::start_partition(&config, 0, 0, 1).is_err());
        assert!(SourcePool::start_partition(&config, 2, 2, 1).is_err());
        // A 4-way split of a 2-source pool leaves shards 2 and 3 empty.
        assert!(SourcePool::start_partition(&config, 4, 3, 1).is_err());
    }

    #[test]
    fn invalid_config_fails_fast() {
        let mut config = small_config(2);
        config.batch_raw_bits = 0;
        assert!(matches!(
            SourcePool::start(&config, 1),
            Err(ServeError::Config(_))
        ));
    }

    #[test]
    fn worker_panic_recovery_is_byte_transparent() {
        let config = small_config(2);
        let mut clean = SourcePool::start(&config, 1).expect("starts");
        let expected = clean.read_bytes(64).expect("reads");
        clean.shutdown();

        // Same pool, but slot 0's worker panics after one delivered
        // batch; supervision must rebuild, fast-forward and resume
        // without perturbing a single byte.
        let mut chaotic = config.clone();
        chaotic.sources[0] = chaotic.sources[0].clone().with_panic_after(1);
        let log = IncidentLog::new();
        let policy = RestartPolicy {
            initial_backoff: Duration::from_micros(100),
            ..RestartPolicy::default()
        };
        let mut pool =
            SourcePool::start_partition_supervised(&chaotic, 1, 0, 2, &policy, &log)
                .expect("starts");
        let bytes = pool.read_bytes(64).expect("reads through the panic");
        pool.shutdown();
        assert_eq!(bytes, expected, "recovery perturbed the stream");
        assert_eq!(log.count_of("panic"), 1, "the trigger is one-shot");
        assert_eq!(log.count_of("restarted"), 1);
        assert_eq!(pool.incident_log().count_of("escalated"), 0);
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let config = small_config(2);
        let mut pool = SourcePool::start(&config, 4).expect("starts");
        let _ = pool.read_bytes(8).expect("reads");
        pool.shutdown();
        pool.shutdown();
        drop(pool);
    }
}
