//! The source pool: W worker threads producing batches from S sources,
//! consumed in a deterministic interleave.
//!
//! ## The determinism contract
//!
//! Each source's byte stream is a pure function of its spec and the
//! pool config (see [`PooledSource`]). Workers only decide *when* a
//! batch gets computed, never *what* it contains; the consumer side
//! reads batches strictly round-robin by source index (round `r` takes
//! batch `r` of source 0, then source 1, …). The concatenated stream is
//! therefore bit-identical for any worker count — the same contract the
//! experiment layer's `SweepRunner` pins for thread-count invariance,
//! applied to a long-running service.
//!
//! Backpressure inside the pool is structural: each source feeds a
//! bounded channel, so workers stall (cheaply, in simulated-time work
//! not yet done) when the consumer falls behind, and memory stays
//! bounded.
//!
//! ## Sharding
//!
//! A pool can also be started as one *partition* of a sharded service
//! ([`SourcePool::start_partition`]): shard `k` of `S` owns exactly the
//! global slots `{ i | i % S == k }`, builds them with their **global**
//! indices (so a slot's spec, seed derivation and replacement stream
//! are identical no matter how many shards exist), and consumes them
//! round-robin in ascending global-slot order. The full pool is the
//! special case `S = 1`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use strentropy::pool::{PoolConfig, SourceState, SourceStats};

use crate::error::ServeError;
use crate::source::PooledSource;

/// Batches a source may run ahead of the consumer.
const CHANNEL_DEPTH: usize = 2;

/// How long the consumer waits for one batch before declaring a source
/// stuck (a healthy batch takes milliseconds of host time).
const PRODUCE_TIMEOUT: Duration = Duration::from_secs(60);

/// Producer backoff while its bounded channel is full.
const SEND_BACKOFF: Duration = Duration::from_micros(200);

/// One health-passed byte batch, tagged with its origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolChunk {
    /// Per-source batch sequence number (0-based).
    pub round: u64,
    /// Pool slot that produced the bytes.
    pub source: usize,
    /// The conditioned, health-passed bytes.
    pub bytes: Vec<u8>,
    /// Source lifecycle state after producing this batch.
    pub state: SourceState,
    /// Lifetime counters after producing this batch.
    pub stats: SourceStats,
    /// Ring generation that produced the batch.
    pub generation: u64,
}

/// Last observed condition of one pool slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceStatus {
    /// Lifecycle state.
    pub state: SourceState,
    /// Lifetime counters.
    pub stats: SourceStats,
    /// Ring generation.
    pub generation: u64,
}

impl Default for SourceStatus {
    fn default() -> Self {
        SourceStatus {
            state: SourceState::Healthy,
            stats: SourceStats::default(),
            generation: 0,
        }
    }
}

/// A running pool of entropy sources (possibly one shard's partition).
#[derive(Debug)]
pub struct SourcePool {
    receivers: Vec<Receiver<PoolChunk>>,
    /// Global slot index of each receiver, ascending.
    slots: Vec<usize>,
    workers: Vec<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
    cursor: usize,
    rounds_completed: u64,
    status: Vec<SourceStatus>,
    buffer: VecDeque<u8>,
    finished: bool,
}

impl SourcePool {
    /// Validates `config`, builds every source (fail-fast, in slot
    /// order) and spawns `workers` producer threads. Source `i` is
    /// owned by worker `i % workers`; ownership only affects wall-clock
    /// scheduling, never byte content.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid configuration or a source that
    /// fails to build (static verification, bad fault plan, …).
    pub fn start(config: &PoolConfig, workers: usize) -> Result<Self, ServeError> {
        SourcePool::start_partition(config, 1, 0, workers)
    }

    /// Starts shard `shard` of `shards`: builds only the global slots
    /// `{ i | i % shards == shard }`, each with its global index, so
    /// per-slot byte streams are identical at every shard count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SourcePool::start`], plus a config error
    /// for an out-of-range shard or an empty partition.
    pub fn start_partition(
        config: &PoolConfig,
        shards: usize,
        shard: usize,
        workers: usize,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        if shards == 0 || shard >= shards {
            return Err(ServeError::Protocol(format!(
                "shard {shard} of {shards} is not a valid partition"
            )));
        }
        let mut sources = Vec::new();
        let mut slots = Vec::new();
        for (i, spec) in config.sources.iter().enumerate() {
            if i % shards == shard {
                sources.push(PooledSource::build(i, spec, config)?);
                slots.push(i);
            }
        }
        if sources.is_empty() {
            return Err(ServeError::Protocol(format!(
                "shard {shard} of {shards} owns no slot of a {}-source pool",
                config.sources.len()
            )));
        }
        let worker_count = workers.clamp(1, sources.len());
        let shutdown = Arc::new(AtomicBool::new(false));

        let mut receivers = Vec::with_capacity(sources.len());
        let mut senders = Vec::with_capacity(sources.len());
        for _ in 0..sources.len() {
            let (tx, rx) = mpsc::sync_channel(CHANNEL_DEPTH);
            senders.push(Some(tx));
            receivers.push(rx);
        }

        let status = vec![SourceStatus::default(); sources.len()];
        let mut groups: Vec<Vec<(PooledSource, SyncSender<PoolChunk>)>> =
            (0..worker_count).map(|_| Vec::new()).collect();
        for (i, source) in sources.into_iter().enumerate() {
            let tx = senders[i].take().expect("one sender per source");
            groups[i % worker_count].push((source, tx));
        }

        let mut handles = Vec::with_capacity(worker_count);
        for (w, group) in groups.into_iter().enumerate() {
            let flag = Arc::clone(&shutdown);
            let handle = thread::Builder::new()
                .name(format!("strent-serve-worker-{w}"))
                .spawn(move || worker_loop(group, &flag))
                .map_err(ServeError::Io)?;
            handles.push(handle);
        }

        Ok(SourcePool {
            receivers,
            slots,
            workers: handles,
            shutdown,
            cursor: 0,
            rounds_completed: 0,
            status,
            buffer: VecDeque::new(),
            finished: false,
        })
    }

    /// Number of pool slots owned by this pool (partition).
    #[must_use]
    pub fn sources(&self) -> usize {
        self.status.len()
    }

    /// Global slot indices owned by this pool (partition), ascending.
    #[must_use]
    pub fn slots(&self) -> &[usize] {
        &self.slots
    }

    /// Last observed status of every owned slot, tagged with its global
    /// slot index — what a sharded scheduler merges into a full view.
    #[must_use]
    pub fn slot_status(&self) -> Vec<(usize, SourceStatus)> {
        self.slots
            .iter()
            .copied()
            .zip(self.status.iter().copied())
            .collect()
    }

    /// Completed consumption rounds (every source read once per round).
    #[must_use]
    pub fn rounds_completed(&self) -> u64 {
        self.rounds_completed
    }

    /// Last observed status of every slot, in slot order.
    #[must_use]
    pub fn status(&self) -> &[SourceStatus] {
        &self.status
    }

    /// The next chunk in the deterministic interleave (round-robin by
    /// slot index).
    ///
    /// # Errors
    ///
    /// [`ServeError::Timeout`] if the slot's worker produced nothing
    /// within the produce deadline, [`ServeError::SourceFailed`] if it
    /// died, [`ServeError::Shutdown`] after [`SourcePool::shutdown`].
    pub fn next_chunk(&mut self) -> Result<PoolChunk, ServeError> {
        if self.finished {
            return Err(ServeError::Shutdown);
        }
        let i = self.cursor;
        let chunk = self.receivers[i]
            .recv_timeout(PRODUCE_TIMEOUT)
            .map_err(|e| match e {
                RecvTimeoutError::Timeout => ServeError::Timeout,
                RecvTimeoutError::Disconnected => ServeError::SourceFailed {
                    source: self.slots[i],
                },
            })?;
        self.status[i] = SourceStatus {
            state: chunk.state,
            stats: chunk.stats,
            generation: chunk.generation,
        };
        self.cursor = (self.cursor + 1) % self.receivers.len();
        if self.cursor == 0 {
            self.rounds_completed += 1;
        }
        Ok(chunk)
    }

    /// Reads exactly `n` bytes of the pooled stream, buffering any
    /// chunk remainder for the next call.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SourcePool::next_chunk`].
    pub fn read_bytes(&mut self, n: usize) -> Result<Vec<u8>, ServeError> {
        while self.buffer.len() < n {
            let chunk = self.next_chunk()?;
            self.buffer.extend(chunk.bytes);
        }
        Ok(self.buffer.drain(..n).collect())
    }

    /// Stops the workers and joins them. Idempotent; also run on drop.
    pub fn shutdown(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.shutdown.store(true, Ordering::SeqCst);
        // Dropping the receivers disconnects every channel, so workers
        // blocked on a full send exit immediately.
        self.receivers.clear();
        for handle in self.workers.drain(..) {
            // A panicked worker already printed its message; the pool
            // is going away either way.
            if handle.join().is_err() {
                continue;
            }
        }
    }
}

impl Drop for SourcePool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Producer loop: round-robin over the worker's sources, pushing each
/// batch into that source's bounded channel.
fn worker_loop(mut group: Vec<(PooledSource, SyncSender<PoolChunk>)>, shutdown: &AtomicBool) {
    let mut rounds = vec![0u64; group.len()];
    'outer: loop {
        if shutdown.load(Ordering::Relaxed) {
            break;
        }
        for (k, (source, tx)) in group.iter_mut().enumerate() {
            if shutdown.load(Ordering::Relaxed) {
                break 'outer;
            }
            let Ok(bytes) = source.next_batch() else {
                // Unrecoverable simulator error: drop every sender so
                // the consumer sees the disconnect as SourceFailed.
                break 'outer;
            };
            let mut chunk = PoolChunk {
                round: rounds[k],
                source: source.index(),
                bytes,
                state: source.state(),
                stats: source.stats(),
                generation: source.generation(),
            };
            rounds[k] += 1;
            loop {
                match tx.try_send(chunk) {
                    Ok(()) => break,
                    Err(TrySendError::Full(back)) => {
                        chunk = back;
                        if shutdown.load(Ordering::Relaxed) {
                            break 'outer;
                        }
                        thread::sleep(SEND_BACKOFF);
                    }
                    Err(TrySendError::Disconnected(_)) => break 'outer,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strent_trng::postprocess::ConditionerKind;

    fn small_config(sources: usize) -> PoolConfig {
        let mut config = PoolConfig::mixed_default(sources, 42);
        config.conditioner = ConditionerKind::Raw;
        config.sample_period_factor = 2.37;
        config.batch_raw_bits = 64;
        config.warmup_periods = 16.0;
        config
    }

    #[test]
    fn stream_is_worker_count_invariant() {
        let config = small_config(3);
        let mut reference: Option<Vec<u8>> = None;
        for workers in [1usize, 2, 8] {
            let mut pool = SourcePool::start(&config, workers).expect("starts");
            let bytes = pool.read_bytes(96).expect("reads");
            pool.shutdown();
            match &reference {
                None => reference = Some(bytes),
                Some(expected) => {
                    assert_eq!(&bytes, expected, "{workers} workers diverged");
                }
            }
        }
    }

    #[test]
    fn chunks_interleave_round_robin_by_slot() {
        let config = small_config(3);
        let mut pool = SourcePool::start(&config, 2).expect("starts");
        for round in 0..3u64 {
            for slot in 0..3usize {
                let chunk = pool.next_chunk().expect("produces");
                assert_eq!((chunk.source, chunk.round), (slot, round));
                assert!(!chunk.bytes.is_empty());
            }
            assert_eq!(pool.rounds_completed(), round + 1);
        }
        assert_eq!(pool.status().len(), 3);
        pool.shutdown();
        assert!(matches!(pool.next_chunk(), Err(ServeError::Shutdown)));
    }

    #[test]
    fn partitions_preserve_global_slot_streams() {
        let config = small_config(3);
        // Reference: first chunk of every slot from the unsharded pool.
        let mut full = SourcePool::start(&config, 1).expect("starts");
        let mut reference = Vec::new();
        for slot in 0..3usize {
            let chunk = full.next_chunk().expect("produces");
            assert_eq!(chunk.source, slot);
            reference.push(chunk.bytes);
        }
        full.shutdown();
        // Each shard of a 2-way split must reproduce its slots' chunks
        // byte-for-byte, under their global indices.
        for shard in 0..2usize {
            let mut part = SourcePool::start_partition(&config, 2, shard, 1).expect("starts");
            let owned: Vec<usize> = (0..3).filter(|i| i % 2 == shard).collect();
            assert_eq!(part.slots(), owned.as_slice());
            for &slot in &owned {
                let chunk = part.next_chunk().expect("produces");
                assert_eq!(chunk.source, slot);
                assert_eq!(chunk.bytes, reference[slot], "slot {slot} diverged");
            }
            let status = part.slot_status();
            assert_eq!(status.len(), owned.len());
            assert_eq!(status[0].0, owned[0]);
            part.shutdown();
        }
    }

    #[test]
    fn invalid_partitions_are_rejected() {
        let config = small_config(2);
        assert!(SourcePool::start_partition(&config, 0, 0, 1).is_err());
        assert!(SourcePool::start_partition(&config, 2, 2, 1).is_err());
        // A 4-way split of a 2-source pool leaves shards 2 and 3 empty.
        assert!(SourcePool::start_partition(&config, 4, 3, 1).is_err());
    }

    #[test]
    fn invalid_config_fails_fast() {
        let mut config = small_config(2);
        config.batch_raw_bits = 0;
        assert!(matches!(
            SourcePool::start(&config, 1),
            Err(ServeError::Config(_))
        ));
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let config = small_config(2);
        let mut pool = SourcePool::start(&config, 4).expect("starts");
        let _ = pool.read_bytes(8).expect("reads");
        pool.shutdown();
        pool.shutdown();
        drop(pool);
    }
}
