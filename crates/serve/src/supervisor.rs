//! Supervision primitives for the serving layer: restart policies with
//! deterministic jittered backoff, typed incident records, and the
//! bounded-deadline helpers the graceful-drain state machine uses.
//!
//! Every long-lived service thread (pool workers, scheduler shards, the
//! socket event loop) runs its loop body under [`supervise`]: a panic is
//! caught at the loop boundary, recorded as a typed [`Incident`], and
//! the body is restarted after a jittered exponential backoff. The
//! thread's mutable state lives *outside* the unwind boundary, so a
//! restart resumes from the survivor state instead of from scratch —
//! the property that keeps deterministic-mode served bytes identical
//! with chaos injection on or off (see `docs/serving.md`, "Supervision
//! & shutdown").
//!
//! Escalation is bounded: more than [`RestartPolicy::max_restarts`]
//! restarts inside [`RestartPolicy::window`] stops the restart loop and
//! returns [`SupervisionOutcome::Escalated`], letting the owner
//! quarantine the unit (a shard hands its clients to siblings; a worker
//! lets the pool report `SourceFailed`) instead of flapping forever.
//!
//! The backoff jitter is derived from [`RestartPolicy::jitter_seed`]
//! with a splitmix64 step — no wall-clock or OS randomness — so a chaos
//! drill replay restarts on the exact same schedule every run.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How a supervised unit restarts after a panic, and when restarting
/// gives way to escalation.
#[derive(Debug, Clone)]
pub struct RestartPolicy {
    /// Backoff before the first restart.
    pub initial_backoff: Duration,
    /// Cap on the exponentially growing backoff.
    pub max_backoff: Duration,
    /// Restarts tolerated inside `window` before the unit escalates.
    pub max_restarts: u32,
    /// The sliding window `max_restarts` is counted over.
    pub window: Duration,
    /// Seed of the deterministic backoff jitter (splitmix64-derived;
    /// no wall-clock randomness, so chaos replays restart on the same
    /// schedule).
    pub jitter_seed: u64,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            initial_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(250),
            max_restarts: 8,
            window: Duration::from_secs(30),
            jitter_seed: 0x5EED_0F5E_17ED,
        }
    }
}

impl RestartPolicy {
    /// The backoff before restart number `attempt` (1-based): an
    /// exponential doubling from `initial_backoff`, capped at
    /// `max_backoff`, scaled by a deterministic jitter factor in
    /// `[0.75, 1.25)` drawn from `jitter_seed` and `attempt`.
    #[must_use]
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let doublings = attempt.saturating_sub(1).min(20);
        let base = self
            .initial_backoff
            .saturating_mul(1u32 << doublings)
            .min(self.max_backoff);
        let h = splitmix64(self.jitter_seed ^ u64::from(attempt));
        // Integer jitter: base * (768 + h % 512) / 1024 in [0.75, 1.25).
        let scaled = base.as_nanos() as u64 / 1024 * (768 + h % 512);
        Duration::from_nanos(scaled)
    }
}

/// One splitmix64 step — the workspace's standard cheap seed mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What happened to a supervised unit, as recorded in its incidents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IncidentKind {
    /// The unit's body panicked; the payload text is in the detail.
    Panic,
    /// The unit was restarted (attempt number inside the current
    /// escalation window).
    Restarted {
        /// 1-based restart attempt inside the window.
        attempt: u32,
    },
    /// The restart budget was exhausted; the unit stopped flapping and
    /// handed itself to the escalation path.
    Escalated {
        /// Restarts consumed inside the window before giving up.
        restarts: u32,
    },
    /// A scheduler shard was quarantined after escalation: new clients
    /// route to siblings, queued work stays stealable.
    Quarantined,
    /// A graceful drain hit its deadline with work still pending; the
    /// remainder was refused with a typed error, never dropped.
    DrainTimedOut,
}

impl IncidentKind {
    /// A short stable label (used in reports and JSON).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            IncidentKind::Panic => "panic",
            IncidentKind::Restarted { .. } => "restarted",
            IncidentKind::Escalated { .. } => "escalated",
            IncidentKind::Quarantined => "quarantined",
            IncidentKind::DrainTimedOut => "drain_timed_out",
        }
    }
}

/// One typed incident record.
#[derive(Debug, Clone)]
pub struct Incident {
    /// The supervised unit ("worker-0", "shard-1", "scheduler",
    /// "event-loop").
    pub unit: String,
    /// What happened.
    pub kind: IncidentKind,
    /// Free-form context (panic payload text, escalation counts).
    pub detail: String,
    /// Milliseconds since the incident log was created.
    pub at_ms: u64,
}

/// A shared, append-only incident log. Cloning shares the underlying
/// storage — every supervised unit of one service records into the same
/// log, and `serve_chaos` snapshots it for `BENCH_chaos.json`.
#[derive(Debug, Clone)]
pub struct IncidentLog {
    start: Instant,
    inner: Arc<Mutex<Vec<Incident>>>,
}

impl Default for IncidentLog {
    fn default() -> Self {
        IncidentLog::new()
    }
}

impl IncidentLog {
    /// An empty log; the creation instant anchors `at_ms` timestamps.
    #[must_use]
    pub fn new() -> Self {
        IncidentLog {
            start: Instant::now(),
            inner: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Appends one incident.
    pub fn record(&self, unit: &str, kind: IncidentKind, detail: impl Into<String>) {
        let at_ms = u64::try_from(self.start.elapsed().as_millis()).unwrap_or(u64::MAX);
        self.inner.lock().expect("incident log lock").push(Incident {
            unit: unit.to_owned(),
            kind,
            detail: detail.into(),
            at_ms,
        });
    }

    /// A copy of every incident recorded so far, in record order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Incident> {
        self.inner.lock().expect("incident log lock").clone()
    }

    /// Incidents of one kind (matching on the kind's label).
    #[must_use]
    pub fn count_of(&self, label: &str) -> usize {
        self.inner
            .lock()
            .expect("incident log lock")
            .iter()
            .filter(|i| i.kind.label() == label)
            .count()
    }
}

/// How a supervised unit's lifetime ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisionOutcome {
    /// The body returned normally (clean shutdown).
    Completed,
    /// The restart budget was exhausted; the owner must quarantine or
    /// tear down the unit.
    Escalated {
        /// Restarts consumed inside the escalation window.
        restarts: u32,
    },
}

/// Runs `body` under a panic-catching restart loop.
///
/// `state` is the unit's mutable state, held **outside** the unwind
/// boundary so it survives a panic; `repair` runs before each restart
/// (never before the first attempt) to mend whatever invariant the
/// panic may have interrupted. A normal return from `body` ends the
/// loop with [`SupervisionOutcome::Completed`]; exhausting
/// [`RestartPolicy::max_restarts`] inside [`RestartPolicy::window`]
/// ends it with [`SupervisionOutcome::Escalated`].
pub fn supervise<S>(
    unit: &str,
    policy: &RestartPolicy,
    log: &IncidentLog,
    state: &mut S,
    mut repair: impl FnMut(&mut S),
    mut body: impl FnMut(&mut S),
) -> SupervisionOutcome {
    let mut restarts_in_window: Vec<Instant> = Vec::new();
    let mut attempt = 0u32;
    loop {
        // The restart-with-backoff supervision boundary: state stays
        // outside the unwind so a restarted body resumes, and repeated
        // panics escalate once the policy window fills.
        let outcome = catch_unwind(AssertUnwindSafe(|| body(state)));
        let payload = match outcome {
            Ok(()) => return SupervisionOutcome::Completed,
            Err(payload) => payload,
        };
        log.record(unit, IncidentKind::Panic, panic_text(payload.as_ref()));
        let now = Instant::now();
        restarts_in_window.retain(|t| now.duration_since(*t) < policy.window);
        if restarts_in_window.len() >= policy.max_restarts as usize {
            let restarts = u32::try_from(restarts_in_window.len()).unwrap_or(u32::MAX);
            log.record(
                unit,
                IncidentKind::Escalated { restarts },
                format!("{restarts} restarts within the escalation window"),
            );
            return SupervisionOutcome::Escalated { restarts };
        }
        restarts_in_window.push(now);
        attempt = attempt.saturating_add(1);
        thread::sleep(policy.backoff_for(attempt));
        repair(state);
        log.record(
            unit,
            IncidentKind::Restarted { attempt },
            format!("restarted after backoff attempt {attempt}"),
        );
    }
}

/// Best-effort extraction of a panic payload's message.
#[must_use]
pub fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A monotone deadline for the drain state machine: construction pins
/// the budget, and every phase asks how much is left.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    #[must_use]
    pub fn after(budget: Duration) -> Self {
        Deadline {
            at: Instant::now() + budget,
        }
    }

    /// The instant the deadline lands on.
    #[must_use]
    pub fn instant(&self) -> Instant {
        self.at
    }

    /// Whether the deadline has passed.
    #[must_use]
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left, saturating at zero.
    #[must_use]
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }

    /// Time left as a `poll(2)` timeout in milliseconds, at least 1 so
    /// a caller never converts a drain wait into a busy spin.
    #[must_use]
    pub fn poll_ms(&self) -> i32 {
        i32::try_from(self.remaining().as_millis().clamp(1, 1000)).unwrap_or(1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_is_capped_and_jitters_deterministically() {
        let policy = RestartPolicy::default();
        let a1 = policy.backoff_for(1);
        let a5 = policy.backoff_for(5);
        assert!(a5 > a1, "backoff grows with the attempt number");
        // The cap bounds even absurd attempt numbers (1.25x jitter max).
        let huge = policy.backoff_for(40);
        assert!(huge <= policy.max_backoff.mul_f64(1.25));
        // Same seed, same schedule — the chaos-replay requirement.
        let again = RestartPolicy::default();
        for attempt in 1..10 {
            assert_eq!(policy.backoff_for(attempt), again.backoff_for(attempt));
        }
        // A different seed jitters differently somewhere in the range.
        let other = RestartPolicy {
            jitter_seed: 7,
            ..RestartPolicy::default()
        };
        assert!((1..10).any(|a| other.backoff_for(a) != policy.backoff_for(a)));
    }

    #[test]
    fn supervise_restarts_through_panics_and_preserves_state() {
        let log = IncidentLog::new();
        let policy = RestartPolicy {
            initial_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(100),
            max_restarts: 5,
            window: Duration::from_secs(10),
            jitter_seed: 1,
        };
        // State: (progress, panics already fired). The body panics
        // twice mid-run, then completes; progress must survive.
        let mut state = (0u32, 0u32);
        let outcome = supervise(
            "unit-test",
            &policy,
            &log,
            &mut state,
            |_| {},
            |s| {
                while s.0 < 10 {
                    s.0 += 1;
                    if (s.0 == 3 || s.0 == 7) && s.1 < 2 {
                        s.1 += 1;
                        panic!("injected panic at progress {}", s.0);
                    }
                }
            },
        );
        assert_eq!(outcome, SupervisionOutcome::Completed);
        assert_eq!(state.0, 10, "progress survived both panics");
        assert_eq!(log.count_of("panic"), 2);
        assert_eq!(log.count_of("restarted"), 2);
        let snapshot = log.snapshot();
        assert!(snapshot[0].detail.contains("injected panic"));
        assert_eq!(snapshot[0].unit, "unit-test");
    }

    #[test]
    fn supervise_escalates_after_the_window_fills() {
        let log = IncidentLog::new();
        let policy = RestartPolicy {
            initial_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(50),
            max_restarts: 3,
            window: Duration::from_secs(60),
            jitter_seed: 2,
        };
        let mut runs = 0u32;
        let outcome = supervise(
            "flapper",
            &policy,
            &log,
            &mut runs,
            |_| {},
            |r| {
                *r += 1;
                panic!("always fails");
            },
        );
        assert_eq!(outcome, SupervisionOutcome::Escalated { restarts: 3 });
        assert_eq!(runs, 4, "initial run plus three restarts");
        assert_eq!(log.count_of("escalated"), 1);
        assert_eq!(log.count_of("panic"), 4);
    }

    #[test]
    fn repair_runs_before_each_restart_but_not_the_first_attempt() {
        let log = IncidentLog::new();
        let policy = RestartPolicy {
            initial_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(50),
            max_restarts: 4,
            window: Duration::from_secs(60),
            jitter_seed: 3,
        };
        let mut state = (0u32, 0u32); // (repairs, runs)
        let outcome = supervise(
            "repairable",
            &policy,
            &log,
            &mut state,
            |s| s.0 += 1,
            |s| {
                s.1 += 1;
                if s.1 < 3 {
                    panic!("not yet");
                }
            },
        );
        assert_eq!(outcome, SupervisionOutcome::Completed);
        assert_eq!(state, (2, 3), "two repairs for two restarts");
    }

    #[test]
    fn deadline_expires_and_reports_bounded_poll_timeouts() {
        let deadline = Deadline::after(Duration::from_millis(20));
        assert!(!deadline.expired());
        assert!(deadline.poll_ms() >= 1 && deadline.poll_ms() <= 1000);
        thread::sleep(Duration::from_millis(25));
        assert!(deadline.expired());
        assert_eq!(deadline.remaining(), Duration::ZERO);
        assert_eq!(deadline.poll_ms(), 1, "expired deadlines never spin");
    }

    #[test]
    fn incident_labels_are_stable() {
        assert_eq!(IncidentKind::Panic.label(), "panic");
        assert_eq!(IncidentKind::Restarted { attempt: 1 }.label(), "restarted");
        assert_eq!(IncidentKind::Escalated { restarts: 2 }.label(), "escalated");
        assert_eq!(IncidentKind::Quarantined.label(), "quarantined");
        assert_eq!(IncidentKind::DrainTimedOut.label(), "drain_timed_out");
    }
}
