//! Seed-deterministic chaos injection for the supervision drills.
//!
//! A [`ChaosPlan`] derives every injection parameter — which pool slot's
//! worker panics and after how many delivered batches, which scheduler
//! tick panics or stalls, how a misbehaving socket client misbehaves —
//! from one seed with splitmix64 steps. No wall-clock or OS randomness
//! is consulted, so a drill replays identically run after run, and the
//! `serve_chaos` bench can assert that deterministic-mode served bytes
//! are byte-identical with chaos on and off.
//!
//! Server-side injection points are *clean loop boundaries only*: a
//! [`ChaosInjector`] is polled at the top of a scheduler (or shard)
//! loop iteration, before any message is taken or grant issued, and the
//! worker-panic hook (`SourceSpec::panic_after_batches`) fires between
//! batches, after the previous batch was delivered. Combined with
//! survivor state held outside the unwind boundary
//! ([`crate::supervisor::supervise`]) this is what makes recovery
//! byte-transparent.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One splitmix64 step (the workspace's standard seed mixer).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Every parameter of one chaos drill, derived deterministically from
/// the seed. The server-side fields feed a [`ChaosInjector`] and the
/// pool's worker-panic hook; the client-side fields script the
/// misbehaving socket clients the `serve_chaos` bench runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The seed everything below is derived from.
    pub seed: u64,
    /// Pool slot whose worker receives the one-shot panic trigger.
    pub worker_panic_source: usize,
    /// Batches that slot delivers before its worker panics once.
    pub worker_panic_after_batches: u64,
    /// Scheduler loop tick (unit 0) at which a one-shot panic fires.
    pub scheduler_panic_at_tick: u64,
    /// Scheduler loop tick at which a one-shot stall fires.
    pub scheduler_stall_at_tick: u64,
    /// Length of the injected stall, milliseconds.
    pub stall_ms: u64,
    /// An opcode no frame handler knows (poison-frame drill).
    pub malformed_opcode: u8,
    /// Bytes of a frame header a partial-write client sends before
    /// dropping the connection mid-frame (always inside the 5-byte
    /// header).
    pub partial_write_len: usize,
    /// Requests a mid-stream-disconnect client completes before
    /// vanishing with one still outstanding.
    pub disconnect_after_requests: usize,
}

impl ChaosPlan {
    /// Derives a full plan from `seed`.
    #[must_use]
    pub fn derive(seed: u64) -> Self {
        let mut state = seed;
        let mut next = || {
            state = splitmix64(state);
            state
        };
        let worker_panic_source = (next() % 4) as usize;
        let worker_panic_after_batches = 1 + next() % 3;
        let scheduler_panic_at_tick = 2 + next() % 5;
        let scheduler_stall_at_tick = scheduler_panic_at_tick + 3 + next() % 5;
        let stall_ms = 10 + next() % 25;
        // 0x40..0x5F: disjoint from every request (0x0x) and reply
        // (0x8x) opcode the protocol defines.
        #[allow(clippy::cast_possible_truncation)]
        let malformed_opcode = 0x40 | (next() % 0x20) as u8;
        let partial_write_len = 1 + (next() % 4) as usize;
        let disconnect_after_requests = 1 + (next() % 3) as usize;
        ChaosPlan {
            seed,
            worker_panic_source,
            worker_panic_after_batches,
            scheduler_panic_at_tick,
            scheduler_stall_at_tick,
            stall_ms,
            malformed_opcode,
            partial_write_len,
            disconnect_after_requests,
        }
    }
}

/// What an injection point is told to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Panic with an "injected" payload — the supervised restart path.
    Panic,
    /// Sleep for the given duration — the wedged-unit/liveness path.
    Stall(Duration),
}

/// Per-unit trigger state.
#[derive(Debug, Default)]
struct UnitChaos {
    panic_at_tick: Option<u64>,
    stall_at_tick: Option<u64>,
    stall_ms: u64,
    /// Fire a panic on *every* poll — the escalation-storm drill that
    /// drives a unit through its restart budget into quarantine.
    panic_always: bool,
    panics_fired: AtomicU64,
    stalls_fired: AtomicU64,
}

/// Tick-addressed chaos triggers for supervised scheduler units,
/// polled at the top of each loop iteration. Unit 0 is the
/// deterministic-mode scheduler or fair shard 0; unit `k` is fair
/// shard `k`.
#[derive(Debug)]
pub struct ChaosInjector {
    units: Vec<UnitChaos>,
}

impl ChaosInjector {
    /// Arms the plan's scheduler panic and stall on unit 0 of `units`
    /// supervised units (the other units run untouched).
    #[must_use]
    pub fn from_plan(plan: &ChaosPlan, units: usize) -> Arc<Self> {
        let mut all: Vec<UnitChaos> = (0..units.max(1)).map(|_| UnitChaos::default()).collect();
        all[0].panic_at_tick = Some(plan.scheduler_panic_at_tick);
        all[0].stall_at_tick = Some(plan.scheduler_stall_at_tick);
        all[0].stall_ms = plan.stall_ms;
        Arc::new(ChaosInjector { units: all })
    }

    /// Arms a panic on every poll of `unit` — restarts burn through the
    /// policy window until the unit escalates and is quarantined.
    #[must_use]
    pub fn escalation_storm(unit: usize, units: usize) -> Arc<Self> {
        let mut all: Vec<UnitChaos> = (0..units.max(1)).map(|_| UnitChaos::default()).collect();
        all[unit.min(units.saturating_sub(1))].panic_always = true;
        Arc::new(ChaosInjector { units: all })
    }

    /// Consulted at a clean loop boundary: returns the action `unit`
    /// must take at `tick`, if any. One-shot triggers fire exactly once
    /// (on the first tick at or past their arming tick).
    #[must_use]
    pub fn poll(&self, unit: usize, tick: u64) -> Option<ChaosAction> {
        let slot = self.units.get(unit)?;
        if slot.panic_always {
            slot.panics_fired.fetch_add(1, Ordering::Relaxed);
            return Some(ChaosAction::Panic);
        }
        if let Some(at) = slot.stall_at_tick {
            if tick >= at && fire_once(&slot.stalls_fired) {
                return Some(ChaosAction::Stall(Duration::from_millis(slot.stall_ms)));
            }
        }
        if let Some(at) = slot.panic_at_tick {
            if tick >= at && fire_once(&slot.panics_fired) {
                return Some(ChaosAction::Panic);
            }
        }
        None
    }

    /// Total panics this injector has triggered.
    #[must_use]
    pub fn panics_fired(&self) -> u64 {
        self.units
            .iter()
            .map(|u| u.panics_fired.load(Ordering::Relaxed))
            .sum()
    }

    /// Total stalls this injector has triggered.
    #[must_use]
    pub fn stalls_fired(&self) -> u64 {
        self.units
            .iter()
            .map(|u| u.stalls_fired.load(Ordering::Relaxed))
            .sum()
    }
}

/// True exactly once per counter.
fn fire_once(counter: &AtomicU64) -> bool {
    counter
        .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
        .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_seed_deterministic_and_distinct() {
        let a = ChaosPlan::derive(7);
        let b = ChaosPlan::derive(7);
        assert_eq!(a, b, "same seed, same plan");
        let c = ChaosPlan::derive(8);
        assert_ne!(a, c, "different seeds diverge");
        // Structural invariants every plan must satisfy.
        for seed in 0..64u64 {
            let plan = ChaosPlan::derive(seed);
            assert!(plan.scheduler_stall_at_tick > plan.scheduler_panic_at_tick);
            assert!((0x40..0x60).contains(&plan.malformed_opcode));
            assert!((1..5).contains(&plan.partial_write_len), "inside the header");
            assert!(plan.worker_panic_after_batches >= 1);
            assert!(plan.disconnect_after_requests >= 1);
        }
    }

    #[test]
    fn one_shot_triggers_fire_exactly_once() {
        let plan = ChaosPlan::derive(3);
        let injector = ChaosInjector::from_plan(&plan, 2);
        // Ticks before the arming tick do nothing.
        assert_eq!(injector.poll(0, 0), None);
        // The stall is armed later than the panic, so the panic tick
        // yields the panic; a tick past both yields the stall once.
        assert_eq!(
            injector.poll(0, plan.scheduler_panic_at_tick),
            Some(ChaosAction::Panic)
        );
        let late = plan.scheduler_stall_at_tick + 10;
        assert!(matches!(
            injector.poll(0, late),
            Some(ChaosAction::Stall(_))
        ));
        assert_eq!(injector.poll(0, late + 1), None, "both triggers spent");
        // Unit 1 is untouched, as is an out-of-range unit.
        assert_eq!(injector.poll(1, late), None);
        assert_eq!(injector.poll(9, late), None);
        assert_eq!(injector.panics_fired(), 1);
        assert_eq!(injector.stalls_fired(), 1);
    }

    #[test]
    fn escalation_storm_panics_on_every_poll() {
        let injector = ChaosInjector::escalation_storm(1, 2);
        for tick in 0..5 {
            assert_eq!(injector.poll(1, tick), Some(ChaosAction::Panic));
            assert_eq!(injector.poll(0, tick), None, "sibling untouched");
        }
        assert_eq!(injector.panics_fired(), 5);
    }
}
