//! Online entropy-rate estimation of the served stream, per pool slot.
//!
//! Every [`PooledSource`](crate::source::PooledSource) owns a
//! [`RateEstimator`]: a sliding window over the *delivered* conditioned
//! bits (exactly what consumers receive — never discarded or
//! quarantined bits) re-scored with the order-`k` Markov min-entropy
//! estimator from `strent_analysis::markov` after each batch. The
//! resulting [`EntropyEstimate`] rides on every [`PoolChunk`] and
//! [`SourceStatus`](crate::pool::SourceStatus), which keeps the whole
//! path a pure function of the delivered stream: the estimate — and
//! everything scheduled from it, like the pool's weighted consumption
//! policy — is worker-count and shard-count invariant by construction.
//!
//! ## The `InsufficientData` contract
//!
//! An underfed window is *estimate unavailable*, never zero entropy:
//! `MarkovCounts::min_entropy` returns the typed
//! `AnalysisError::InsufficientData` until the window holds enough
//! transitions, and [`RateEstimator::entropy_rate`] maps that case to
//! `None`. Consumers (the pool's demotion logic, the stats gauges) must
//! treat `None` as "no verdict yet" — demoting a source for having
//! served too few bytes would punish startup, not low entropy. Simlint
//! rule SL112 audits every serving-layer call site of the estimator for
//! exactly this handling.

use std::collections::VecDeque;

use strent_analysis::markov::MarkovCounts;
use strent_analysis::AnalysisError;
use strentropy::pool::EntropyEstimate;

use crate::error::ServeError;

/// A sliding window of delivered bits with an on-demand Markov
/// min-entropy estimate.
///
/// The window holds the most recent `window_bits` delivered bits; the
/// estimate is rebuilt from scratch on each call (transition counts
/// cannot be decremented when a bit slides out, and the window is small
/// enough that a rebuild is microseconds of work).
#[derive(Debug, Clone)]
pub struct RateEstimator {
    order: usize,
    window_bits: usize,
    /// Newest bit at the back; one bit per entry.
    window: VecDeque<u8>,
}

impl RateEstimator {
    /// Creates an estimator of the given Markov order over a window of
    /// `window_bits` delivered bits.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for an order outside the estimator's
    /// supported range or a window too small to ever yield an estimate
    /// (the same bounds `PoolConfig::validate` enforces).
    pub fn new(order: usize, window_bits: usize) -> Result<Self, ServeError> {
        let probe = MarkovCounts::new(order).map_err(|e| ServeError::Config(e.into()))?;
        // Required transitions plus the `order` priming bits: a window
        // any smaller could never produce a verdict.
        #[allow(clippy::cast_possible_truncation)]
        let required = probe.required() as usize + order;
        if window_bits < required {
            return Err(ServeError::Config(AnalysisError::InsufficientData {
                needed: required,
                got: window_bits,
            }
            .into()));
        }
        Ok(RateEstimator {
            order,
            window_bits,
            window: VecDeque::with_capacity(window_bits),
        })
    }

    /// The Markov order `k`.
    #[must_use]
    pub fn order(&self) -> usize {
        self.order
    }

    /// The configured window size, in bits.
    #[must_use]
    pub fn window_bits(&self) -> usize {
        self.window_bits
    }

    /// Delivered bits currently held (saturates at the window size).
    #[must_use]
    pub fn observed_bits(&self) -> usize {
        self.window.len()
    }

    /// Slides one delivered bit into the window (any nonzero byte is a
    /// `1`), evicting the oldest bit once the window is full.
    pub fn feed_bit(&mut self, bit: u8) {
        if self.window.len() == self.window_bits {
            self.window.pop_front();
        }
        self.window.push_back(u8::from(bit != 0));
    }

    /// Slides a chunk of delivered *bytes* into the window, MSB first —
    /// the packing order `BitString::pack` uses, so feeding the pool's
    /// served bytes reproduces the served bit order exactly.
    pub fn feed_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            for shift in (0..8).rev() {
                self.feed_bit((byte >> shift) & 1);
            }
        }
    }

    /// Discards the window (a replaced ring starts a new stream; stale
    /// bits would blend two generations into one estimate).
    pub fn reset(&mut self) {
        self.window.clear();
    }

    /// The current min-entropy estimate of the windowed stream, or
    /// `None` while the window is still too short for a verdict.
    ///
    /// The window is fed to the counter as one contiguous stream, so
    /// the estimate is invariant to how the delivered bytes were
    /// chunked into batches.
    #[must_use]
    pub fn entropy_rate(&self) -> Option<EntropyEstimate> {
        let mut counts = MarkovCounts::new(self.order).ok()?;
        let (front, back) = self.window.as_slices();
        counts.feed(front);
        counts.feed(back);
        // InsufficientData means "no verdict yet", never zero entropy;
        // any other failure (impossible for a validated order) also
        // withholds the estimate rather than inventing one.
        match counts.min_entropy() {
            Ok(h) => Some(EntropyEstimate::from_bits_per_bit(h)),
            Err(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strent_sim::{RngTree, SimRng};

    fn coin_bits(n: usize, seed: u64) -> Vec<u8> {
        let mut rng: SimRng = RngTree::new(seed).stream(0xC0);
        (0..n).map(|_| u8::from(rng.uniform() < 0.5)).collect()
    }

    #[test]
    fn rejects_bad_order_and_thin_windows() {
        assert!(RateEstimator::new(0, 4096).is_err());
        assert!(RateEstimator::new(2, 8).is_err());
        assert!(RateEstimator::new(2, 4096).is_ok());
    }

    #[test]
    fn underfed_window_withholds_the_estimate() {
        let mut est = RateEstimator::new(2, 256).expect("valid");
        assert_eq!(est.entropy_rate(), None, "empty window");
        est.feed_bytes(&[0xA5; 2]);
        // 16 bits < the 64 transitions an order-2 chain requires.
        assert_eq!(est.entropy_rate(), None, "short window");
        assert_eq!(est.observed_bits(), 16);
    }

    #[test]
    fn window_slides_and_estimate_is_chunking_invariant() {
        let bits = coin_bits(2_048, 7);
        let mut whole = RateEstimator::new(2, 512).expect("valid");
        for &b in &bits {
            whole.feed_bit(b);
        }
        assert_eq!(whole.observed_bits(), 512, "window saturates");
        let mut chunked = RateEstimator::new(2, 512).expect("valid");
        for chunk in bits.chunks(37) {
            for &b in chunk {
                chunked.feed_bit(b);
            }
        }
        let (a, b) = (whole.entropy_rate(), chunked.entropy_rate());
        assert!(a.is_some());
        assert_eq!(a, b, "estimate depends only on the windowed stream");
    }

    #[test]
    fn byte_feed_matches_msb_first_bit_feed() {
        let mut by_bytes = RateEstimator::new(1, 128).expect("valid");
        by_bytes.feed_bytes(&[0b1010_0110, 0xFF]);
        let mut by_bits = RateEstimator::new(1, 128).expect("valid");
        for b in [1, 0, 1, 0, 0, 1, 1, 0] {
            by_bits.feed_bit(b);
        }
        for _ in 0..8 {
            by_bits.feed_bit(1);
        }
        assert_eq!(by_bytes.observed_bits(), by_bits.observed_bits());
        assert_eq!(by_bytes.entropy_rate(), by_bits.entropy_rate());
    }

    #[test]
    fn balanced_stream_scores_high_and_stuck_stream_scores_zero() {
        let mut fair = RateEstimator::new(2, 2_048).expect("valid");
        for &b in &coin_bits(2_048, 11) {
            fair.feed_bit(b);
        }
        let h = fair.entropy_rate().expect("verdict").bits_per_bit();
        assert!(h > 0.6, "coin-flip stream scored {h}");

        let mut stuck = RateEstimator::new(2, 2_048).expect("valid");
        stuck.feed_bytes(&[0u8; 256]);
        let h = stuck.entropy_rate().expect("verdict").bits_per_bit();
        assert!(h < 0.01, "stuck stream scored {h}");
        stuck.reset();
        assert_eq!(stuck.observed_bits(), 0);
        assert_eq!(stuck.entropy_rate(), None, "reset clears the verdict");
    }
}
