//! A multiplexed load-generation client for the socket frontend.
//!
//! `serve_load` needs to hold a thousand concurrent connections open
//! against the server without burning a thread per connection on the
//! *client* side either. [`MuxClient`] drives N connections through one
//! `poll(2)` loop ([`crate::sys`]), each running the HELLO → REQ/grant
//! → CLOSE session over the incremental [`wire::FrameDecoder`] — the
//! mirror image of the server's event loop.
//!
//! Two load models, the standard pair for latency benchmarking:
//!
//! * **Closed loop** ([`LoadMode::Closed`]) — each connection keeps
//!   exactly one request outstanding and issues the next on grant.
//!   Offered load adapts to service speed, so the measured throughput
//!   at large N is the *saturation* throughput, but latency hides
//!   queueing the client never generates (coordinated omission).
//! * **Open loop** ([`LoadMode::Open`]) — each connection issues
//!   requests on a fixed arrival schedule whether or not earlier ones
//!   have completed (pipelined on the connection). Offered load is
//!   independent of service speed, so tail latency includes the queue
//!   an overloaded service builds — the honest p999 under load.
//!
//! Latency is measured per request from write-buffering the `REQ` to
//! decoding its reply; replies on one connection arrive in request
//! order (the scheduler grants a connection's requests FIFO), so a
//! per-connection send-time queue pairs them without request ids. In
//! open-loop mode the clock starts at the request's *scheduled*
//! arrival instant, not the actual send: if the generator itself falls
//! behind the schedule, that lateness is charged to the measurement —
//! the standard coordinated-omission correction
//! (`docs/engine_perf.md`).

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

use crate::error::ServeError;
use crate::sys::{poll_fds, PollFd, POLLIN, POLLOUT};
use crate::wire::{
    self, OP_BUSY, OP_CLOSE, OP_ERR, OP_HELLO, OP_HELLO_OK, OP_OK, OP_RATE_LIMITED, OP_REQ,
    OP_SHEDDING,
};

/// How request arrivals are generated; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// One outstanding request per connection; the next is issued on
    /// completion.
    Closed,
    /// Fixed arrival schedule per connection, pipelined regardless of
    /// outstanding requests.
    Open {
        /// Nanoseconds between consecutive arrivals on one connection.
        interval_ns: u64,
    },
}

/// One load run's shape.
#[derive(Debug, Clone)]
pub struct MuxConfig {
    /// Concurrent connections to hold open.
    pub connections: usize,
    /// Requests each connection issues.
    pub requests_per_conn: usize,
    /// Bytes requested per `REQ`.
    pub nbytes: u32,
    /// Arrival model.
    pub mode: LoadMode,
    /// Client id of connection 0; connection `i` registers as
    /// `first_client_id + i`.
    pub first_client_id: u32,
    /// In closed loop, whether a typed backpressure reply re-issues the
    /// request (after counting it) instead of consuming the slot.
    pub retry_backpressure: bool,
    /// Abort the run (reporting `deadline_hit`) after this long.
    pub deadline: Duration,
}

/// What a load run measured.
#[derive(Debug, Clone, Default)]
pub struct MuxReport {
    /// Per-grant latency in nanoseconds, in completion order.
    pub latencies_ns: Vec<u64>,
    /// Granted requests.
    pub grants: u64,
    /// `BUSY` rejections observed.
    pub busy: u64,
    /// `RATE_LIMITED` rejections observed.
    pub rate_limited: u64,
    /// `SHEDDING` rejections observed.
    pub shed: u64,
    /// Terminal `ERR` frames and dead connections.
    pub errors: u64,
    /// Granted payload bytes.
    pub bytes: u64,
    /// Wall time from first HELLO flush to last completion.
    pub wall_ns: u64,
    /// Connections that completed their full session.
    pub completed_conns: usize,
    /// Largest simultaneous outstanding-request count observed.
    pub peak_outstanding: usize,
    /// The run hit its deadline before every session finished.
    pub deadline_hit: bool,
}

struct MuxConn {
    stream: UnixStream,
    decoder: wire::FrameDecoder,
    wbuf: Vec<u8>,
    wpos: usize,
    hello_ok: bool,
    /// Requests issued so far.
    sent: usize,
    /// Requests resolved (granted or rejected-without-retry).
    resolved: usize,
    /// Send instants of outstanding requests, FIFO.
    outstanding: VecDeque<Instant>,
    /// Open loop: when the next arrival is due.
    next_due: Instant,
    /// CLOSE has been buffered; flush and drop.
    finishing: bool,
    dead: bool,
}

impl MuxConn {
    fn done(&self, total: usize) -> bool {
        self.dead || (self.finishing && self.wpos >= self.wbuf.len())
            || (self.sent >= total && self.resolved >= total && self.outstanding.is_empty())
    }

    fn buffer_frame(&mut self, op: u8, payload: &[u8]) {
        // An oversized payload cannot happen for u32-sized requests.
        let _ = wire::encode_frame(&mut self.wbuf, op, payload);
    }

    /// Flushes as much buffered output as the socket accepts.
    fn flush(&mut self) {
        while self.wpos < self.wbuf.len() {
            // Nonblocking socket: WouldBlock parks the rest for the
            // next writable readiness.
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
    }
}

/// Runs one multiplexed load session against the server at `path`.
///
/// # Errors
///
/// [`ServeError::Io`] if the initial connections cannot be established;
/// everything after that is reported in the [`MuxReport`] counters
/// rather than failing the run.
pub fn run(path: impl AsRef<Path>, config: &MuxConfig) -> Result<MuxReport, ServeError> {
    let path = path.as_ref();
    let total = config.requests_per_conn;
    let mut conns = Vec::with_capacity(config.connections);
    let start = Instant::now();
    for i in 0..config.connections {
        let stream = connect_with_retry(path)?;
        stream.set_nonblocking(true)?;
        let id = config.first_client_id + i as u32;
        let mut conn = MuxConn {
            stream,
            decoder: wire::FrameDecoder::new(),
            wbuf: Vec::new(),
            wpos: 0,
            hello_ok: false,
            sent: 0,
            resolved: 0,
            outstanding: VecDeque::new(),
            next_due: start,
            finishing: false,
            dead: false,
        };
        conn.buffer_frame(OP_HELLO, &id.to_le_bytes());
        conn.flush();
        conns.push(conn);
    }

    let mut report = MuxReport::default();
    let deadline = start + config.deadline;
    let mut fds: Vec<PollFd> = Vec::with_capacity(conns.len());
    let mut idx_of: Vec<usize> = Vec::with_capacity(conns.len());
    loop {
        let now = Instant::now();
        if now >= deadline {
            report.deadline_hit = true;
            break;
        }
        // Issue whatever is due, then poll on the remainder.
        for conn in &mut conns {
            pump_sends(conn, config, total, now);
        }
        let outstanding_now: usize = conns.iter().map(|c| c.outstanding.len()).sum();
        report.peak_outstanding = report.peak_outstanding.max(outstanding_now);
        fds.clear();
        idx_of.clear();
        for (i, conn) in conns.iter().enumerate() {
            if conn.dead || conn.done(total) {
                continue;
            }
            let mut events = POLLIN;
            if conn.wpos < conn.wbuf.len() {
                events |= POLLOUT;
            }
            fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
            idx_of.push(i);
        }
        if fds.is_empty() {
            break;
        }
        let timeout = poll_timeout(&conns, config, now, deadline);
        poll_fds(&mut fds, timeout)?;
        for (k, fd) in fds.iter().enumerate() {
            let conn = &mut conns[idx_of[k]];
            if fd.writable() {
                conn.flush();
            }
            if fd.readable() {
                read_conn(conn, config, &mut report);
            }
        }
        // Connections whose last reply just arrived say goodbye.
        for conn in &mut conns {
            if !conn.dead
                && !conn.finishing
                && conn.sent >= total
                && conn.resolved >= total
                && conn.outstanding.is_empty()
            {
                conn.buffer_frame(OP_CLOSE, &[]);
                conn.flush();
                conn.finishing = true;
            }
        }
    }
    report.wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    report.completed_conns = conns
        .iter()
        .filter(|c| !c.dead && c.resolved >= total)
        .count();
    report.errors += conns.iter().filter(|c| c.dead).count() as u64;
    Ok(report)
}

/// Issues every request that is due on `conn` at `now`.
fn pump_sends(conn: &mut MuxConn, config: &MuxConfig, total: usize, now: Instant) {
    if conn.dead || !conn.hello_ok || conn.finishing {
        return;
    }
    loop {
        if conn.sent >= total {
            return;
        }
        let due = match config.mode {
            LoadMode::Closed => conn.outstanding.is_empty(),
            LoadMode::Open { .. } => now >= conn.next_due,
        };
        if !due {
            return;
        }
        conn.buffer_frame(OP_REQ, &config.nbytes.to_le_bytes());
        // Open loop stamps the scheduled arrival, not the actual send:
        // generator lateness counts against the service (the
        // coordinated-omission correction — docs/engine_perf.md).
        conn.outstanding.push_back(match config.mode {
            LoadMode::Closed => Instant::now(),
            LoadMode::Open { .. } => conn.next_due,
        });
        conn.sent += 1;
        if let LoadMode::Open { interval_ns } = config.mode {
            conn.next_due += Duration::from_nanos(interval_ns);
        }
        conn.flush();
        if matches!(config.mode, LoadMode::Closed) {
            return;
        }
    }
}

/// Poll timeout: short enough to hit the next open-loop arrival, long
/// enough not to spin.
fn poll_timeout(conns: &[MuxConn], config: &MuxConfig, now: Instant, deadline: Instant) -> i32 {
    let mut cap = deadline.saturating_duration_since(now);
    if let LoadMode::Open { .. } = config.mode {
        for conn in conns {
            if conn.hello_ok && !conn.dead && !conn.finishing {
                cap = cap.min(conn.next_due.saturating_duration_since(now));
            }
        }
    }
    #[allow(clippy::cast_possible_truncation)]
    let ms = cap.as_millis().min(100) as i32;
    ms.max(1)
}

/// Drains one connection's socket and resolves decoded replies.
fn read_conn(conn: &mut MuxConn, config: &MuxConfig, report: &mut MuxReport) {
    let mut buf = [0u8; 16 * 1024];
    loop {
        // The socket is nonblocking: WouldBlock ends the read burst.
        let n = match conn.stream.read(&mut buf) {
            Ok(0) => {
                if !conn.finishing {
                    conn.dead = true;
                }
                return;
            }
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        };
        conn.decoder.feed(&buf[..n]);
        loop {
            match conn.decoder.next_frame() {
                Ok(Some((op, payload))) => {
                    handle_reply(conn, config, op, &payload, report);
                    if conn.dead {
                        return;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    conn.dead = true;
                    return;
                }
            }
        }
        if n < buf.len() {
            return;
        }
    }
}

fn handle_reply(
    conn: &mut MuxConn,
    config: &MuxConfig,
    op: u8,
    payload: &[u8],
    report: &mut MuxReport,
) {
    match op {
        OP_HELLO_OK => {
            conn.hello_ok = true;
            // The arrival schedule starts once the session is up —
            // handshake time is not the service's request latency.
            conn.next_due = Instant::now();
        }
        OP_OK => {
            if let Some(sent_at) = conn.outstanding.pop_front() {
                report
                    .latencies_ns
                    .push(u64::try_from(sent_at.elapsed().as_nanos()).unwrap_or(u64::MAX));
            }
            report.grants += 1;
            report.bytes += payload.len() as u64;
            conn.resolved += 1;
        }
        OP_BUSY | OP_RATE_LIMITED | OP_SHEDDING => {
            match op {
                OP_BUSY => report.busy += 1,
                OP_RATE_LIMITED => report.rate_limited += 1,
                _ => report.shed += 1,
            }
            let _ = conn.outstanding.pop_front();
            if config.retry_backpressure && matches!(config.mode, LoadMode::Closed) {
                // Re-issue the same request; `sent` already counts it,
                // so the session still ends after `requests_per_conn`
                // *grants* plus however many rejections occurred.
                conn.buffer_frame(OP_REQ, &config.nbytes.to_le_bytes());
                conn.outstanding.push_back(Instant::now());
                conn.flush();
            } else {
                conn.resolved += 1;
            }
        }
        OP_ERR => {
            report.errors += 1;
            conn.dead = true;
        }
        _ => {
            report.errors += 1;
            conn.dead = true;
        }
    }
}

/// Connects with bounded retries — a burst of N connects can transiently
/// overflow the listener backlog while the event loop drains it.
fn connect_with_retry(path: &Path) -> Result<UnixStream, ServeError> {
    let mut delay = Duration::from_micros(200);
    for _ in 0..50 {
        match UnixStream::connect(path) {
            Ok(stream) => return Ok(stream),
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock
                        | ErrorKind::ConnectionRefused
                        | ErrorKind::ResourceBusy
                        | ErrorKind::Interrupted
                ) =>
            {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(20));
            }
            Err(e) => return Err(ServeError::Io(e)),
        }
    }
    UnixStream::connect(path).map_err(ServeError::Io)
}
