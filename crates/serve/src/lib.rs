//! # strent-serve — health-gated entropy as a service
//!
//! The experiment layer answers "which oscillator is the better entropy
//! source?"; this crate asks the follow-on production question: what
//! does it take to *serve* bytes from a pool of such sources, with the
//! SP 800-90B continuous health tests standing between the rings and
//! every consumer?
//!
//! * [`source`] — one pool slot: a live [`RingStream`] + sampler +
//!   conditioner + [`HealthMonitor`], with the quarantine → drain →
//!   re-lock → (readmit | replace) lifecycle;
//! * [`estimator`] — the per-source sliding-window Markov min-entropy
//!   estimator scoring the *delivered* bits online; its verdicts ride
//!   on every chunk and drive the pool's weighted consumption and the
//!   frontend's entropy gauges (see `docs/entropy_estimation.md`);
//! * [`pool`] — N sources produced by W worker threads, consumed in a
//!   deterministic round-robin interleave so the served stream is
//!   independent of W (the `SweepRunner` determinism contract, applied
//!   to a service); a pool can also run as one shard's partition of the
//!   global slot set, and fair mode may weight its consumption by the
//!   online entropy estimates ([`ConsumptionPolicy`]);
//! * [`scheduler`] — the request scheduler: deterministic round-barrier
//!   mode (reproducible byte allocation across clients, bit-identical
//!   at every shard count) and sharded fair mode (per-shard deficit
//!   round-robin with work stealing, per-client token-bucket rate
//!   limiting and the typed backpressure classes [`ServeError::Busy`] /
//!   [`ServeError::RateLimited`] / [`ServeError::Shedding`]);
//! * [`wire`] — the length-prefixed frame codec of the socket protocol,
//!   blocking and incremental (nonblocking) flavors;
//! * [`sys`] — the one-syscall FFI shim (`poll(2)`) the event loops
//!   multiplex on;
//! * [`server`] — the Unix-domain-socket frontend: a single-threaded,
//!   readiness-driven event loop (no thread per connection);
//! * [`mux`] — the multiplexed closed/open-loop load-generation client;
//! * [`supervisor`] — restart policies with deterministic jittered
//!   backoff, typed incident records, and the `supervise` loop every
//!   long-lived service thread runs under (panic → restart → escalate
//!   → quarantine);
//! * [`chaos`] — seed-deterministic chaos plans and the loop-boundary
//!   injector the `serve_chaos` drill arms against a live service.
//!
//! See `docs/serving.md` for the architecture and the determinism
//! contract, and `BENCH_serve.json` (emitted by the `serve_load` bench)
//! for throughput/latency/backpressure numbers.
//!
//! Unsafe code policy: the crate contains exactly one `unsafe` block —
//! the `poll(2)` call in [`sys`] — with a `// SAFETY:` justification
//! audited by simlint rule SL105.
//!
//! [`RingStream`]: strent_rings::stream::RingStream
//! [`HealthMonitor`]: strent_trng::HealthMonitor

#![warn(missing_docs)]

pub mod chaos;
pub mod error;
pub mod estimator;
pub mod mux;
pub mod pool;
pub mod scheduler;
pub mod server;
pub mod source;
pub mod supervisor;
pub mod sys;
pub mod wire;

pub use chaos::{ChaosAction, ChaosInjector, ChaosPlan};
pub use error::{BackpressureClass, ServeError};
pub use estimator::RateEstimator;
pub use pool::{ConsumptionPolicy, PoolChunk, SourcePool, SourceStatus};
pub use scheduler::{
    CompletionQueue, Connector, EntropyClient, EntropyService, RateLimit, SchedulerMode,
    ServeConfig,
};
pub use server::{ServerOptions, ServerStats, UdsClient, UdsServer};
pub use source::PooledSource;
pub use supervisor::{
    Deadline, Incident, IncidentKind, IncidentLog, RestartPolicy, SupervisionOutcome,
};
