//! # strent-serve — health-gated entropy as a service
//!
//! The experiment layer answers "which oscillator is the better entropy
//! source?"; this crate asks the follow-on production question: what
//! does it take to *serve* bytes from a pool of such sources, with the
//! SP 800-90B continuous health tests standing between the rings and
//! every consumer?
//!
//! * [`source`] — one pool slot: a live [`RingStream`] + sampler +
//!   conditioner + [`HealthMonitor`], with the quarantine → drain →
//!   re-lock → (readmit | replace) lifecycle;
//! * [`pool`] — N sources produced by W worker threads, consumed in a
//!   deterministic round-robin interleave so the served stream is
//!   independent of W (the `SweepRunner` determinism contract, applied
//!   to a service);
//! * [`scheduler`] — the request scheduler: deterministic round-barrier
//!   mode (reproducible byte allocation across clients) and fair mode
//!   (deficit round-robin with a bounded in-flight budget and typed
//!   [`ServeError::Busy`] rejections);
//! * [`wire`] — the length-prefixed frame codec of the socket protocol;
//! * [`server`] — the Unix-domain-socket frontend over the same core.
//!
//! See `docs/serving.md` for the architecture and the determinism
//! contract, and `BENCH_serve.json` (emitted by the `serve_load` bench)
//! for throughput/latency/backpressure numbers.
//!
//! [`RingStream`]: strent_rings::stream::RingStream
//! [`HealthMonitor`]: strent_trng::HealthMonitor

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod pool;
pub mod scheduler;
pub mod server;
pub mod source;
pub mod wire;

pub use error::ServeError;
pub use pool::{PoolChunk, SourcePool, SourceStatus};
pub use scheduler::{Connector, EntropyClient, EntropyService, SchedulerMode, ServeConfig};
pub use server::{UdsClient, UdsServer};
pub use source::PooledSource;
