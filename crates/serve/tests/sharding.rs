//! Integration tests for the sharded service: the deterministic-mode
//! shard-count invariance contract and the fair-mode shard/steal path,
//! exercised through the public `EntropyService` API end to end.

use std::collections::BTreeMap;

use strent_serve::{SchedulerMode, ServeConfig, SourcePool};
use strentropy::pool::PoolConfig;

/// FNV-1a 64-bit — the same dependency-free stream digest the
/// `serve_load` bench commits to `BENCH_serve.json`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    }
    hash
}

fn small_pool(sources: usize) -> PoolConfig {
    let mut config = PoolConfig::mixed_default(sources, 4242);
    config.batch_raw_bits = 192;
    config
}

/// Runs a deterministic-mode service at `shards` and returns each
/// client's full received stream, in client order.
fn deterministic_streams(shards: usize) -> Vec<Vec<u8>> {
    const CLIENTS: usize = 3;
    const ROUNDS: usize = 4;
    let mut config = ServeConfig::new(
        small_pool(4),
        SchedulerMode::Deterministic {
            expected_clients: CLIENTS,
        },
    );
    config.shards = shards;
    let service = strent_serve::EntropyService::start(&config).expect("service starts");
    let connector = service.connector();
    let handles: Vec<_> = (0..CLIENTS as u32)
        .map(|id| {
            let connector = connector.clone();
            // Worker thread per in-process client; joined below.
            std::thread::Builder::new()
                .name(format!("det-client-{id}"))
                .spawn(move || {
                    let client = connector.connect(id).expect("registers");
                    let mut stream = Vec::new();
                    for round in 0..ROUNDS {
                        // Asymmetric sizes so a scheduling bug cannot
                        // hide behind uniform allocation.
                        let nbytes = 16 + 8 * (id as usize) + 4 * round;
                        stream.extend(client.request(nbytes).expect("grant"));
                    }
                    stream
                })
                .expect("spawns")
        })
        .collect();
    let streams: Vec<Vec<u8>> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    service.shutdown().expect("clean shutdown");
    streams
}

/// The determinism contract of `docs/serving.md`, extended to shards:
/// every client's byte stream is bit-identical at 1, 2 and 8 shards.
#[test]
fn deterministic_streams_are_shard_count_invariant() {
    let baseline = deterministic_streams(1);
    assert!(baseline.iter().all(|s| !s.is_empty()));
    for shards in [2usize, 8] {
        let streams = deterministic_streams(shards);
        for (id, (a, b)) in baseline.iter().zip(&streams).enumerate() {
            assert_eq!(
                fnv1a(a),
                fnv1a(b),
                "client {id} digest differs at {shards} shards"
            );
            assert_eq!(a, b, "client {id} stream differs at {shards} shards");
        }
    }
}

/// The deterministic allocation is also replayable from a bare pool:
/// concatenating the clients' streams in barrier order reproduces the
/// pool's round-robin interleave (no served byte is dropped, reordered
/// or fabricated by the scheduler).
#[test]
fn deterministic_allocation_replays_from_the_pool() {
    const CLIENTS: usize = 3;
    const ROUNDS: usize = 4;
    let streams = deterministic_streams(1);
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut pool = SourcePool::start(&small_pool(4), 1).expect("pool starts");
    let raw = pool.read_bytes(total).expect("pool produces");
    pool.shutdown();
    // Re-allocate the raw stream with the documented barrier policy:
    // clients served in id order, each round in full, FCFS.
    let mut replayed: Vec<Vec<u8>> = vec![Vec::new(); CLIENTS];
    let mut cursor = 0usize;
    for round in 0..ROUNDS {
        for (id, replay) in replayed.iter_mut().enumerate() {
            let nbytes = 16 + 8 * id + 4 * round;
            replay.extend(&raw[cursor..cursor + nbytes]);
            cursor += nbytes;
        }
    }
    assert_eq!(cursor, total);
    assert_eq!(streams, replayed);
}

/// Fair mode shards real work: with more clients than shards, every
/// shard serves someone, each client gets exactly the bytes it asked
/// for, and client→shard routing is stable (`id % shards`).
#[test]
fn fair_mode_serves_across_shards() {
    const CLIENTS: u32 = 6;
    let mut config = ServeConfig::new(
        small_pool(4),
        SchedulerMode::Fair { max_in_flight: 4 },
    );
    config.shards = 2;
    let service = strent_serve::EntropyService::start(&config).expect("service starts");
    let connector = service.connector();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|id| {
            let connector = connector.clone();
            // Worker thread per in-process client; joined below.
            std::thread::Builder::new()
                .name(format!("fair-client-{id}"))
                .spawn(move || {
                    let client = connector.connect(id).expect("registers");
                    let mut got = 0usize;
                    for _ in 0..3 {
                        got += client.request(24).expect("grant").len();
                    }
                    (id, got)
                })
                .expect("spawns")
        })
        .collect();
    let mut per_client = BTreeMap::new();
    for handle in handles {
        let (id, got) = handle.join().expect("client thread");
        per_client.insert(id, got);
    }
    service.shutdown().expect("clean shutdown");
    assert_eq!(per_client.len(), CLIENTS as usize);
    assert!(per_client.values().all(|&got| got == 72));
}
