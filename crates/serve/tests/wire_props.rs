//! Property-based tests for the `wire` frame codec under the
//! fragmentation the nonblocking event loop actually produces.
//!
//! A readiness-driven frontend never sees whole frames: the kernel
//! hands it arbitrary byte runs, cut anywhere — mid-header, mid-length,
//! mid-payload — and short writes split outgoing frames the same way.
//! These properties pin the incremental [`FrameDecoder`] to the
//! blocking codec: any frame sequence, cut at any chunk boundaries,
//! decodes to exactly the frames that were encoded.

use proptest::prelude::*;

use strent_serve::wire::{
    encode_frame, read_frame, write_frame, FrameDecoder, MAX_FRAME,
};

/// A sequence of (opcode, payload) frames with arbitrary opcodes —
/// the decoder is opcode-agnostic; dispatch happens a layer up.
fn frames() -> impl Strategy<Value = Vec<(u8, Vec<u8>)>> {
    prop::collection::vec(
        (0u8..=255, prop::collection::vec(0u8..=255, 0..96)),
        0..12,
    )
}

/// Chunk lengths to cut the encoded byte stream at (cycled).
fn chunk_lens() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..32, 1..8)
}

fn encode_all(frames: &[(u8, Vec<u8>)]) -> Vec<u8> {
    let mut buf = Vec::new();
    for (op, payload) in frames {
        encode_frame(&mut buf, *op, payload).expect("encodes");
    }
    buf
}

/// Feeds `bytes` to a fresh decoder in chunks whose sizes cycle
/// through `lens`, draining decoded frames after every feed (as the
/// event loop does after every readable poll).
fn decode_chunked(bytes: &[u8], lens: &[usize]) -> Vec<(u8, Vec<u8>)> {
    let mut decoder = FrameDecoder::new();
    let mut decoded = Vec::new();
    let mut pos = 0usize;
    let mut turn = 0usize;
    while pos < bytes.len() {
        let len = lens[turn % lens.len()].min(bytes.len() - pos);
        turn += 1;
        decoder.feed(&bytes[pos..pos + len]);
        pos += len;
        while let Some(frame) = decoder.next_frame().expect("valid stream") {
            decoded.push(frame);
        }
    }
    assert_eq!(decoder.pending(), 0, "no bytes left behind");
    decoded
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any frame sequence survives any fragmentation: chunked decode
    /// reproduces the encoded frames exactly.
    #[test]
    fn chunked_decode_round_trips((frames, lens) in (frames(), chunk_lens())) {
        let bytes = encode_all(&frames);
        let decoded = decode_chunked(&bytes, &lens);
        prop_assert_eq!(decoded, frames);
    }

    /// Fragmentation is invisible: one-shot decode and chunked decode
    /// of the same stream agree frame for frame.
    #[test]
    fn fragmentation_does_not_change_the_frames(
        (frames, lens) in (frames(), chunk_lens())
    ) {
        let bytes = encode_all(&frames);
        let whole = decode_chunked(&bytes, &[bytes.len().max(1)]);
        let split = decode_chunked(&bytes, &lens);
        prop_assert_eq!(whole, split);
    }

    /// The incremental encoder and the blocking writer emit identical
    /// bytes, and the blocking reader accepts the incremental output.
    #[test]
    fn incremental_and_blocking_codecs_agree(
        (op, payload) in (0u8..=255, prop::collection::vec(0u8..=255, 0..96))
    ) {
        let mut incremental = Vec::new();
        encode_frame(&mut incremental, op, &payload).expect("encodes");
        let mut blocking = Vec::new();
        write_frame(&mut blocking, op, &payload).expect("writes");
        prop_assert_eq!(&incremental, &blocking);
        let mut cursor = std::io::Cursor::new(incremental);
        let (rop, rpayload) = read_frame(&mut cursor).expect("reads");
        prop_assert_eq!(rop, op);
        prop_assert_eq!(rpayload, payload);
    }

    /// An oversized length field is rejected from the 5-byte header
    /// alone — no matter how the bytes before it arrived — so a
    /// malicious peer cannot make the decoder buffer `MAX_FRAME`+
    /// bytes.
    #[test]
    fn oversized_length_rejected_under_any_split(
        (prefix, lens, extra) in (
            prop::collection::vec(0u8..=255, 0..32),
            chunk_lens(),
            1u32..1024,
        )
    ) {
        // A valid frame first (the prefix as payload), then a header
        // claiming more than MAX_FRAME.
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, 0x02, &prefix).expect("encodes");
        bytes.push(0x02);
        bytes.extend_from_slice(&(MAX_FRAME as u32 + extra).to_le_bytes());

        let mut decoder = FrameDecoder::new();
        let mut pos = 0usize;
        let mut turn = 0usize;
        let mut good_frames = 0usize;
        let mut rejected = false;
        while pos < bytes.len() {
            let len = lens[turn % lens.len()].min(bytes.len() - pos);
            turn += 1;
            decoder.feed(&bytes[pos..pos + len]);
            pos += len;
            loop {
                match decoder.next_frame() {
                    Ok(Some(_)) => good_frames += 1,
                    Ok(None) => break,
                    Err(err) => {
                        prop_assert_eq!(
                            err.kind(),
                            std::io::ErrorKind::InvalidData
                        );
                        rejected = true;
                        break;
                    }
                }
            }
            if rejected {
                break;
            }
        }
        prop_assert!(rejected, "oversized header must be rejected");
        prop_assert_eq!(good_frames, 1, "the valid frame still decodes");
        prop_assert!(
            decoder.pending() <= 5 + lens.iter().max().copied().unwrap_or(0),
            "rejection happens from the header, not a buffered body"
        );
    }
}
