//! Property-based tests for the `wire` frame codec under the
//! fragmentation the nonblocking event loop actually produces.
//!
//! A readiness-driven frontend never sees whole frames: the kernel
//! hands it arbitrary byte runs, cut anywhere — mid-header, mid-length,
//! mid-payload — and short writes split outgoing frames the same way.
//! These properties pin the incremental [`FrameDecoder`] to the
//! blocking codec: any frame sequence, cut at any chunk boundaries,
//! decodes to exactly the frames that were encoded.

use proptest::prelude::*;

use strent_serve::wire::{
    encode_frame, read_frame, write_frame, FrameDecoder, MAX_FRAME,
};

/// A sequence of (opcode, payload) frames with arbitrary opcodes —
/// the decoder is opcode-agnostic; dispatch happens a layer up.
fn frames() -> impl Strategy<Value = Vec<(u8, Vec<u8>)>> {
    prop::collection::vec(
        (0u8..=255, prop::collection::vec(0u8..=255, 0..96)),
        0..12,
    )
}

/// Chunk lengths to cut the encoded byte stream at (cycled).
fn chunk_lens() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..32, 1..8)
}

fn encode_all(frames: &[(u8, Vec<u8>)]) -> Vec<u8> {
    let mut buf = Vec::new();
    for (op, payload) in frames {
        encode_frame(&mut buf, *op, payload).expect("encodes");
    }
    buf
}

/// Feeds `bytes` to a fresh decoder in chunks whose sizes cycle
/// through `lens`, draining decoded frames after every feed (as the
/// event loop does after every readable poll).
fn decode_chunked(bytes: &[u8], lens: &[usize]) -> Vec<(u8, Vec<u8>)> {
    let mut decoder = FrameDecoder::new();
    let mut decoded = Vec::new();
    let mut pos = 0usize;
    let mut turn = 0usize;
    while pos < bytes.len() {
        let len = lens[turn % lens.len()].min(bytes.len() - pos);
        turn += 1;
        decoder.feed(&bytes[pos..pos + len]);
        pos += len;
        while let Some(frame) = decoder.next_frame().expect("valid stream") {
            decoded.push(frame);
        }
    }
    assert_eq!(decoder.pending(), 0, "no bytes left behind");
    decoded
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any frame sequence survives any fragmentation: chunked decode
    /// reproduces the encoded frames exactly.
    #[test]
    fn chunked_decode_round_trips((frames, lens) in (frames(), chunk_lens())) {
        let bytes = encode_all(&frames);
        let decoded = decode_chunked(&bytes, &lens);
        prop_assert_eq!(decoded, frames);
    }

    /// Fragmentation is invisible: one-shot decode and chunked decode
    /// of the same stream agree frame for frame.
    #[test]
    fn fragmentation_does_not_change_the_frames(
        (frames, lens) in (frames(), chunk_lens())
    ) {
        let bytes = encode_all(&frames);
        let whole = decode_chunked(&bytes, &[bytes.len().max(1)]);
        let split = decode_chunked(&bytes, &lens);
        prop_assert_eq!(whole, split);
    }

    /// The incremental encoder and the blocking writer emit identical
    /// bytes, and the blocking reader accepts the incremental output.
    #[test]
    fn incremental_and_blocking_codecs_agree(
        (op, payload) in (0u8..=255, prop::collection::vec(0u8..=255, 0..96))
    ) {
        let mut incremental = Vec::new();
        encode_frame(&mut incremental, op, &payload).expect("encodes");
        let mut blocking = Vec::new();
        write_frame(&mut blocking, op, &payload).expect("writes");
        prop_assert_eq!(&incremental, &blocking);
        let mut cursor = std::io::Cursor::new(incremental);
        let (rop, rpayload) = read_frame(&mut cursor).expect("reads");
        prop_assert_eq!(rop, op);
        prop_assert_eq!(rpayload, payload);
    }

    /// An oversized length field is rejected from the 5-byte header
    /// alone — no matter how the bytes before it arrived — so a
    /// malicious peer cannot make the decoder buffer `MAX_FRAME`+
    /// bytes.
    #[test]
    fn oversized_length_rejected_under_any_split(
        (prefix, lens, extra) in (
            prop::collection::vec(0u8..=255, 0..32),
            chunk_lens(),
            1u32..1024,
        )
    ) {
        // A valid frame first (the prefix as payload), then a header
        // claiming more than MAX_FRAME.
        let mut bytes = Vec::new();
        encode_frame(&mut bytes, 0x02, &prefix).expect("encodes");
        bytes.push(0x02);
        bytes.extend_from_slice(&(MAX_FRAME as u32 + extra).to_le_bytes());

        let mut decoder = FrameDecoder::new();
        let mut pos = 0usize;
        let mut turn = 0usize;
        let mut good_frames = 0usize;
        let mut rejected = false;
        while pos < bytes.len() {
            let len = lens[turn % lens.len()].min(bytes.len() - pos);
            turn += 1;
            decoder.feed(&bytes[pos..pos + len]);
            pos += len;
            loop {
                match decoder.next_frame() {
                    Ok(Some(_)) => good_frames += 1,
                    Ok(None) => break,
                    Err(err) => {
                        prop_assert_eq!(
                            err.kind(),
                            std::io::ErrorKind::InvalidData
                        );
                        rejected = true;
                        break;
                    }
                }
            }
            if rejected {
                break;
            }
        }
        prop_assert!(rejected, "oversized header must be rejected");
        prop_assert_eq!(good_frames, 1, "the valid frame still decodes");
        prop_assert!(
            decoder.pending() <= 5 + lens.iter().max().copied().unwrap_or(0),
            "rejection happens from the header, not a buffered body"
        );
    }

    /// Mid-frame teardown: a peer that disconnects partway through a
    /// frame leaves the decoder holding an arbitrary truncated stream.
    /// Whatever the cut point and fragmentation, the decoder never
    /// panics and yields exactly the complete frames that precede the
    /// cut — the truncated tail is held, never surfaced as a frame.
    #[test]
    fn mid_frame_teardown_never_panics_or_fabricates(
        (frames, lens, cut_frac) in (frames(), chunk_lens(), 0.0f64..1.0)
    ) {
        let bytes = encode_all(&frames);
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation,
                clippy::cast_sign_loss)]
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let truncated = &bytes[..cut.min(bytes.len())];
        let decoded = {
            // decode_chunked asserts pending()==0; a teardown stream
            // legitimately holds a partial tail, so decode inline.
            let mut decoder = FrameDecoder::new();
            let mut decoded = Vec::new();
            let mut pos = 0usize;
            let mut turn = 0usize;
            while pos < truncated.len() {
                let len = lens[turn % lens.len()].min(truncated.len() - pos);
                turn += 1;
                decoder.feed(&truncated[pos..pos + len]);
                pos += len;
                while let Some(frame) = decoder.next_frame().expect("valid prefix") {
                    decoded.push(frame);
                }
            }
            prop_assert_eq!(decoder.pending(), truncated.len()
                - decoded.iter().map(|(_, p)| 5 + p.len()).sum::<usize>());
            decoded
        };
        // The decoded frames are exactly a prefix of the originals.
        prop_assert!(decoded.len() <= frames.len());
        prop_assert_eq!(&decoded[..], &frames[..decoded.len()]);
    }

    /// Shutdown during a partial write: the server flushes its write
    /// buffer in arbitrary short-write runs, and a shutdown can land
    /// after any number of them. The surviving client sees only the
    /// complete byte-identical frames the flushed prefix contains —
    /// never a truncated frame surfaced as if it were whole.
    #[test]
    fn shutdown_during_partial_write_yields_only_whole_frames(
        (frames, lens, flushed_chunks) in (frames(), chunk_lens(), 0usize..16)
    ) {
        let bytes = encode_all(&frames);
        // Replay the event loop's flush: short writes of cycling sizes,
        // stopped cold after `flushed_chunks` of them (the shutdown).
        let mut flushed = 0usize;
        for turn in 0..flushed_chunks {
            let len = lens[turn % lens.len()].min(bytes.len() - flushed);
            flushed += len;
            if flushed == bytes.len() {
                break;
            }
        }
        let on_the_wire = &bytes[..flushed];
        let mut decoder = FrameDecoder::new();
        decoder.feed(on_the_wire);
        let mut decoded = Vec::new();
        while let Some(frame) = decoder.next_frame().expect("valid prefix") {
            decoded.push(frame);
        }
        // Only complete frames, byte-identical to what was encoded.
        prop_assert!(decoded.len() <= frames.len());
        prop_assert_eq!(&decoded[..], &frames[..decoded.len()]);
        // The dangling tail (if any) is shorter than one whole frame.
        let consumed: usize = decoded.iter().map(|(_, p)| 5 + p.len()).sum();
        prop_assert!(on_the_wire.len() - consumed
            < frames.get(decoded.len()).map_or(usize::MAX, |(_, p)| 5 + p.len()));
    }
}
