//! Integration tests for the socket frontend's hardening layer:
//! idle-connection reaping, per-connection error budgets, the graceful
//! drain state machine and the resilient client, all exercised over a
//! live Unix-domain socket.

use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use strent_serve::wire::{self, OP_ERR, OP_HELLO, OP_HELLO_OK, OP_OK, OP_REQ};
use strent_serve::{
    EntropyService, SchedulerMode, ServeConfig, ServerOptions, UdsClient, UdsServer,
};
use strentropy::pool::PoolConfig;

fn small_pool() -> PoolConfig {
    let mut config = PoolConfig::mixed_default(2, 7341);
    config.batch_raw_bits = 192;
    config
}

fn sock_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("strent-hard-{tag}-{}.sock", std::process::id()))
}

fn fair_service() -> EntropyService {
    let config = ServeConfig::new(small_pool(), SchedulerMode::Fair { max_in_flight: 8 });
    EntropyService::start(&config).expect("service starts")
}

/// A connection that completes HELLO and then goes silent (the
/// slowloris shape) is reaped once the idle timeout passes, counted in
/// the typed `idle_reaped` stat, and the server keeps serving.
#[test]
fn idle_connections_are_reaped_and_counted() {
    let service = fair_service();
    let path = sock_path("reap");
    let options = ServerOptions {
        idle_timeout: Some(Duration::from_millis(200)),
        ..ServerOptions::default()
    };
    let server = UdsServer::start_with_options(service.connector(), &path, options)
        .expect("server starts");
    let stats = server.stats();

    // The slowloris peer: registers, then never sends another byte.
    let slow = UdsClient::connect(&path, 1).expect("slow client registers");
    // A healthy client proves the loop stays live around the reap.
    let mut healthy = UdsClient::connect(&path, 2).expect("healthy client registers");
    assert_eq!(healthy.request(16).expect("grant").len(), 16);

    let deadline = Instant::now() + Duration::from_secs(10);
    while stats.idle_reaped() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        stats.idle_reaped() >= 1,
        "idle connection was never reaped (reaped={})",
        stats.idle_reaped()
    );

    // Fresh connections are still accepted and served after the reap.
    let mut fresh = UdsClient::connect(&path, 3).expect("post-reap client registers");
    assert_eq!(fresh.request(8).expect("grant").len(), 8);
    drop((slow, healthy, fresh));
    server.shutdown().expect("server stops");
    service.shutdown().expect("service stops");
}

/// Decodable-but-invalid frames are answered with typed `ERR` frames
/// and charged against the error budget: the connection keeps working
/// under the budget (a valid request still succeeds between poisons)
/// and is closed only once the budget is spent.
#[test]
fn error_budget_tolerates_poison_frames_then_closes() {
    let service = fair_service();
    let path = sock_path("budget");
    let options = ServerOptions {
        idle_timeout: None,
        error_budget: 3,
    };
    let server = UdsServer::start_with_options(service.connector(), &path, options)
        .expect("server starts");

    let mut stream = UnixStream::connect(&path).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout set");
    wire::write_frame(&mut stream, OP_HELLO, &9u32.to_le_bytes()).expect("hello");
    // Replies below are bounded by the read timeout set above.
    let (op, _) = wire::read_frame(&mut stream).expect("hello reply");
    assert_eq!(op, OP_HELLO_OK);

    // Three poison frames (opcode outside the protocol): each one is
    // an ERR reply, none closes the connection.
    for strike in 1..=3u32 {
        wire::write_frame(&mut stream, 0x40, &[]).expect("poison accepted");
        let (op, payload) = wire::read_frame(&mut stream).expect("err reply");
        assert_eq!(op, OP_ERR, "strike {strike} must get a typed ERR");
        assert!(String::from_utf8_lossy(&payload).contains("protocol violation"));
    }

    // The connection is still functional under the budget.
    wire::write_frame(&mut stream, OP_REQ, &16u32.to_le_bytes()).expect("req");
    let (op, payload) = wire::read_frame(&mut stream).expect("grant reply");
    assert_eq!(op, OP_OK);
    assert_eq!(payload.len(), 16);

    // The fourth strike exceeds the budget: one last ERR, then EOF.
    wire::write_frame(&mut stream, 0x41, &[]).expect("final poison");
    let (op, _) = wire::read_frame(&mut stream).expect("final err");
    assert_eq!(op, OP_ERR);
    if let Ok((op, _)) = wire::read_frame(&mut stream) {
        panic!("expected close after budget, got opcode 0x{op:02x}");
    }

    server.shutdown().expect("server stops");
    service.shutdown().expect("service stops");
}

/// `shutdown_graceful` reports a clean drain when every grant has been
/// delivered and every write buffer flushed before the deadline.
#[test]
fn graceful_shutdown_drains_cleanly() {
    let service = fair_service();
    let path = sock_path("drain");
    let server = UdsServer::start(service.connector(), &path).expect("server starts");

    let mut client = UdsClient::connect(&path, 31).expect("registers");
    for _ in 0..4 {
        assert_eq!(client.request(32).expect("grant").len(), 32);
    }
    client.close().expect("close frame");

    let drained = server
        .shutdown_graceful(Duration::from_secs(10))
        .expect("no event-loop panic");
    assert!(drained, "drain must quiesce with no in-flight work left");
    service.shutdown().expect("service stops");
}

/// The resilient request path survives a dropped connection: after
/// `reconnect` the same client id is re-registered and served, and
/// `request_resilient` succeeds within its deadline.
#[test]
fn resilient_client_reconnects_and_serves() {
    let service = fair_service();
    let path = sock_path("resilient");
    let server = UdsServer::start(service.connector(), &path).expect("server starts");

    let mut client = UdsClient::connect(&path, 57).expect("registers");
    assert_eq!(
        client
            .request_resilient(24, Duration::from_secs(10))
            .expect("grant")
            .len(),
        24
    );
    client.reconnect().expect("reconnects under the same id");
    assert_eq!(
        client
            .request_resilient(40, Duration::from_secs(10))
            .expect("grant after reconnect")
            .len(),
        40
    );
    drop(client);
    server.shutdown().expect("server stops");
    service.shutdown().expect("service stops");
}
