//! Determinism and `unsafe`-code hygiene linter for the strentropy
//! workspace (the `SL1xx` half of `simlint`; the `SL0xx` netlist half
//! lives in `strent_sim::lint` / `strent_rings::lint`).
//!
//! The whole reproduction rests on bit-determinism: the same seed must
//! produce the same period series on any machine, any worker count.
//! This crate scans workspace sources for constructs that silently
//! break that contract in deterministic code — hash-order iteration,
//! wall-clock reads, ambient RNGs, unordered float reductions — plus an
//! `unsafe`-block audit requiring `// SAFETY:` comments and per-crate
//! `#![forbid(unsafe_code)]` gates.
//!
//! The scanner has two layers, both hand-rolled with no external
//! dependencies (consistent with the vendored offline stubs):
//!
//! * **Text rules (SL1xx)** — a token state machine over
//!   comment/string-stripped lines. It blanks comments and
//!   string/char literals before matching, so `"HashMap"` inside a
//!   string or a doc comment never fires, and it skips `#[cfg(test)]`
//!   regions by brace tracking — tests may use wall clocks and hash
//!   sets freely.
//! * **Semantic rules (SL2xx, plus the provenance-aware SL107)** — a
//!   real lexer ([`lexer`]) feeding a brace/block tree with item
//!   boundaries ([`tree`]), per-function symbol tables with receiver
//!   provenance ([`symbols`]), and an intra-function walk over
//!   lock/channel/spawn operations ([`rules_sl2xx`]). Guards must
//!   *dominate* risky calls in the block tree, not merely sit within
//!   3 lines.
//!
//! Diagnostic codes are stable; [`RULES`] is the machine-readable
//! registry (`simlint --catalog`) and `docs/static_analysis.md` the
//! human catalog — CI asserts the two agree. Vetted sites are excused
//! inline (`// simlint: allow(SL102)` on the offending or preceding
//! line), via the allowlist file `scripts/simlint.allow`, or
//! grandfathered with a count in `scripts/simlint.baseline`
//! ([`Baseline`]; deny mode then fails only on new findings).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod lexer;
pub mod rules_sl2xx;
pub mod symbols;
pub mod tree;

pub use baseline::{Baseline, BaselineOutcome};
pub use rules_sl2xx::{lock_conflicts, scan_semantic, LockPair, SemanticScan};

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One row of the rule registry: the single source of truth that the
/// self-test, `--catalog` and the docs-drift CI check all consume.
#[derive(Debug)]
pub struct RuleInfo {
    /// Stable diagnostic code (`SL101`..).
    pub code: &'static str,
    /// `"error"` or `"warning"` (both fatal under `--deny`).
    pub severity: &'static str,
    /// Where the rule applies (matched verbatim against the docs
    /// tables): `deterministic-src`, `workspace`, `crate-roots`,
    /// `all-src`, `serve-src` or `serve+core-src`.
    pub scope: &'static str,
    /// One-line description of the finding.
    pub summary: &'static str,
    /// The firing fixture under `crates/simlint/fixtures/`.
    pub fixture: &'static str,
    /// Which crate the fixture poses as (`sim` or `serve`) — decides
    /// the path label the self-test scans it under.
    pub fixture_crate: &'static str,
}

/// Every rule the scanner knows, in code order. A row here without a
/// fixture (or a fixture without a row) fails the self-test.
pub const RULES: [RuleInfo; 17] = [
    RuleInfo {
        code: "SL101",
        severity: "error",
        scope: "deterministic-src",
        summary: "HashMap/HashSet in deterministic code (iteration order)",
        fixture: "hash_iteration.rs",
        fixture_crate: "sim",
    },
    RuleInfo {
        code: "SL102",
        severity: "error",
        scope: "deterministic-src",
        summary: "Instant::now/SystemTime wall-clock read in deterministic code",
        fixture: "wall_clock.rs",
        fixture_crate: "sim",
    },
    RuleInfo {
        code: "SL103",
        severity: "error",
        scope: "deterministic-src",
        summary: "ambient RNG (thread_rng, rand::random, from_entropy, OsRng)",
        fixture: "ambient_rng.rs",
        fixture_crate: "sim",
    },
    RuleInfo {
        code: "SL104",
        severity: "error",
        scope: "deterministic-src",
        summary: "float reduction over an unordered iterator",
        fixture: "float_reduction.rs",
        fixture_crate: "sim",
    },
    RuleInfo {
        code: "SL105",
        severity: "error",
        scope: "workspace",
        summary: "unsafe without a // SAFETY: comment in the 3 preceding lines",
        fixture: "unsafe_no_safety.rs",
        fixture_crate: "sim",
    },
    RuleInfo {
        code: "SL106",
        severity: "warning",
        scope: "crate-roots",
        summary: "crate with no unsafe code missing #![forbid(unsafe_code)]",
        fixture: "missing_gate/src/lib.rs",
        fixture_crate: "sim",
    },
    RuleInfo {
        code: "SL107",
        severity: "error",
        scope: "all-src",
        summary: "bare unwrap/expect on JoinHandle::join (provenance-tracked)",
        fixture: "join_unwrap.rs",
        fixture_crate: "sim",
    },
    RuleInfo {
        code: "SL108",
        severity: "error",
        scope: "serve-src",
        summary: "blocking read with no liveness guard within 3 lines",
        fixture: "blocking_recv.rs",
        fixture_crate: "serve",
    },
    RuleInfo {
        code: "SL109",
        severity: "error",
        scope: "serve+core-src",
        summary: "direct RingStream::build bypassing the SourceBackend selector",
        fixture: "ring_stream_bypass.rs",
        fixture_crate: "serve",
    },
    RuleInfo {
        code: "SL110",
        severity: "error",
        scope: "serve-src",
        summary: "thread spawn with no lifecycle token within 3 lines",
        fixture: "conn_thread_spawn.rs",
        fixture_crate: "serve",
    },
    RuleInfo {
        code: "SL111",
        severity: "error",
        scope: "serve-src",
        summary: "catch_unwind with no supervision token within 3 lines",
        fixture: "naked_catch_unwind.rs",
        fixture_crate: "serve",
    },
    RuleInfo {
        code: "SL112",
        severity: "error",
        scope: "serve-src",
        summary: "entropy-estimate consumer with no InsufficientData note within 3 lines",
        fixture: "entropy_unhandled.rs",
        fixture_crate: "serve",
    },
    RuleInfo {
        code: "SL201",
        severity: "error",
        scope: "serve-src",
        summary: "lock pair acquired in both orders (work-stealing deadlock)",
        fixture: "lock_order.rs",
        fixture_crate: "serve",
    },
    RuleInfo {
        code: "SL202",
        severity: "error",
        scope: "serve-src",
        summary: "mutex guard held across a blocking call",
        fixture: "guard_across_block.rs",
        fixture_crate: "serve",
    },
    RuleInfo {
        code: "SL203",
        severity: "warning",
        scope: "serve-src",
        summary: "channel topology: unbounded channel() or Sender with dropped Receiver",
        fixture: "channel_topology.rs",
        fixture_crate: "serve",
    },
    RuleInfo {
        code: "SL204",
        severity: "error",
        scope: "deterministic-src",
        summary: "seed material not derived from the run seed or RngTree",
        fixture: "rng_provenance.rs",
        fixture_crate: "sim",
    },
    RuleInfo {
        code: "SL205",
        severity: "warning",
        scope: "serve-src",
        summary: "scope-aware guard check: guard must dominate the risky call",
        fixture: "scope_guard.rs",
        fixture_crate: "serve",
    },
];

/// Looks up a registry row by code.
#[must_use]
pub fn rule(code: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.code == code)
}

/// The machine-readable rule catalog (`simlint --catalog`):
/// hand-formatted JSON with one object per registry row.
#[must_use]
pub fn catalog_json() -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"rules\": [");
    for (i, r) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"code\": \"{}\", \"severity\": \"{}\", \"scope\": \"{}\", \
             \"summary\": \"{}\"}}",
            r.code,
            r.severity,
            r.scope,
            json_escape(r.summary)
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Crates whose `src/` trees must stay deterministic: everything a
/// simulation result flows through. `bench` is excluded (wall-clock
/// timing is its job), as are the vendored stubs.
pub const DETERMINISTIC_CRATES: [&str; 6] = [
    "crates/sim",
    "crates/rings",
    "crates/device",
    "crates/analysis",
    "crates/trng",
    "crates/core",
];

/// One finding of the source scanner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceDiagnostic {
    /// Stable code (`SL101`..`SL107`).
    pub code: &'static str,
    /// `"error"` or `"warning"` (both fatal under `--deny`).
    pub severity: &'static str,
    /// Path relative to the scanned root, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for SourceDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}: {}",
            self.path, self.line, self.code, self.severity, self.message
        )
    }
}

/// The result of scanning a tree.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Number of `.rs` files visited.
    pub files_scanned: usize,
    /// Wall time of the scan in milliseconds.
    pub scan_ms: u128,
    /// Findings suppressed by the baseline (grandfathered, not shown).
    pub suppressed: usize,
    /// All findings, in path/line order.
    pub diagnostics: Vec<SourceDiagnostic>,
}

impl ScanReport {
    /// Whether the scan found nothing.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings per registry code (zero entries included), for the
    /// JSON report's `rule_counts` block.
    #[must_use]
    pub fn rule_counts(&self) -> Vec<(&'static str, usize)> {
        RULES
            .iter()
            .map(|r| {
                (
                    r.code,
                    self.diagnostics.iter().filter(|d| d.code == r.code).count(),
                )
            })
            .collect()
    }

    /// Hand-formatted machine-readable JSON (`{"version":2,...}`) —
    /// no serializer crate in the closure, so the shape is tested
    /// against `python3 -c "json.load"` in CI. Version 2 adds
    /// `scan_ms`, `suppressed` and the per-rule `rule_counts` block.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 2,\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"scan_ms\": {},\n", self.scan_ms));
        out.push_str(&format!("  \"suppressed\": {},\n", self.suppressed));
        out.push_str("  \"rule_counts\": {");
        for (i, (code, n)) in self.rule_counts().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{code}\": {n}"));
        }
        out.push_str("\n  },\n");
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"code\": \"{}\", \"severity\": \"{}\", \"path\": \"{}\", \
                 \"line\": {}, \"message\": \"{}\"}}",
                d.code,
                d.severity,
                json_escape(&d.path),
                d.line,
                json_escape(&d.message)
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// File-level allowlist for vetted sites (`scripts/simlint.allow`).
///
/// Line format: `<path-suffix> <code> [justification...]`; `#` starts a
/// comment. A diagnostic is excused when its code matches and its path
/// ends with the entry's path suffix.
#[derive(Debug, Default, Clone)]
pub struct Allowlist {
    entries: Vec<(String, String)>,
}

impl Allowlist {
    /// An empty allowlist (nothing excused).
    #[must_use]
    pub fn empty() -> Self {
        Allowlist::default()
    }

    /// Parses the allowlist format; unknown lines are rejected so typos
    /// cannot silently excuse nothing.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(path), Some(code)) = (parts.next(), parts.next()) else {
                return Err(format!(
                    "allowlist line {}: expected '<path> <code> [reason]', got {raw:?}",
                    i + 1
                ));
            };
            if !code.starts_with("SL") {
                return Err(format!(
                    "allowlist line {}: {code:?} is not an SLxxx code",
                    i + 1
                ));
            }
            entries.push((path.replace('\\', "/"), code.to_owned()));
        }
        Ok(Allowlist { entries })
    }

    /// Loads and parses an allowlist file.
    ///
    /// # Errors
    ///
    /// Returns the IO or parse failure as a message.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = fs::read_to_string(path)
            .map_err(|e| format!("cannot read allowlist {}: {e}", path.display()))?;
        Self::parse(&text)
    }

    /// Whether `(path, code)` is excused.
    #[must_use]
    pub fn allows(&self, path: &str, code: &str) -> bool {
        self.entries
            .iter()
            .any(|(p, c)| c == code && (path == p || path.ends_with(&format!("/{p}")) || path.ends_with(p.as_str())))
    }
}

/// Blanks comments and string/char literal *contents* with spaces,
/// preserving line boundaries and byte columns, so token matching and
/// brace counting never trip over `format!("{i}")` or `"HashMap"`.
fn strip_source(source: &str) -> Vec<String> {
    #[derive(PartialEq)]
    enum State {
        Normal,
        LineComment,
        Block(u32),
        Str,
        RawStr(u32),
    }
    let mut state = State::Normal;
    let mut lines: Vec<String> = Vec::new();
    for raw_line in source.lines() {
        let bytes: Vec<char> = raw_line.chars().collect();
        let mut out = String::with_capacity(raw_line.len());
        let mut i = 0usize;
        // A line comment never crosses a newline.
        if state == State::LineComment {
            state = State::Normal;
        }
        while i < bytes.len() {
            let c = bytes[i];
            let next = bytes.get(i + 1).copied();
            match state {
                State::Normal => match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                    }
                    '/' if next == Some('*') => {
                        state = State::Block(1);
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                    }
                    '"' => {
                        state = State::Str;
                        out.push('"');
                        i += 1;
                    }
                    'r' | 'b' => {
                        // Possible raw/byte string: r", r#", br", b".
                        let mut j = i + 1;
                        if c == 'b' && bytes.get(j) == Some(&'r') {
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        while bytes.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        let is_raw = (c == 'r' || bytes.get(i + 1) == Some(&'r') || hashes == 0)
                            && bytes.get(j) == Some(&'"')
                            && (c == 'r' || c == 'b');
                        // Reject identifiers like `rings` (prev char is
                        // part of an identifier, or no quote follows).
                        let prev_ident = i > 0 && is_ident_char(bytes[i - 1]);
                        if is_raw && !prev_ident && bytes.get(j) == Some(&'"') {
                            for _ in i..=j {
                                out.push(' ');
                            }
                            state = State::RawStr(hashes);
                            i = j + 1;
                        } else {
                            out.push(c);
                            i += 1;
                        }
                    }
                    '\'' => {
                        // Char literal vs lifetime. A literal is 'x' or
                        // an escape; a lifetime is '<ident> with no
                        // closing quote.
                        if next == Some('\\') {
                            // Escape: scan to the closing quote.
                            out.push('\'');
                            let mut j = i + 2;
                            while j < bytes.len() && bytes[j] != '\'' {
                                out.push(' ');
                                j += 1;
                            }
                            if j < bytes.len() {
                                out.push(' '); // the escaped payload end
                                out.push('\'');
                                i = j + 1;
                            } else {
                                i = j;
                            }
                        } else if bytes.get(i + 2) == Some(&'\'') {
                            out.push('\'');
                            out.push(' ');
                            out.push('\'');
                            i += 3;
                        } else {
                            out.push('\'');
                            i += 1;
                        }
                    }
                    c => {
                        out.push(c);
                        i += 1;
                    }
                },
                State::LineComment => {
                    out.push(' ');
                    i += 1;
                }
                State::Block(depth) => {
                    if c == '*' && next == Some('/') {
                        state = if depth == 1 {
                            State::Normal
                        } else {
                            State::Block(depth - 1)
                        };
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = State::Block(depth + 1);
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
                State::Str => {
                    if c == '\\' {
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                    } else if c == '"' {
                        state = State::Normal;
                        out.push('"');
                        i += 1;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if c == '"' {
                        let mut j = i + 1;
                        let mut seen = 0u32;
                        while seen < hashes && bytes.get(j) == Some(&'#') {
                            seen += 1;
                            j += 1;
                        }
                        if seen == hashes {
                            state = State::Normal;
                            for _ in i..j {
                                out.push(' ');
                            }
                            i = j;
                        } else {
                            out.push(' ');
                            i += 1;
                        }
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                }
            }
        }
        lines.push(out);
    }
    lines
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Marks lines belonging to `#[cfg(test)]` items (the attribute, the
/// item header and the braced body) — determinism rules don't apply to
/// tests.
fn test_mask(stripped: &[String]) -> Vec<bool> {
    let mut mask = vec![false; stripped.len()];
    let mut in_region = false;
    let mut pending = false;
    let mut depth: i64 = 0;
    for (idx, line) in stripped.iter().enumerate() {
        if in_region {
            mask[idx] = true;
            depth += brace_delta(line);
            if depth <= 0 {
                in_region = false;
            }
            continue;
        }
        let mut search_from = 0usize;
        if !pending {
            if let Some(pos) = line.find("#[cfg(test") {
                pending = true;
                mask[idx] = true;
                search_from = pos;
            }
        } else {
            mask[idx] = true;
        }
        if pending {
            // Look for the start of the item body, or a `;` ending a
            // braceless item (e.g. `#[cfg(test)] use foo;`).
            for (off, c) in line[search_from..].char_indices() {
                match c {
                    '{' => {
                        depth = 1 + brace_delta(&line[search_from + off + 1..]);
                        pending = false;
                        if depth > 0 {
                            in_region = true;
                        }
                        break;
                    }
                    ';' => {
                        pending = false;
                        break;
                    }
                    _ => {}
                }
            }
        }
    }
    mask
}

fn brace_delta(s: &str) -> i64 {
    let mut delta = 0i64;
    for c in s.chars() {
        match c {
            '{' => delta += 1,
            '}' => delta -= 1,
            _ => {}
        }
    }
    delta
}

/// Finds `token` in `line` at an identifier boundary (so `unsafe` never
/// matches inside `unsafe_code`). Tokens may contain `::`.
fn has_token(line: &str, token: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(token) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !is_ident_char(line[..abs].chars().next_back().unwrap_or(' '));
        let after = line[abs + token.len()..].chars().next();
        let after_ok = !after.is_some_and(is_ident_char);
        if before_ok && after_ok {
            return true;
        }
        start = abs + token.len();
    }
    false
}

/// Whether the raw line (or one of the `window` raw lines before it)
/// carries an inline `// simlint: allow(<code>)` directive.
fn inline_allowed(raw: &[&str], idx: usize, code: &str) -> bool {
    let needle = format!("simlint: allow({code})");
    let from = idx.saturating_sub(1);
    raw[from..=idx].iter().any(|l| l.contains(&needle))
}

/// Whether a `// SAFETY:` comment appears on the line or within the 3
/// preceding lines.
fn has_safety_comment(raw: &[&str], idx: usize) -> bool {
    let from = idx.saturating_sub(3);
    raw[from..=idx].iter().any(|l| l.contains("// SAFETY:"))
}

/// Blocking-read call shapes SL108 looks for in the serving layer.
/// `read_frame(` is the crate's own frame decoder — itself a blocking
/// read over whatever transport it is handed.
const BLOCKING_READS: [&str; 5] =
    [".recv()", ".accept()", ".read_exact(", ".read(", "read_frame("];

/// Liveness guards SL108 accepts on the line or within the 3 preceding
/// raw lines. Comments count: a `// bounded by the read timeout` note
/// next to the call is exactly the documentation the rule wants.
const LIVENESS_GUARDS: [&str; 5] =
    ["timeout", "shutdown", "nonblocking", "try_recv", "deadline"];

/// Whether a liveness guard token appears on the raw line or within the
/// 3 preceding raw lines (comments included, unlike the token scan).
fn has_liveness_guard(raw: &[&str], idx: usize) -> bool {
    let from = idx.saturating_sub(3);
    raw[from..=idx]
        .iter()
        .any(|l| LIVENESS_GUARDS.iter().any(|g| l.contains(g)))
}

/// Thread-creation call shapes SL110 looks for in the serving layer.
/// `.spawn(` catches both `thread::spawn` closures routed through
/// `Builder` and bare `std::thread::spawn` calls via the first pattern.
const THREAD_SPAWNS: [&str; 2] = ["thread::spawn", ".spawn("];

/// Lifecycle tokens SL110 accepts on the line or within the 3
/// preceding raw lines (matched case-insensitively; comments and
/// thread-name strings both count). These name the only threads the
/// serving layer is allowed to create: pool workers, scheduler/shard
/// threads and the event loop, all spawned once at startup — never one
/// per connection.
const LIFECYCLE_GUARDS: [&str; 6] = [
    "worker",
    "scheduler",
    "shard",
    "event-loop",
    "event loop",
    "startup",
];

/// Whether a lifecycle token appears on the raw line or within the 3
/// preceding raw lines, ignoring case.
fn has_lifecycle_guard(raw: &[&str], idx: usize) -> bool {
    let from = idx.saturating_sub(3);
    raw[from..=idx].iter().any(|l| {
        let lower = l.to_lowercase();
        LIFECYCLE_GUARDS.iter().any(|g| lower.contains(g))
    })
}

/// Supervision tokens SL111 accepts on the line or within the 3
/// preceding raw lines (matched case-insensitively; comments count).
/// A `catch_unwind` in the serving layer must belong to a
/// restart/backoff/escalation discipline — a caught panic that is
/// neither restarted nor escalated is a silently dead unit.
const SUPERVISION_GUARDS: [&str; 5] =
    ["restart", "backoff", "escalat", "supervis", "resume"];

/// Whether a supervision token appears on the raw line or within the 3
/// preceding raw lines, ignoring case.
fn has_supervision_guard(raw: &[&str], idx: usize) -> bool {
    let from = idx.saturating_sub(3);
    raw[from..=idx].iter().any(|l| {
        let lower = l.to_lowercase();
        SUPERVISION_GUARDS.iter().any(|g| lower.contains(g))
    })
}

/// Entropy-estimate call shapes SL112 looks for in the serving layer:
/// the sliding-window estimator's verdict and the batch Markov
/// estimator. Both report an underfed window through the typed
/// `InsufficientData` case, and a consumer that conflates it with zero
/// entropy demotes freshly started or re-locked sources for having
/// served too few bytes.
const ENTROPY_ESTIMATE_CALLS: [&str; 2] = [".entropy_rate(", "markov_min_entropy("];

/// Whether an `InsufficientData` note appears on the raw line or within
/// the 3 preceding raw lines (comments count: a doc line spelling out
/// the no-verdict-yet semantics is exactly what the rule wants).
fn has_insufficient_data_note(raw: &[&str], idx: usize) -> bool {
    let from = idx.saturating_sub(3);
    raw[from..=idx].iter().any(|l| l.contains("InsufficientData"))
}

/// Scans one file's source text. `deterministic` enables the SL101-104
/// rules (hot-path files); the `unsafe` audit (SL105) always runs.
/// Returns findings not excused inline or by the allowlist.
#[must_use]
pub fn scan_source(
    path: &str,
    source: &str,
    deterministic: bool,
    allowlist: &Allowlist,
) -> Vec<SourceDiagnostic> {
    scan_source_ext(path, source, deterministic, allowlist).0
}

/// [`scan_source`] plus the file's raw lock acquisition pairs, which
/// the workspace scanner merges for the cross-file SL201 check.
#[must_use]
pub fn scan_source_ext(
    path: &str,
    source: &str,
    deterministic: bool,
    allowlist: &Allowlist,
) -> (Vec<SourceDiagnostic>, Vec<LockPair>) {
    let raw: Vec<&str> = source.lines().collect();
    // The semantic pass runs first: its SL107 verdicts mask the text
    // fallback on the lines where receiver provenance is known.
    let sem = scan_semantic(path, source, deterministic);
    let stripped = strip_source(source);
    let mask = test_mask(&stripped);
    let mut out = Vec::new();
    let push = |code: &'static str,
                    severity: &'static str,
                    idx: usize,
                    message: String,
                    out: &mut Vec<SourceDiagnostic>| {
        if !inline_allowed(&raw, idx, code) && !allowlist.allows(path, code) {
            out.push(SourceDiagnostic {
                code,
                severity,
                path: path.to_owned(),
                line: idx + 1,
                message,
            });
        }
    };
    for (idx, line) in stripped.iter().enumerate() {
        if deterministic && !mask[idx] {
            for container in ["HashMap", "HashSet"] {
                if has_token(line, container) {
                    push(
                        "SL101",
                        "error",
                        idx,
                        format!(
                            "{container} in deterministic code: iteration order is \
                             nondeterministic; use Vec or BTreeMap"
                        ),
                        &mut out,
                    );
                }
            }
            if has_token(line, "Instant::now") || has_token(line, "SystemTime") {
                push(
                    "SL102",
                    "error",
                    idx,
                    "wall-clock read in deterministic code: results must depend \
                     only on the seed"
                        .to_owned(),
                    &mut out,
                );
            }
            for rng in ["thread_rng", "rand::random", "from_entropy", "OsRng"] {
                if has_token(line, rng) {
                    push(
                        "SL103",
                        "error",
                        idx,
                        format!(
                            "ambient RNG `{rng}` in deterministic code: all randomness \
                             must flow from the seeded RngTree"
                        ),
                        &mut out,
                    );
                }
            }
            let unordered = [".values()", ".keys()", "par_iter"]
                .iter()
                .any(|p| line.contains(p));
            let reduces = [".sum::<f64>", ".sum::<f32>", ".fold("]
                .iter()
                .any(|p| line.contains(p));
            if unordered && reduces {
                push(
                    "SL104",
                    "error",
                    idx,
                    "float reduction over an unordered iterator: summation order \
                     changes the result bits; collect and sort (or iterate a Vec) first"
                        .to_owned(),
                    &mut out,
                );
            }
        }
        if has_token(line, "unsafe") && !has_safety_comment(&raw, idx) {
            push(
                "SL105",
                "error",
                idx,
                "unsafe without a `// SAFETY:` comment in the 3 preceding lines"
                    .to_owned(),
                &mut out,
            );
        }
        // SL107 applies to every crate's `src/` tree, not just the
        // deterministic ones — a swallowed worker panic loses its
        // payload anywhere. `.join()` with empty parens is the
        // `JoinHandle` signature; `Path::join("x")` takes an argument
        // and never matches. Tests may unwrap joins freely.
        if !mask[idx]
            && path.contains("/src/")
            && !sem.sl107_claimed.contains(&(idx + 1))
            && line.contains(".join()")
            && (line.contains(".unwrap()") || line.contains(".expect("))
        {
            push(
                "SL107",
                "error",
                idx,
                "bare unwrap/expect on JoinHandle::join: a worker panic loses its \
                 payload and origin; match the Err and re-panic with the payload \
                 plus shard/job context"
                    .to_owned(),
                &mut out,
            );
        }
        // SL108 guards the serving layer's liveness: strent-serve is a
        // long-running daemon, so every blocking read in its src/ tree
        // (channel recv, socket accept, transport read) must sit next
        // to a timeout, shutdown check or nonblocking setup — otherwise
        // a silent peer or a dead worker pins a thread forever. Tests
        // may block freely.
        if !mask[idx] && path.starts_with("crates/serve/") && path.contains("/src/") {
            for pattern in BLOCKING_READS {
                if line.contains(pattern) && !has_liveness_guard(&raw, idx) {
                    push(
                        "SL108",
                        "error",
                        idx,
                        format!(
                            "unguarded blocking read `{pattern}` in the serving layer: \
                             add a timeout/deadline, a nonblocking setup, or a shutdown \
                             check within the 3 preceding lines (a comment naming the \
                             guard counts)"
                        ),
                        &mut out,
                    );
                    break;
                }
            }
        }
        // SL109 protects the surrogate tier's fallback rules: in the
        // experiment core and the serving layer every ring must be
        // constructed through `EntropySource::build` (or the metered
        // `measure` helpers), never by calling `RingStream::build`
        // directly — a direct call silently ignores the spec's
        // `SourceBackend` request and the boundary/fault fallback
        // logic. The rings crate itself (where the selector lives) and
        // tests are exempt.
        if !mask[idx]
            && (path.starts_with("crates/serve/") || path.starts_with("crates/core/"))
            && path.contains("/src/")
            && line.contains("RingStream::build")
        {
            push(
                "SL109",
                "error",
                idx,
                "direct RingStream::build bypasses the SourceBackend selector: \
                 construct rings through EntropySource::build so surrogate \
                 requests and their fallback rules are honored"
                    .to_owned(),
                &mut out,
            );
        }
        // SL110 keeps per-connection threads out of the serving layer:
        // the socket frontend is a readiness-driven event loop, so the
        // only threads strent-serve may create are the named lifecycle
        // threads (pool workers, scheduler/shard threads, the event
        // loop itself), spawned once at startup. A spawn with no
        // lifecycle token nearby is the thread-per-connection pattern
        // creeping back in — the exact design this rule retired.
        if !mask[idx] && path.starts_with("crates/serve/") && path.contains("/src/") {
            for pattern in THREAD_SPAWNS {
                if line.contains(pattern) && !has_lifecycle_guard(&raw, idx) {
                    push(
                        "SL110",
                        "error",
                        idx,
                        format!(
                            "thread spawn `{pattern}` in the serving layer without a \
                             lifecycle token: connections are multiplexed by the event \
                             loop, never given threads; if this is a legitimate \
                             worker/scheduler/shard/event-loop startup spawn, name the \
                             thread or say so within the 3 preceding lines"
                        ),
                        &mut out,
                    );
                    break;
                }
            }
        }
        // SL111 keeps panic recovery supervised: the serving layer's
        // only legitimate `catch_unwind` is the restart boundary of a
        // supervision loop. A catch with no restart/backoff/escalation
        // token nearby swallows the panic and leaves a silently dead
        // unit — the exact failure the supervisor was built to retire.
        if !mask[idx]
            && path.starts_with("crates/serve/")
            && path.contains("/src/")
            && line.contains("catch_unwind")
            && !has_supervision_guard(&raw, idx)
        {
            push(
                "SL111",
                "error",
                idx,
                "catch_unwind in the serving layer without a supervision token: \
                 route the recovery through the supervise loop (restart, backoff, \
                 escalate) or say which discipline applies within the 3 preceding \
                 lines"
                    .to_owned(),
                &mut out,
            );
        }
        // SL112 keeps the InsufficientData contract honest: an underfed
        // estimator window means "no verdict yet", never "zero
        // entropy". A serving-layer consumer of the entropy estimate
        // that does not acknowledge the typed case nearby is one
        // refactor away from demoting every freshly started or
        // re-locked source for its empty window.
        if !mask[idx] && path.starts_with("crates/serve/") && path.contains("/src/") {
            for pattern in ENTROPY_ESTIMATE_CALLS {
                if line.contains(pattern) && !has_insufficient_data_note(&raw, idx) {
                    push(
                        "SL112",
                        "error",
                        idx,
                        format!(
                            "entropy-estimate call `{pattern}` in the serving layer \
                             without an InsufficientData note: say how the underfed \
                             window (\"no verdict yet\", never zero entropy) is \
                             handled within the 3 preceding lines"
                        ),
                        &mut out,
                    );
                    break;
                }
            }
        }
    }
    // Semantic findings (provenance-aware SL107 plus SL2xx) and
    // intra-file lock-order conflicts go through the same
    // inline-directive and allowlist filters as the text rules.
    let keep = |d: &SourceDiagnostic| {
        !inline_allowed(&raw, d.line.saturating_sub(1), d.code) && !allowlist.allows(path, d.code)
    };
    for d in sem.diagnostics {
        if keep(&d) {
            out.push(d);
        }
    }
    for (d, _) in lock_conflicts(&sem.lock_pairs) {
        if keep(&d) {
            out.push(d);
        }
    }
    out.sort_by(|a, b| (a.line, a.code).cmp(&(b.line, b.code)));
    (out, sem.lock_pairs)
}

/// Checks the per-crate `unsafe` gate (SL106): a crate with no unsafe
/// anywhere must say so in its root with `#![forbid(unsafe_code)]` (or
/// `deny`), so a future unsafe block cannot slip in unreviewed.
#[must_use]
pub fn check_crate_gate(
    root_path: &str,
    root_source: &str,
    crate_has_unsafe: bool,
    allowlist: &Allowlist,
) -> Option<SourceDiagnostic> {
    if crate_has_unsafe || allowlist.allows(root_path, "SL106") {
        return None;
    }
    let gated = strip_source(root_source).iter().any(|l| {
        l.contains("#![forbid(unsafe_code)]") || l.contains("#![deny(unsafe_code)]")
    });
    if gated {
        return None;
    }
    Some(SourceDiagnostic {
        code: "SL106",
        severity: "warning",
        path: root_path.to_owned(),
        line: 1,
        message: "crate has no unsafe code but its root lacks \
                  #![forbid(unsafe_code)]"
            .to_owned(),
    })
}

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_label(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn crate_dirs(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut dirs = Vec::new();
    for group in ["crates", "vendor"] {
        let base = root.join(group);
        if !base.is_dir() {
            continue;
        }
        let mut entries: Vec<PathBuf> = fs::read_dir(&base)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        entries.sort();
        dirs.extend(entries);
    }
    Ok(dirs)
}

/// Scans the whole workspace at `root`: determinism rules over the
/// [`DETERMINISTIC_CRATES`] `src/` trees, the `unsafe` audit over every
/// crate (including vendored stubs, the root meta-crate, examples and
/// integration tests), and the per-crate gate check.
///
/// # Errors
///
/// Propagates filesystem errors (unreadable directories or files).
pub fn scan_workspace(root: &Path, allowlist: &Allowlist) -> io::Result<ScanReport> {
    // simlint itself is not a deterministic crate: wall-clock timing
    // here feeds the report's `scan_ms`, nothing else.
    let started = std::time::Instant::now();
    let mut report = ScanReport::default();
    let mut lock_pairs: Vec<LockPair> = Vec::new();
    let mut scan_tree = |dir: &Path,
                             deterministic: bool,
                             report: &mut ScanReport|
     -> io::Result<bool> {
        let mut files = Vec::new();
        rs_files(dir, &mut files)?;
        let mut saw_unsafe = false;
        for file in files {
            let source = fs::read_to_string(&file)?;
            let label = rel_label(root, &file);
            report.files_scanned += 1;
            saw_unsafe |= strip_source(&source)
                .iter()
                .any(|l| has_token(l, "unsafe"));
            let (diags, pairs) = scan_source_ext(&label, &source, deterministic, allowlist);
            report.diagnostics.extend(diags);
            lock_pairs.extend(pairs);
        }
        Ok(saw_unsafe)
    };

    for crate_dir in crate_dirs(root)? {
        let rel = rel_label(root, &crate_dir);
        let deterministic = DETERMINISTIC_CRATES.contains(&rel.as_str());
        let mut crate_has_unsafe = false;
        for sub in ["src", "benches", "tests", "examples"] {
            // Determinism rules cover only `src/`; a crate's benches
            // and integration tests may use wall clocks freely.
            let det = deterministic && sub == "src";
            crate_has_unsafe |= scan_tree(&crate_dir.join(sub), det, &mut report)?;
        }
        for root_name in ["src/lib.rs", "src/main.rs"] {
            let root_file = crate_dir.join(root_name);
            if root_file.is_file() {
                let source = fs::read_to_string(&root_file)?;
                report.diagnostics.extend(check_crate_gate(
                    &rel_label(root, &root_file),
                    &source,
                    crate_has_unsafe,
                    allowlist,
                ));
                break;
            }
        }
    }
    // The root meta-crate, workspace examples and integration tests.
    let mut meta_has_unsafe = false;
    for sub in ["src", "examples", "tests"] {
        meta_has_unsafe |= scan_tree(&root.join(sub), false, &mut report)?;
    }
    let meta_root = root.join("src/lib.rs");
    if meta_root.is_file() {
        let source = fs::read_to_string(&meta_root)?;
        report.diagnostics.extend(check_crate_gate(
            "src/lib.rs",
            &source,
            meta_has_unsafe,
            allowlist,
        ));
    }
    // Cross-file SL201: merge every serve-layer acquisition pair and
    // look for order conflicts spanning files. Conflicts already
    // reported per-file (both orders in one file) are skipped by key.
    let mut intra_keys: BTreeSet<(String, String)> = BTreeSet::new();
    let mut by_path: BTreeMap<&str, Vec<LockPair>> = BTreeMap::new();
    for p in &lock_pairs {
        by_path.entry(p.path.as_str()).or_default().push(p.clone());
    }
    for pairs in by_path.values() {
        intra_keys.extend(lock_conflicts(pairs).into_iter().map(|(_, k)| k));
    }
    for (d, key) in lock_conflicts(&lock_pairs) {
        if !intra_keys.contains(&key) && !allowlist.allows(&d.path, d.code) {
            report.diagnostics.push(d);
        }
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.code).cmp(&(&b.path, b.line, b.code)));
    report.scan_ms = started.elapsed().as_millis();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_det(source: &str) -> Vec<SourceDiagnostic> {
        scan_source("crates/sim/src/x.rs", source, true, &Allowlist::empty())
    }

    #[test]
    fn hash_containers_fire_sl101() {
        let diags = scan_det("use std::collections::HashMap;\nlet m = HashMap::new();\n");
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.code == "SL101"));
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn wall_clock_fires_sl102() {
        let diags = scan_det("let t = Instant::now();\nlet s = SystemTime::now();\n");
        assert_eq!(diags.iter().filter(|d| d.code == "SL102").count(), 2);
    }

    #[test]
    fn ambient_rng_fires_sl103() {
        let diags = scan_det("let mut rng = thread_rng();\nlet x: u8 = rand::random();\n");
        assert_eq!(diags.iter().filter(|d| d.code == "SL103").count(), 2);
    }

    #[test]
    fn unordered_reduction_fires_sl104() {
        let diags = scan_det("let s: f64 = map.values().sum::<f64>();\n");
        assert_eq!(diags.iter().filter(|d| d.code == "SL104").count(), 1);
        // Ordered reductions are fine.
        assert!(scan_det("let s: f64 = vec.iter().sum::<f64>();\n").is_empty());
    }

    #[test]
    fn unsafe_without_safety_fires_sl105_everywhere() {
        let source = "fn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        let det = scan_source("crates/sim/src/x.rs", source, true, &Allowlist::empty());
        let non_det = scan_source("crates/bench/src/x.rs", source, false, &Allowlist::empty());
        assert_eq!(det.iter().filter(|d| d.code == "SL105").count(), 1);
        assert_eq!(non_det.iter().filter(|d| d.code == "SL105").count(), 1);
    }

    #[test]
    fn join_unwrap_fires_sl107() {
        let diags = scan_det("let stats = handle.join().unwrap();\n");
        assert_eq!(diags.iter().filter(|d| d.code == "SL107").count(), 1);
        let diags = scan_det("let stats = handle.join().expect(\"worker died\");\n");
        assert_eq!(diags.iter().filter(|d| d.code == "SL107").count(), 1);
        // SL107 is not a determinism rule: it fires in any crate's src/.
        let bench = scan_source(
            "crates/bench/src/x.rs",
            "handle.join().unwrap();\n",
            false,
            &Allowlist::empty(),
        );
        assert_eq!(bench.iter().filter(|d| d.code == "SL107").count(), 1);
    }

    #[test]
    fn path_join_and_tests_are_exempt_from_sl107() {
        // `Path::join` takes an argument — never matches the empty-paren
        // `JoinHandle::join` signature.
        assert!(scan_det("let p = root.join(\"src\").join(\"lib.rs\");\n").is_empty());
        assert!(scan_det("let s = parts.join(\", \"); s.parse().unwrap();\n").is_empty());
        // Integration tests and benches live outside src/.
        let outside = scan_source(
            "crates/sim/tests/determinism.rs",
            "handle.join().unwrap();\n",
            false,
            &Allowlist::empty(),
        );
        assert!(outside.is_empty());
        // #[cfg(test)] regions inside src/ may unwrap joins freely.
        let in_test_mod = concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t() { handle.join().unwrap(); }\n",
            "}\n",
        );
        assert!(scan_det(in_test_mod).is_empty());
        // Vetted propagation sites carry the inline directive.
        let allowed = "handle.join().unwrap() // simlint: allow(SL107) re-panics above\n";
        assert!(scan_det(allowed).is_empty());
    }

    #[test]
    fn unguarded_blocking_reads_fire_sl108_only_in_the_serving_layer() {
        let scan_serve = |source: &str| {
            scan_source("crates/serve/src/x.rs", source, false, &Allowlist::empty())
        };
        for bad in [
            "let msg = rx.recv().map_err(drop);\n",
            "let (stream, _) = listener.accept()?;\n",
            "stream.read_exact(&mut buf)?;\n",
            "let frame = wire::read_frame(&mut stream)?;\n",
        ] {
            let diags = scan_serve(bad);
            assert_eq!(
                diags.iter().filter(|d| d.code == "SL108").count(),
                1,
                "{bad:?} must fire SL108, got {diags:?}"
            );
        }
        // A guard on the line or within the 3 preceding lines excuses
        // the read; comments count.
        for good in [
            "let msg = rx.recv_timeout(TICK);\n",
            "listener.set_nonblocking(true)?;\nlet (stream, _) = listener.accept()?;\n",
            "// Bounded by the caller-armed read timeout.\nstream.read_exact(&mut buf)?;\n",
            "if shutdown.load(Ordering::Relaxed) { return; }\nlet m = rx.recv().ok();\n",
        ] {
            assert!(scan_serve(good).is_empty(), "{good:?} fired: {:?}", scan_serve(good));
        }
        // The rule is scoped: other crates and serve's own tests are
        // free to block.
        let elsewhere = scan_source(
            "crates/core/src/x.rs",
            "let msg = rx.recv().unwrap_or(0);\n",
            false,
            &Allowlist::empty(),
        );
        assert!(elsewhere.iter().all(|d| d.code != "SL108"));
        let in_tests = scan_source(
            "crates/serve/tests/x.rs",
            "let msg = rx.recv().unwrap_or(0);\n",
            false,
            &Allowlist::empty(),
        );
        assert!(in_tests.iter().all(|d| d.code != "SL108"));
        let in_test_mod = scan_serve(concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t(rx: Rx) { let _ = rx.recv(); }\n",
            "}\n",
        ));
        assert!(in_test_mod.is_empty(), "{in_test_mod:?}");
    }

    #[test]
    fn ring_stream_bypass_fires_sl109_in_the_selector_scoped_crates() {
        let bad = "let s = RingStream::build(&config, &board, seed, None)?;\n";
        for scoped in ["crates/serve/src/source.rs", "crates/core/src/pool.rs"] {
            let diags = scan_source(scoped, bad, false, &Allowlist::empty());
            assert_eq!(
                diags.iter().filter(|d| d.code == "SL109").count(),
                1,
                "{scoped} must fire SL109, got {diags:?}"
            );
        }
        // The rings crate owns the selector and the stream; it may
        // construct freely, as may tests anywhere.
        for exempt in [
            "crates/rings/src/surrogate.rs",
            "crates/serve/tests/pool.rs",
            "crates/core/benches/x.rs",
        ] {
            let diags = scan_source(exempt, bad, false, &Allowlist::empty());
            assert!(diags.iter().all(|d| d.code != "SL109"), "{exempt}: {diags:?}");
        }
        let in_test_mod = scan_source(
            "crates/serve/src/source.rs",
            concat!(
                "#[cfg(test)]\n",
                "mod tests {\n",
                "    fn t() { let _ = RingStream::build(&c, &b, 1, None); }\n",
                "}\n",
            ),
            false,
            &Allowlist::empty(),
        );
        assert!(in_test_mod.is_empty(), "{in_test_mod:?}");
        // Going through the selector is exactly what the rule wants.
        let good = "let s = EntropySource::build(&config, &board, seed, None, backend)?;\n";
        assert!(scan_source("crates/serve/src/source.rs", good, false, &Allowlist::empty())
            .is_empty());
    }

    #[test]
    fn thread_spawn_fires_sl110_in_the_serving_layer() {
        let scan_serve = |src: &str| {
            scan_source("crates/serve/src/server.rs", src, false, &Allowlist::empty())
                .into_iter()
                .filter(|d| d.code == "SL110")
                .collect::<Vec<_>>()
        };
        // The per-connection pattern, both spellings.
        for bad in [
            "std::thread::spawn(move || handle(stream));\n",
            "let h = thread::Builder::new()\n    .spawn(move || handle(stream));\n",
        ] {
            assert_eq!(scan_serve(bad).len(), 1, "{bad:?} must fire once");
        }
        // A lifecycle token on the line or within the 3 preceding raw
        // lines excuses the spawn; thread names and comments count,
        // case-insensitively.
        for good in [
            "let h = thread::Builder::new()\n    .name(\"strent-serve-event-loop\".to_owned())\n    .spawn(run)?;\n",
            "let h = thread::Builder::new()\n    .name(format!(\"strent-serve-worker-{w}\"))\n    .spawn(work)?;\n",
            "// Startup spawn: one scheduler thread per service.\nlet h = thread::spawn(run);\n",
            "let name = format!(\"strent-serve-shard-{k}\");\nlet h = builder.spawn(run)?;\n",
        ] {
            assert!(scan_serve(good).is_empty(), "{good:?} fired: {:?}", scan_serve(good));
        }
        // The rule is scoped: other crates and serve's own tests may
        // spawn freely (the load harness and drills need threads).
        let elsewhere = scan_source(
            "crates/bench/src/bin/serve_load.rs",
            "std::thread::spawn(move || handle(stream));\n",
            false,
            &Allowlist::empty(),
        );
        assert!(elsewhere.iter().all(|d| d.code != "SL110"));
        let in_tests = scan_source(
            "crates/serve/tests/sharding.rs",
            "std::thread::spawn(move || handle(stream));\n",
            false,
            &Allowlist::empty(),
        );
        assert!(in_tests.iter().all(|d| d.code != "SL110"));
        let in_test_mod = scan_serve(concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t() { std::thread::spawn(|| ()); }\n",
            "}\n",
        ));
        assert!(in_test_mod.is_empty(), "{in_test_mod:?}");
    }

    #[test]
    fn naked_catch_unwind_fires_sl111_in_the_serving_layer() {
        let scan_serve = |src: &str| {
            scan_source(
                "crates/serve/src/supervisor.rs",
                src,
                false,
                &Allowlist::empty(),
            )
            .into_iter()
            .filter(|d| d.code == "SL111")
            .collect::<Vec<_>>()
        };
        // The naked catch: the panic is swallowed with no discipline.
        for bad in [
            "let r = std::panic::catch_unwind(body);\n",
            "let r = catch_unwind(AssertUnwindSafe(|| job.run()));\n",
        ] {
            assert_eq!(scan_serve(bad).len(), 1, "{bad:?} must fire once");
        }
        // A supervision token on the line or within the 3 preceding
        // raw lines excuses the catch; comments count, ignoring case.
        for good in [
            "// The restart-with-backoff supervision boundary.\nlet r = catch_unwind(AssertUnwindSafe(&mut body));\n",
            "let restarts = policy.max_restarts;\nlet r = std::panic::catch_unwind(body);\n",
            "// Escalate after the window fills.\nlet r = catch_unwind(run);\n",
        ] {
            assert!(
                scan_serve(good).is_empty(),
                "{good:?} fired: {:?}",
                scan_serve(good)
            );
        }
        // Scoped to serve src: other crates and serve's tests are free.
        let elsewhere = scan_source(
            "crates/bench/src/bin/serve_chaos.rs",
            "let r = std::panic::catch_unwind(body);\n",
            false,
            &Allowlist::empty(),
        );
        assert!(elsewhere.iter().all(|d| d.code != "SL111"));
        let in_tests = scan_source(
            "crates/serve/tests/hardening.rs",
            "let r = std::panic::catch_unwind(body);\n",
            false,
            &Allowlist::empty(),
        );
        assert!(in_tests.iter().all(|d| d.code != "SL111"));
        let in_test_mod = scan_serve(concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t() { let _ = std::panic::catch_unwind(|| ()); }\n",
            "}\n",
        ));
        assert!(in_test_mod.is_empty(), "{in_test_mod:?}");
    }

    #[test]
    fn unacknowledged_entropy_estimate_fires_sl112_in_the_serving_layer() {
        let scan_serve = |src: &str| {
            scan_source("crates/serve/src/pool.rs", src, false, &Allowlist::empty())
                .into_iter()
                .filter(|d| d.code == "SL112")
                .collect::<Vec<_>>()
        };
        // Consuming the estimate with no word on the underfed case.
        for bad in [
            "let h = slot.estimator.entropy_rate();\n",
            "let h = markov_min_entropy(&bits, 2).unwrap();\n",
        ] {
            assert_eq!(scan_serve(bad).len(), 1, "{bad:?} must fire once");
        }
        // An InsufficientData note on the line or within the 3
        // preceding raw lines excuses the call; comments count.
        for good in [
            "// InsufficientData maps to None: no verdict yet.\nlet h = slot.estimator.entropy_rate();\n",
            "// The typed InsufficientData case is \"no verdict yet\",\n// never zero entropy.\nlet h = markov_min_entropy(&bits, 2)?;\n",
        ] {
            assert!(
                scan_serve(good).is_empty(),
                "{good:?} fired: {:?}",
                scan_serve(good)
            );
        }
        // Scoped to serve src: other crates and serve's tests are free.
        let elsewhere = scan_source(
            "crates/core/src/experiments/ext_entropy.rs",
            "let h = markov_min_entropy(&bits, 2)?;\n",
            false,
            &Allowlist::empty(),
        );
        assert!(elsewhere.iter().all(|d| d.code != "SL112"));
        let in_tests = scan_source(
            "crates/serve/tests/sharding.rs",
            "let h = est.entropy_rate();\n",
            false,
            &Allowlist::empty(),
        );
        assert!(in_tests.iter().all(|d| d.code != "SL112"));
        let in_test_mod = scan_serve(concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t() { let _ = est.entropy_rate(); }\n",
            "}\n",
        ));
        assert!(in_test_mod.is_empty(), "{in_test_mod:?}");
    }

    #[test]
    fn safety_comment_satisfies_the_unsafe_audit() {
        let source = "// SAFETY: index bounds checked above.\nfn f() { unsafe { x() } }\n";
        assert!(scan_det(source).is_empty());
    }

    #[test]
    fn unsafe_code_attribute_is_not_an_unsafe_token() {
        assert!(scan_det("#![forbid(unsafe_code)]\n").is_empty());
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let source = concat!(
            "// a HashMap in a comment\n",
            "/* Instant::now() in a block comment */\n",
            "let s = \"HashSet and thread_rng\";\n",
            "let r = r#\"SystemTime\"#;\n",
            "let c = '\\u{41}';\n",
        );
        assert!(scan_det(source).is_empty(), "{:?}", scan_det(source));
    }

    #[test]
    fn cfg_test_regions_are_exempt_from_determinism_rules() {
        let source = concat!(
            "fn prod() {}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    use std::collections::HashSet;\n",
            "    fn t() { let _ = std::time::Instant::now(); }\n",
            "}\n",
        );
        assert!(scan_det(source).is_empty(), "{:?}", scan_det(source));
        // ...but code after the region is scanned again.
        let trailing = format!("{source}fn later() {{ let m = HashMap::new(); }}\n");
        let diags = scan_det(&trailing);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "SL101");
        assert_eq!(diags[0].line, 7);
    }

    #[test]
    fn braces_in_format_strings_do_not_break_region_tracking() {
        let source = concat!(
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t() { let s = format!(\"{i}\"); }\n",
            "}\n",
            "fn prod() { let m = HashMap::new(); }\n",
        );
        let diags = scan_det(source);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 5);
    }

    #[test]
    fn inline_allow_directive_excuses_a_site() {
        let same = "let t = Instant::now(); // simlint: allow(SL102)\n";
        assert!(scan_det(same).is_empty());
        let preceding =
            "// simlint: allow(SL102) wall-clock stats only\nlet t = Instant::now();\n";
        assert!(scan_det(preceding).is_empty());
        // The directive is code-specific.
        let wrong = "let t = Instant::now(); // simlint: allow(SL101)\n";
        assert_eq!(scan_det(wrong).len(), 1);
    }

    #[test]
    fn allowlist_excuses_by_path_suffix_and_code() {
        let allow = Allowlist::parse(
            "# vetted sites\ncrates/sim/src/x.rs SL102 wall-clock stats only\n",
        )
        .expect("parses");
        let diags = scan_source(
            "crates/sim/src/x.rs",
            "let t = Instant::now();\n",
            true,
            &allow,
        );
        assert!(diags.is_empty());
        let other = scan_source(
            "crates/sim/src/y.rs",
            "let t = Instant::now();\n",
            true,
            &allow,
        );
        assert_eq!(other.len(), 1, "different file is not excused");
        assert!(Allowlist::parse("whatever NOTACODE\n").is_err());
    }

    #[test]
    fn crate_gate_check_fires_only_without_unsafe_and_without_gate() {
        let allow = Allowlist::empty();
        let missing = check_crate_gate("crates/x/src/lib.rs", "pub fn f() {}\n", false, &allow);
        assert_eq!(missing.expect("fires").code, "SL106");
        let gated = check_crate_gate(
            "crates/x/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
            false,
            &allow,
        );
        assert!(gated.is_none());
        let has_unsafe = check_crate_gate("crates/x/src/lib.rs", "pub fn f() {}\n", true, &allow);
        assert!(has_unsafe.is_none(), "crates with unsafe use SL105 instead");
    }

    #[test]
    fn json_shape_is_stable() {
        let report = ScanReport {
            files_scanned: 3,
            scan_ms: 12,
            suppressed: 2,
            diagnostics: vec![SourceDiagnostic {
                code: "SL101",
                severity: "error",
                path: "crates/sim/src/x.rs".into(),
                line: 7,
                message: "a \"quoted\" message".into(),
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"version\": 2"));
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\"scan_ms\": 12"));
        assert!(json.contains("\"suppressed\": 2"));
        assert!(json.contains("\"SL101\": 1"));
        assert!(json.contains("\"SL205\": 0"), "every registry code is counted");
        assert!(json.contains("\\\"quoted\\\""));
        let empty = ScanReport::default().to_json();
        assert!(empty.contains("\"diagnostics\": []"));
    }

    #[test]
    fn catalog_lists_every_rule() {
        let catalog = catalog_json();
        for r in &RULES {
            assert!(catalog.contains(&format!("\"code\": \"{}\"", r.code)), "{}", r.code);
        }
        assert_eq!(rule("SL201").expect("registered").scope, "serve-src");
        assert!(rule("SL999").is_none());
    }

    #[test]
    fn fixtures_fire_every_source_code() {
        // Registry-driven: every rule must carry a fixture that fires
        // it, so a new code cannot land without self-test coverage.
        let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        for r in &RULES {
            let source = fs::read_to_string(fixtures.join(r.fixture)).expect(r.fixture);
            if r.code == "SL106" {
                let diag = check_crate_gate(
                    "fixtures/missing_gate/src/lib.rs",
                    &source,
                    false,
                    &Allowlist::empty(),
                );
                assert_eq!(diag.expect("fires").code, "SL106");
                continue;
            }
            let label = format!("crates/{}/src/{}", r.fixture_crate, r.fixture);
            let diags = scan_source(&label, &source, true, &Allowlist::empty());
            assert!(
                diags.iter().any(|d| d.code == r.code),
                "{} must fire {}, got {diags:?}",
                r.fixture,
                r.code
            );
        }
        // The clean fixtures exercise every escape hatch and stay
        // quiet — clean.rs under the deterministic rules, clean_sl2xx.rs
        // under the serve-layer semantic rules.
        for (file, label) in [
            ("clean.rs", "crates/sim/src/clean.rs"),
            ("clean_sl2xx.rs", "crates/serve/src/clean_sl2xx.rs"),
        ] {
            let clean = fs::read_to_string(fixtures.join(file)).expect(file);
            let diags = scan_source(label, &clean, true, &Allowlist::empty());
            assert!(diags.is_empty(), "{file} fired: {diags:?}");
        }
    }

    #[test]
    fn workspace_is_clean_under_the_checked_in_allowlist_and_baseline() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let allowlist =
            Allowlist::load(&root.join("scripts/simlint.allow")).expect("allowlist loads");
        let baseline =
            Baseline::load(&root.join("scripts/simlint.baseline")).expect("baseline loads");
        let mut report = scan_workspace(root, &allowlist).expect("scan succeeds");
        let outcome = baseline.apply(&mut report);
        report.suppressed = outcome.suppressed;
        assert!(report.files_scanned > 40, "only {} files", report.files_scanned);
        assert!(
            outcome.stale.is_empty(),
            "stale baseline entries (fixed sites — delete them): {:?}",
            outcome.stale
        );
        assert!(
            report.is_clean(),
            "workspace has simlint findings beyond the baseline:\n{}",
            report
                .diagnostics
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
