//! Per-function symbol tables: `let` bindings with receiver provenance.
//!
//! Provenance answers the question the text rules cannot: *what kind
//! of value does this name hold*? `handle.join()` on a `JoinHandle`
//! is thread lifecycle; `path.join("x")` on a `Path` is string
//! concatenation; `guard` from `q.lock()` is a live mutex guard. The
//! classifier is deliberately shallow — it looks at the defining
//! expression (and parameter types), not at arbitrary dataflow — but
//! that is enough to separate the SL107/SL201–SL205 cases that the
//! 3-line-window heuristics conflated.

use crate::lexer::{match_delim, Tok, TokKind};
use crate::tree::{FileTree, FnItem};
use std::collections::BTreeSet;

/// What a binding provably holds, as far as the classifier can tell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Prov {
    /// A `std::thread::JoinHandle` (from `thread::spawn`/`.spawn(`).
    JoinHandle,
    /// The `Result` of calling `.join()` on a [`Prov::JoinHandle`].
    JoinResult,
    /// A `Path`/`PathBuf` (so `.join(` is path concatenation).
    PathLike,
    /// A mutex guard; the string names the locked receiver (or
    /// `fn:<name>` for a local guard-returning helper).
    LockGuard(String),
    /// A channel sender; `bounded` is true for `sync_channel`.
    Sender {
        /// Whether the channel has a bounded depth.
        bounded: bool,
    },
    /// A channel receiver; `bounded` mirrors the sender side.
    Receiver {
        /// Whether the channel has a bounded depth.
        bounded: bool,
    },
    /// A value derived from an explicit seed or an `RngTree` stream —
    /// deterministic by construction.
    Seeded,
    /// Anything the classifier cannot pin down.
    Other,
}

/// One `let` binding (or parameter) in a function body.
#[derive(Debug)]
pub struct Binding {
    /// The bound name.
    pub name: String,
    /// Token index where the name is introduced.
    pub def: usize,
    /// Token index one past the defining statement (provenance applies
    /// only to uses after this point).
    pub stmt_end: usize,
    /// What the binding holds.
    pub prov: Prov,
}

/// The symbol table for one function.
#[derive(Debug)]
pub struct Symbols {
    /// All bindings, in definition order.
    pub bindings: Vec<Binding>,
}

impl Symbols {
    /// Builds the table for `f`, walking parameters then every `let`
    /// statement in the body. `guard_fns` names local functions that
    /// return `MutexGuard`s (calls to them produce [`Prov::LockGuard`]).
    #[must_use]
    pub fn build(tree: &FileTree, f: &FnItem, guard_fns: &BTreeSet<String>) -> Symbols {
        let mut bindings = Vec::new();
        for (name, ty) in &f.params {
            let prov = classify_param(name, ty);
            if prov != Prov::Other {
                bindings.push(Binding {
                    name: name.clone(),
                    def: f.start,
                    stmt_end: f.start,
                    prov,
                });
            }
        }
        let Some(body) = f.body else {
            return Symbols { bindings };
        };
        let toks = &tree.toks;
        let (open, close) = (tree.blocks[body].open, tree.blocks[body].close);
        let mut i = open + 1;
        while i < close.min(toks.len()) {
            if toks[i].is_ident("let") {
                i = scan_let(toks, i, close, guard_fns, &mut bindings);
            } else {
                i += 1;
            }
        }
        Symbols { bindings }
    }

    /// The provenance of `name` at token `at` (its latest definition
    /// whose statement completed before `at`).
    #[must_use]
    pub fn prov_at(&self, name: &str, at: usize) -> Option<&Prov> {
        self.bindings
            .iter()
            .rev()
            .find(|b| b.name == name && b.stmt_end <= at)
            .map(|b| &b.prov)
    }
}

fn classify_param(name: &str, ty: &[String]) -> Prov {
    if ty.iter().any(|t| t == "JoinHandle") {
        Prov::JoinHandle
    } else if ty.iter().any(|t| t == "Path" || t == "PathBuf") {
        Prov::PathLike
    } else if ty.iter().any(|t| t == "MutexGuard") {
        Prov::LockGuard(format!("param:{name}"))
    } else if ty.iter().any(|t| t == "Receiver") {
        Prov::Receiver { bounded: true } // depth decided at the creation site
    } else if ty.iter().any(|t| t == "Sender" || t == "SyncSender") {
        Prov::Sender { bounded: true }
    } else if name.contains("seed") || ty.iter().any(|t| t == "RngTree") {
        Prov::Seeded
    } else {
        Prov::Other
    }
}

/// Scans one `let` statement starting at the `let` token; pushes any
/// classified bindings and returns the index just past the statement's
/// terminator.
fn scan_let(
    toks: &[Tok],
    let_idx: usize,
    limit: usize,
    guard_fns: &BTreeSet<String>,
    bindings: &mut Vec<Binding>,
) -> usize {
    // --- pattern: `x`, `mut x`, `(a, b)`, `Some(x)`, `_` ---
    let mut names: Vec<(String, usize)> = Vec::new();
    let mut tuple = false;
    let mut i = let_idx + 1;
    while i < limit {
        let t = &toks[i];
        if t.is_punct("=") || t.is_punct(";") || t.is_punct(":") && !tuple {
            break;
        }
        if t.is_punct("(") {
            tuple = names.is_empty();
            // `Some(x)` / `Ok(x)`: the preceding ident was a variant,
            // not a binding — drop it.
            if !tuple && names.len() == 1 {
                names.clear();
                tuple = true;
            }
        } else if t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref" {
            names.push((t.text.clone(), i));
        } else if t.is_punct("_") {
            names.push(("_".to_owned(), i));
        }
        i += 1;
    }
    // Skip a type annotation if we stopped at `:`.
    while i < limit && !toks[i].is_punct("=") && !toks[i].is_punct(";") {
        if toks[i].is_punct("(") || toks[i].is_punct("[") {
            i = match_delim(toks, i);
        }
        i += 1;
    }
    if i >= limit || toks[i].is_punct(";") {
        return i + 1; // `let x;` — uninitialised, nothing to classify
    }
    let expr_start = i + 1;
    // --- expression: up to the terminating `;` at depth 0 (or a
    // trailing block for `let x = if ... {}`, which we treat as the
    // statement end too). ---
    let mut depth = 0i64;
    let mut j = expr_start;
    while j < limit {
        let t = &toks[j];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
            if depth < 0 {
                break;
            }
        } else if t.is_punct(";") && depth == 0 {
            break;
        }
        j += 1;
    }
    let expr = &toks[expr_start..j.min(toks.len())];
    let prov = classify_expr(expr, guard_fns, bindings, expr_start);
    let stmt_end = j + 1;
    match (&prov, tuple, names.len()) {
        // A channel constructor with a tuple pattern binds the sender
        // and receiver separately.
        (Prov::Sender { bounded }, true, 2) => {
            let b = *bounded;
            bindings.push(Binding {
                name: names[0].0.clone(),
                def: names[0].1,
                stmt_end,
                prov: Prov::Sender { bounded: b },
            });
            bindings.push(Binding {
                name: names[1].0.clone(),
                def: names[1].1,
                stmt_end,
                prov: Prov::Receiver { bounded: b },
            });
        }
        (p, _, _) if *p != Prov::Other => {
            if let Some((name, def)) = names.first() {
                bindings.push(Binding {
                    name: name.clone(),
                    def: *def,
                    stmt_end,
                    prov: prov.clone(),
                });
            }
        }
        _ => {}
    }
    stmt_end
}

/// Classifies a defining expression. Priority order matters: a channel
/// constructor beats the generic heuristics, `.lock(` beats `.join(`.
fn classify_expr(
    expr: &[Tok],
    guard_fns: &BTreeSet<String>,
    prior: &[Binding],
    expr_start: usize,
) -> Prov {
    // Channel constructors: `channel()`, `sync_channel(n)`, with
    // optional path prefix and turbofish.
    for (k, t) in expr.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "channel" && t.text != "sync_channel" {
            continue;
        }
        let mut n = k + 1;
        if expr.get(n).is_some_and(|t| t.is_punct("::")) {
            // turbofish `::<T>` — skip to the matching `>`
            n += 1;
            let mut angle = 0i64;
            while n < expr.len() {
                if expr[n].is_punct("<") {
                    angle += 1;
                } else if expr[n].is_punct(">") {
                    angle -= 1;
                    if angle == 0 {
                        n += 1;
                        break;
                    }
                }
                n += 1;
            }
        }
        if expr.get(n).is_some_and(|t| t.is_punct("(")) {
            return Prov::Sender {
                bounded: t.text == "sync_channel",
            };
        }
    }
    // Lock acquisition: `<recv>.lock(`.
    for (k, t) in expr.iter().enumerate() {
        if t.is_ident("lock")
            && k > 0
            && expr[k - 1].is_punct(".")
            && expr.get(k + 1).is_some_and(|t| t.is_punct("("))
        {
            return Prov::LockGuard(normalize_receiver(&expr[..k - 1]));
        }
    }
    // A call to a local guard-returning helper: `self.own_queue()`.
    for (k, t) in expr.iter().enumerate() {
        if t.kind == TokKind::Ident
            && guard_fns.contains(&t.text)
            && expr.get(k + 1).is_some_and(|t| t.is_punct("("))
        {
            return Prov::LockGuard(format!("fn:{}", t.text));
        }
    }
    // `.join()` on a known JoinHandle → the Result of joining.
    for (k, t) in expr.iter().enumerate() {
        if t.is_ident("join") && k > 1 && expr[k - 1].is_punct(".") {
            if let Some(recv) = expr[..k - 1].last().filter(|t| t.kind == TokKind::Ident) {
                let recv_prov = prior
                    .iter()
                    .rev()
                    .find(|b| b.name == recv.text && b.stmt_end <= expr_start)
                    .map(|b| &b.prov);
                if recv_prov == Some(&Prov::JoinHandle) {
                    return Prov::JoinResult;
                }
            }
        }
    }
    // Spawns produce JoinHandles.
    for (k, t) in expr.iter().enumerate() {
        if t.is_ident("spawn")
            && expr.get(k + 1).is_some_and(|t| t.is_punct("("))
            && k > 0
            && (expr[k - 1].is_punct("::") || expr[k - 1].is_punct("."))
        {
            return Prov::JoinHandle;
        }
    }
    // Path constructors and conversions.
    let path_ctor = expr.windows(3).any(|w| {
        w[0].kind == TokKind::Ident
            && (w[0].text == "Path" && w[2].is_ident("new")
                || w[0].text == "PathBuf" && w[2].is_ident("from"))
            && w[1].is_punct("::")
    });
    if path_ctor
        || expr
            .iter()
            .any(|t| t.is_ident("as_path") || t.is_ident("to_path_buf") || t.is_ident("temp_dir"))
    {
        return Prov::PathLike;
    }
    // Seed plumbing: any ident mentioning "seed", an RngTree stream, or
    // a value derived from an already-seeded binding.
    for t in expr {
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text.to_lowercase().contains("seed")
            || t.text == "RngTree"
            || t.text == "stream"
            || t.text == "fork"
            || t.text == "subtree"
        {
            return Prov::Seeded;
        }
        if prior
            .iter()
            .any(|b| b.name == t.text && b.prov == Prov::Seeded)
        {
            return Prov::Seeded;
        }
    }
    Prov::Other
}

/// Canonical name for a lock receiver: identifier path with `self.`
/// stripped and index expressions collapsed (`shards[i]` and
/// `shards[j]` are the *same* lock set for ordering purposes).
#[must_use]
pub fn normalize_receiver(toks: &[Tok]) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut depth = 0i64;
    for t in toks.iter().rev() {
        if t.is_punct("]") {
            if depth == 0 {
                parts.push("[_]".to_owned());
            }
            depth += 1;
            continue;
        }
        if t.is_punct("[") {
            depth -= 1;
            continue;
        }
        if depth > 0 {
            continue;
        }
        if t.kind == TokKind::Ident || t.is_punct(".") || t.is_punct("::") {
            parts.push(t.text.clone());
        } else {
            break;
        }
    }
    parts.reverse();
    let mut name = parts.concat();
    if let Some(stripped) = name.strip_prefix("self.") {
        name = stripped.to_owned();
    }
    name
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::FileTree;

    fn table(source: &str) -> (FileTree, Symbols) {
        let tree = FileTree::parse(source);
        let mut guard_fns = BTreeSet::new();
        guard_fns.insert("own_queue".to_owned());
        let syms = Symbols::build(&tree, &tree.fns[0], &guard_fns);
        (tree, syms)
    }

    fn prov_of<'s>(syms: &'s Symbols, name: &str) -> &'s Prov {
        &syms
            .bindings
            .iter()
            .rev()
            .find(|b| b.name == name)
            .expect(name)
            .prov
    }

    #[test]
    fn channel_tuples_split_sender_and_receiver() {
        let (_, syms) = table(
            "fn f() {\n    let (tx, rx) = mpsc::channel::<u8>();\n    let (btx, brx) = mpsc::sync_channel(4);\n}\n",
        );
        assert_eq!(prov_of(&syms, "tx"), &Prov::Sender { bounded: false });
        assert_eq!(prov_of(&syms, "rx"), &Prov::Receiver { bounded: false });
        assert_eq!(prov_of(&syms, "btx"), &Prov::Sender { bounded: true });
        assert_eq!(prov_of(&syms, "brx"), &Prov::Receiver { bounded: true });
    }

    #[test]
    fn locks_joins_and_paths_are_distinguished() {
        let (_, syms) = table(
            "fn f(dir: &Path) {\n    let guard = self.shards[i].queue.lock().unwrap();\n    let q = self.own_queue();\n    let h = thread::spawn(move || {});\n    let r = h.join();\n    let p = dir.join(\"x\");\n}\n",
        );
        assert_eq!(
            prov_of(&syms, "guard"),
            &Prov::LockGuard("shards[_].queue".to_owned())
        );
        assert_eq!(prov_of(&syms, "q"), &Prov::LockGuard("fn:own_queue".to_owned()));
        assert_eq!(prov_of(&syms, "h"), &Prov::JoinHandle);
        assert_eq!(prov_of(&syms, "r"), &Prov::JoinResult);
        // `dir` is a Path param, so `dir.join(..)` is path
        // concatenation: `p` must NOT classify as a JoinResult (it is
        // unclassified, hence unrecorded) — SL107 must not fire on it.
        assert_eq!(prov_of(&syms, "dir"), &Prov::PathLike);
        assert!(!syms.bindings.iter().any(|b| b.name == "p"));
    }

    #[test]
    fn seed_values_taint_forward() {
        let (_, syms) = table(
            "fn f(seed: u64) {\n    let master = seed ^ 0x9E37;\n    let rng = SimRng::seed_from_u64(master);\n}\n",
        );
        assert_eq!(prov_of(&syms, "master"), &Prov::Seeded);
        assert_eq!(prov_of(&syms, "rng"), &Prov::Seeded);
    }
}
