//! A minimal Rust lexer over comment/string-stripped source.
//!
//! The input is the output of the crate's comment/string stripper
//! (every comment and literal *content* already blanked to spaces, line
//! boundaries preserved), so the lexer never has to reason about
//! escapes: a string literal is a pair of quotes around spaces, a char
//! literal likewise, and everything else is idents, numbers and
//! punctuation. Each token carries its 1-based source line, which is
//! all the downstream tree/symbol passes need for diagnostics.

/// The coarse token classes the semantic passes distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `lock`, `HashMap`, ...).
    Ident,
    /// A numeric literal (including hex/underscore forms).
    Num,
    /// A (blanked) string literal.
    Str,
    /// A (blanked) char literal.
    Char,
    /// A lifetime (`'a`).
    Lifetime,
    /// Punctuation; multi-char operators `::`, `->`, `=>`, `..`, `&&`,
    /// `||`, `<=`, `>=`, `==`, `!=` are single tokens.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (empty for blanked `Str`/`Char` literals).
    pub text: String,
    /// 1-based source line.
    pub line: usize,
}

impl Tok {
    /// Whether this token is the identifier `word`.
    #[must_use]
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// Whether this token is the punctuation `p`.
    #[must_use]
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }
}

/// Multi-character operators lexed as one token.
const JOINED: [&str; 10] = ["::", "->", "=>", "..", "&&", "||", "<=", ">=", "==", "!="];

/// Lexes stripped source lines (see [`crate::strip_source`]) into a
/// flat token stream.
#[must_use]
pub fn lex(stripped: &[String]) -> Vec<Tok> {
    let mut toks = Vec::new();
    let mut in_str = false;
    for (idx, line) in stripped.iter().enumerate() {
        let line_no = idx + 1;
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0usize;
        if in_str {
            // Inside a multi-line string: contents are blanked, so just
            // look for the closing quote.
            while i < chars.len() && chars[i] != '"' {
                i += 1;
            }
            if i >= chars.len() {
                continue;
            }
            in_str = false;
            i += 1;
        }
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c == '"' {
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: line_no,
                });
                let mut j = i + 1;
                while j < chars.len() && chars[j] != '"' {
                    j += 1;
                }
                if j < chars.len() {
                    i = j + 1;
                } else {
                    in_str = true;
                    i = chars.len();
                }
                continue;
            }
            if c == '\'' {
                // A stripped char literal is quotes around spaces; a
                // lifetime is a quote glued to an identifier.
                let mut j = i + 1;
                while j < chars.len() && chars[j] == ' ' {
                    j += 1;
                }
                if j > i + 1 && j < chars.len() && chars[j] == '\'' {
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line: line_no,
                    });
                    i = j + 1;
                } else {
                    let mut name = String::new();
                    let mut k = i + 1;
                    while k < chars.len() && is_ident_char(chars[k]) {
                        name.push(chars[k]);
                        k += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: name,
                        line: line_no,
                    });
                    i = k;
                }
                continue;
            }
            if c.is_ascii_digit() {
                let mut text = String::new();
                let mut j = i;
                while j < chars.len() {
                    let ch = chars[j];
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        text.push(ch);
                        j += 1;
                    } else if ch == '.'
                        && !text.contains('.')
                        && chars.get(j + 1).is_some_and(char::is_ascii_digit)
                    {
                        text.push('.');
                        j += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text,
                    line: line_no,
                });
                i = j;
                continue;
            }
            if is_ident_start(c) {
                let mut text = String::new();
                let mut j = i;
                while j < chars.len() && is_ident_char(chars[j]) {
                    text.push(chars[j]);
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line: line_no,
                });
                i = j;
                continue;
            }
            // Punctuation, joining the two-char operators.
            let pair: String = chars[i..chars.len().min(i + 2)].iter().collect();
            if JOINED.contains(&pair.as_str()) {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: pair,
                    line: line_no,
                });
                i += 2;
            } else {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line: line_no,
                });
                i += 1;
            }
        }
    }
    toks
}

/// Index of the token matching `open` (one of `(`/`[`/`{`) at `at`,
/// or `toks.len()` when unbalanced.
#[must_use]
pub fn match_delim(toks: &[Tok], at: usize) -> usize {
    let (open, close) = match toks.get(at).map(|t| t.text.as_str()) {
        Some("(") => ("(", ")"),
        Some("[") => ("[", "]"),
        Some("{") => ("{", "}"),
        _ => return toks.len(),
    };
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(at) {
        if t.kind == TokKind::Punct {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
        }
    }
    toks.len()
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strip_source;

    fn lex_src(source: &str) -> Vec<Tok> {
        lex(&strip_source(source))
    }

    #[test]
    fn idents_numbers_and_joined_punct() {
        let toks = lex_src("let x = a.b_c :: <u8> (0xFF, 1_000) -> 1.5;\n");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            [
                "let", "x", "=", "a", ".", "b_c", "::", "<", "u8", ">", "(", "0xFF", ",",
                "1_000", ")", "->", "1.5", ";"
            ]
        );
    }

    #[test]
    fn strings_chars_and_lifetimes() {
        let toks = lex_src("fn f<'a>(s: &'a str) { g(\"HashMap\", 'x'); }\n");
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert!(toks.iter().any(|t| t.kind == TokKind::Str));
        assert!(toks.iter().any(|t| t.kind == TokKind::Char));
        // Blanked literal contents never leak tokens.
        assert!(!toks.iter().any(|t| t.text == "HashMap"));
    }

    #[test]
    fn multiline_strings_keep_following_lines() {
        let toks = lex_src("let s = \"first\nsecond\";\nlet t = 1;\n");
        assert!(toks.iter().any(|t| t.is_ident("t") && t.line == 3));
    }

    #[test]
    fn ranges_are_not_decimals() {
        let toks = lex_src("for i in 0..10 {}\n");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["for", "i", "in", "0", "..", "10", "{", "}"]);
    }

    #[test]
    fn delimiters_match() {
        let toks = lex_src("f(a, (b), [c{d}])\n");
        assert_eq!(match_delim(&toks, 1), toks.len() - 1);
    }
}
