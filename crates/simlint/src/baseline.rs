//! Grandfathering baseline: deny-on-*new*-findings.
//!
//! A baseline file records the vetted pre-existing findings as
//! `(path, code) -> count` with a justification, so a new rule can land
//! in deny mode without rewriting history: scans subtract the baseline
//! and fail only on findings beyond it. `--write-baseline` emits the
//! current scan in this format; stale entries (more grandfathered than
//! found) are reported so the file shrinks as sites get fixed.
//!
//! Line format, one entry per line (`#` starts a comment):
//!
//! ```text
//! <path> <code> <count> [justification...]
//! ```

use crate::{ScanReport, SourceDiagnostic};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// A parsed baseline file.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    entries: BTreeMap<(String, String), usize>,
}

/// The outcome of subtracting a baseline from a scan.
#[derive(Debug, Default)]
pub struct BaselineOutcome {
    /// Findings suppressed as grandfathered.
    pub suppressed: usize,
    /// Entries whose recorded count exceeds what the scan found —
    /// candidates for removal, as `(path, code, unused)`.
    pub stale: Vec<(String, String, usize)>,
}

impl Baseline {
    /// An empty baseline (nothing grandfathered).
    #[must_use]
    pub fn empty() -> Self {
        Baseline::default()
    }

    /// Parses the baseline format; malformed lines are rejected so a
    /// typo cannot silently grandfather nothing.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = BTreeMap::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(path), Some(code), Some(count)) =
                (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "baseline line {}: expected '<path> <code> <count> [reason]', got {raw:?}",
                    i + 1
                ));
            };
            if !code.starts_with("SL") {
                return Err(format!(
                    "baseline line {}: {code:?} is not an SLxxx code",
                    i + 1
                ));
            }
            let count: usize = count.parse().map_err(|_| {
                format!("baseline line {}: {count:?} is not a count", i + 1)
            })?;
            if count == 0 {
                return Err(format!(
                    "baseline line {}: a zero count grandfathers nothing — delete the entry",
                    i + 1
                ));
            }
            *entries
                .entry((path.replace('\\', "/"), code.to_owned()))
                .or_insert(0) += count;
        }
        Ok(Baseline { entries })
    }

    /// Loads and parses a baseline file.
    ///
    /// # Errors
    ///
    /// Returns the IO or parse failure as a message.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
        Self::parse(&text)
    }

    /// Whether the baseline grandfathers anything at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Subtracts the baseline from `report` in place: for each
    /// `(path, code)` entry the first `count` findings (in the
    /// report's sorted order) are suppressed; everything beyond the
    /// grandfathered count stays and still fails `--deny`.
    pub fn apply(&self, report: &mut ScanReport) -> BaselineOutcome {
        let mut budget: BTreeMap<(String, String), usize> = self.entries.clone();
        let mut outcome = BaselineOutcome::default();
        report.diagnostics.retain(|d| {
            let key = (d.path.clone(), d.code.to_owned());
            match budget.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    outcome.suppressed += 1;
                    false
                }
                _ => true,
            }
        });
        outcome.stale = budget
            .into_iter()
            .filter(|&(_, n)| n > 0)
            .map(|((path, code), n)| (path, code, n))
            .collect();
        outcome
    }

    /// Renders `diagnostics` in the baseline format (counts per
    /// `(path, code)`, sorted), ready to commit as the grandfather
    /// file for `--baseline`.
    #[must_use]
    pub fn render(diagnostics: &[SourceDiagnostic]) -> String {
        let mut counts: BTreeMap<(&str, &str), usize> = BTreeMap::new();
        for d in diagnostics {
            *counts.entry((d.path.as_str(), d.code)).or_insert(0) += 1;
        }
        let mut out = String::from(
            "# simlint baseline: grandfathered findings (deny mode fails only on NEW ones).\n\
             # Format: <path> <code> <count> [justification]. Keep every entry justified.\n",
        );
        for ((path, code), n) in counts {
            out.push_str(&format!("{path} {code} {n}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(path: &str, code: &'static str, line: usize) -> SourceDiagnostic {
        SourceDiagnostic {
            code,
            severity: "error",
            path: path.to_owned(),
            line,
            message: "m".to_owned(),
        }
    }

    #[test]
    fn apply_suppresses_up_to_the_grandfathered_count() {
        let base = Baseline::parse("crates/serve/src/s.rs SL203 2 control channels\n")
            .expect("parses");
        let mut report = ScanReport {
            files_scanned: 1,
            diagnostics: vec![
                diag("crates/serve/src/s.rs", "SL203", 10),
                diag("crates/serve/src/s.rs", "SL203", 20),
                diag("crates/serve/src/s.rs", "SL203", 30),
                diag("crates/serve/src/s.rs", "SL202", 5),
            ],
            ..ScanReport::default()
        };
        let outcome = base.apply(&mut report);
        assert_eq!(outcome.suppressed, 2);
        assert!(outcome.stale.is_empty());
        // The third SL203 and the SL202 are NEW findings and survive.
        assert_eq!(report.diagnostics.len(), 2);
        assert_eq!(report.diagnostics[0].line, 30);
        assert_eq!(report.diagnostics[1].code, "SL202");
    }

    #[test]
    fn stale_entries_are_reported() {
        let base =
            Baseline::parse("crates/serve/src/s.rs SL203 3\n").expect("parses");
        let mut report = ScanReport {
            files_scanned: 1,
            diagnostics: vec![diag("crates/serve/src/s.rs", "SL203", 10)],
            ..ScanReport::default()
        };
        let outcome = base.apply(&mut report);
        assert_eq!(outcome.suppressed, 1);
        assert_eq!(
            outcome.stale,
            vec![("crates/serve/src/s.rs".to_owned(), "SL203".to_owned(), 2)]
        );
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Baseline::parse("just/a/path SL203\n").is_err(), "missing count");
        assert!(Baseline::parse("p NOTACODE 1\n").is_err());
        assert!(Baseline::parse("p SL203 zero\n").is_err());
        assert!(Baseline::parse("p SL203 0\n").is_err(), "zero count");
        assert!(Baseline::parse("# comment only\n\n").expect("ok").is_empty());
    }

    #[test]
    fn render_round_trips_through_parse() {
        let diags = vec![
            diag("a.rs", "SL203", 1),
            diag("a.rs", "SL203", 2),
            diag("b.rs", "SL201", 3),
        ];
        let text = Baseline::render(&diags);
        let base = Baseline::parse(&text).expect("round-trips");
        let mut report = ScanReport {
            files_scanned: 1,
            diagnostics: diags,
            ..ScanReport::default()
        };
        let outcome = base.apply(&mut report);
        assert_eq!(outcome.suppressed, 3);
        assert!(report.is_clean());
    }
}
