//! The brace/block tree and item index built over the token stream.
//!
//! One parse produces, per file:
//!
//! * a tree of every braced block (token index of `{`/`}`, parent
//!   link, line span) plus an innermost-block map for each token —
//!   the structure the scope-aware rules use for *dominance* ("does
//!   the guard sit in a block that encloses the risky call?");
//! * an item index of every `fn`, with its signature (params, return
//!   type idents), enclosing `impl` type, and whether it lives in test
//!   code (`#[test]`, `#[cfg(test)]` on the item or any ancestor
//!   `mod`/`impl`/`fn`) — `#[cfg(test)]` regions are tree nodes here,
//!   not line spans.
//!
//! This is deliberately not a full Rust parser: it is a brace-matching
//! pass with just enough item awareness for the SL2xx rules, and it
//! degrades gracefully (unknown constructs simply contribute no items).

use crate::lexer::{lex, match_delim, Tok, TokKind};
use crate::strip_source;

/// One braced block (`{ ... }`).
#[derive(Debug)]
pub struct Block {
    /// Token index of the opening `{`.
    pub open: usize,
    /// Token index of the matching `}` (or one past the last token if
    /// the file is unbalanced).
    pub close: usize,
    /// Enclosing block, if any.
    pub parent: Option<usize>,
    /// 1-based line of the opening brace.
    pub open_line: usize,
    /// 1-based line of the closing brace.
    pub close_line: usize,
    /// Whether the item owning this block carried `#[cfg(test)]` or
    /// `#[test]` — everything inside is test code.
    pub test_root: bool,
    /// For an `impl` body: the implemented type's name.
    pub impl_name: Option<String>,
}

/// One `fn` item.
#[derive(Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub start: usize,
    /// Token index of the body's `}` (or of the `;` for a bodyless
    /// declaration).
    pub end: usize,
    /// Block id of the body, when there is one.
    pub body: Option<usize>,
    /// `(name, type idents)` per parameter (`self` receivers skipped).
    pub params: Vec<(String, Vec<String>)>,
    /// Identifier tokens of the return type (empty for `()`).
    pub ret: Vec<String>,
    /// Whether this item is test code (own attrs or any ancestor's).
    pub is_test: bool,
    /// The enclosing `impl` type name, if any.
    pub impl_of: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub start_line: usize,
}

/// The parsed file: tokens, block tree and item index.
#[derive(Debug)]
pub struct FileTree {
    /// The lexed token stream.
    pub toks: Vec<Tok>,
    /// Every braced block, in opening order.
    pub blocks: Vec<Block>,
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
    block_of: Vec<Option<usize>>,
}

impl FileTree {
    /// Parses `source` (raw file text) into a tree.
    #[must_use]
    pub fn parse(source: &str) -> FileTree {
        let toks = lex(&strip_source(source));
        let (blocks, block_of) = build_blocks(&toks);
        let mut tree = FileTree {
            toks,
            blocks,
            fns: Vec::new(),
            block_of,
        };
        tree.index_items();
        tree
    }

    /// The innermost block containing token `idx` (the braces
    /// themselves belong to the block they delimit).
    #[must_use]
    pub fn block_of(&self, idx: usize) -> Option<usize> {
        self.block_of.get(idx).copied().flatten()
    }

    /// Whether `block` is `ancestor` or nested (at any depth) inside it.
    #[must_use]
    pub fn is_ancestor_or_self(&self, ancestor: Option<usize>, block: Option<usize>) -> bool {
        let Some(a) = ancestor else {
            return true; // file scope encloses everything
        };
        let mut cur = block;
        while let Some(b) = cur {
            if b == a {
                return true;
            }
            cur = self.blocks[b].parent;
        }
        false
    }

    /// Whether the token at `guard` *dominates* the token at `call`:
    /// it comes no later and its innermost block encloses the call's.
    #[must_use]
    pub fn dominates(&self, guard: usize, call: usize) -> bool {
        guard <= call && self.is_ancestor_or_self(self.block_of(guard), self.block_of(call))
    }

    /// Whether token `idx` sits inside test code.
    #[must_use]
    pub fn in_test(&self, idx: usize) -> bool {
        let mut cur = self.block_of(idx);
        while let Some(b) = cur {
            if self.blocks[b].test_root {
                return true;
            }
            cur = self.blocks[b].parent;
        }
        false
    }

    /// The `impl` type enclosing token `idx`, if any.
    #[must_use]
    pub fn impl_at(&self, idx: usize) -> Option<&str> {
        let mut cur = self.block_of(idx);
        while let Some(b) = cur {
            if let Some(name) = &self.blocks[b].impl_name {
                return Some(name);
            }
            cur = self.blocks[b].parent;
        }
        None
    }

    /// The innermost block whose *line span* contains `line`,
    /// restricted to blocks within token range `[start, end]`. Used to
    /// place comment lines (which have no tokens) in the tree.
    #[must_use]
    pub fn block_at_line(&self, line: usize, start: usize, end: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (id, b) in self.blocks.iter().enumerate() {
            if b.open < start || b.close > end {
                continue;
            }
            if b.open_line <= line && line <= b.close_line {
                // Later-opening blocks are deeper.
                best = Some(id);
            }
        }
        best
    }

    fn index_items(&mut self) {
        let toks = std::mem::take(&mut self.toks);
        let mut attr_test = false;
        let mut i = 0usize;
        while i < toks.len() {
            let t = &toks[i];
            match t.kind {
                TokKind::Punct if t.text == "#" => {
                    // Attribute: `#[...]` (or inner `#![...]`).
                    let mut j = i + 1;
                    if toks.get(j).is_some_and(|t| t.is_punct("!")) {
                        j += 1;
                    }
                    if toks.get(j).is_some_and(|t| t.is_punct("[")) {
                        let close = match_delim(&toks, j);
                        attr_test |= toks[j..close.min(toks.len())]
                            .iter()
                            .any(|t| t.is_ident("test"));
                        i = close + 1;
                        continue;
                    }
                    i += 1;
                }
                TokKind::Ident => match t.text.as_str() {
                    "fn" => {
                        let inherited = self.in_test(i) || attr_test;
                        let next = self.index_fn(&toks, i, inherited);
                        attr_test = false;
                        i = next;
                    }
                    "mod" | "impl" | "trait" => {
                        let next = self.index_container(&toks, i, attr_test);
                        attr_test = false;
                        i = next;
                    }
                    // Modifiers keep a pending attribute attached to
                    // the item that follows.
                    "pub" | "crate" | "in" | "unsafe" | "const" | "async" | "extern"
                    | "default" => i += 1,
                    _ => {
                        attr_test = false;
                        i += 1;
                    }
                },
                TokKind::Str => i += 1, // `extern "C"` keeps attrs pending
                _ => {
                    if t.is_punct("(") {
                        // `pub(crate)` visibility group keeps attrs.
                        i = match_delim(&toks, i) + 1;
                    } else {
                        attr_test = false;
                        i += 1;
                    }
                }
            }
        }
        self.toks = toks;
    }

    /// Indexes a `fn` starting at token `at`; returns the index to
    /// resume scanning from (just after the signature — the body is
    /// scanned by the main loop so nested items are found too).
    fn index_fn(&mut self, toks: &[Tok], at: usize, is_test: bool) -> usize {
        let Some(name_tok) = toks.get(at + 1).filter(|t| t.kind == TokKind::Ident) else {
            return at + 1;
        };
        let name = name_tok.text.clone();
        // Parameter list: the first `(` after the name (skipping
        // generics, which may contain parens in bounds — scan for the
        // first paren at angle depth 0).
        let mut j = at + 2;
        let mut angle = 0i64;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") || t.is_punct("->") && angle > 0 {
                angle -= t.is_punct(">") as i64;
            } else if t.is_punct("(") && angle == 0 {
                break;
            } else if t.is_punct("{") || t.is_punct(";") {
                return j; // malformed; give up on this item
            }
            j += 1;
        }
        if j >= toks.len() {
            return toks.len();
        }
        let params_close = match_delim(toks, j);
        let params = parse_params(toks, j, params_close);
        // Return type + where clause: idents until the body `{` or `;`.
        let mut ret = Vec::new();
        let mut k = params_close + 1;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct("{") || t.is_punct(";") {
                break;
            }
            if t.kind == TokKind::Ident && t.text != "where" {
                ret.push(t.text.clone());
            }
            if t.is_punct("(") || t.is_punct("[") {
                // Tuple/array types: collect idents inside too.
                let close = match_delim(toks, k);
                for inner in &toks[k..close.min(toks.len())] {
                    if inner.kind == TokKind::Ident {
                        ret.push(inner.text.clone());
                    }
                }
                k = close;
            }
            k += 1;
        }
        let (body, end) = if toks.get(k).is_some_and(|t| t.is_punct("{")) {
            let body_id = self.block_opened_at(k);
            if let (Some(id), true) = (body_id, is_test) {
                self.blocks[id].test_root = true;
            }
            (body_id, body_id.map_or(k, |id| self.blocks[id].close))
        } else {
            (None, k.min(toks.len().saturating_sub(1)))
        };
        self.fns.push(FnItem {
            name,
            start: at,
            end,
            body,
            params,
            ret,
            is_test,
            impl_of: self.impl_at(at).map(str::to_owned),
            start_line: toks[at].line,
        });
        // Resume just after the opening brace so nested fns/items in
        // the body are indexed by the main loop.
        k + 1
    }

    /// Indexes a `mod`/`impl`/`trait` container starting at `at`;
    /// marks its block as a test root (and records the impl type).
    fn index_container(&mut self, toks: &[Tok], at: usize, attr_test: bool) -> usize {
        let kind = toks[at].text.clone();
        let mut impl_name: Option<String> = None;
        let mut after_for = false;
        let mut seen_first: Option<String> = None;
        let mut j = at + 1;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("{") {
                break;
            }
            if t.is_punct(";") {
                return j + 1; // `mod x;` — nothing to mark
            }
            if t.is_punct("<") {
                // Skip a generics group (angle depth tracking).
                let mut depth = 1i64;
                j += 1;
                while j < toks.len() && depth > 0 {
                    if toks[j].is_punct("<") {
                        depth += 1;
                    } else if toks[j].is_punct(">") {
                        depth -= 1;
                    } else if toks[j].is_punct("{") || toks[j].is_punct(";") {
                        break;
                    }
                    j += 1;
                }
                continue;
            }
            if t.is_punct("(") || t.is_punct("[") {
                j = match_delim(toks, j) + 1;
                continue;
            }
            if t.kind == TokKind::Ident {
                if t.text == "for" {
                    after_for = true;
                    seen_first = None;
                } else if seen_first.is_none() && t.text != "dyn" {
                    seen_first = Some(t.text.clone());
                    if kind == "impl" && (after_for || impl_name.is_none()) {
                        impl_name = Some(t.text.clone());
                    }
                }
            } else if t.is_punct("::") {
                // Path continues: the type is the last segment.
                seen_first = None;
                if kind == "impl" {
                    impl_name = None;
                }
            }
            j += 1;
        }
        if let Some(id) = self.block_opened_at(j) {
            self.blocks[id].test_root |= attr_test;
            if kind == "impl" {
                // The last path segment before `{` (after `for`, if
                // present) names the implemented type.
                self.blocks[id].impl_name = impl_name.or(seen_first);
            }
        }
        j + 1
    }

    fn block_opened_at(&self, open_idx: usize) -> Option<usize> {
        // Blocks are recorded in opening order; binary search by open.
        self.blocks
            .binary_search_by_key(&open_idx, |b| b.open)
            .ok()
    }
}

fn build_blocks(toks: &[Tok]) -> (Vec<Block>, Vec<Option<usize>>) {
    let mut blocks: Vec<Block> = Vec::new();
    let mut block_of: Vec<Option<usize>> = Vec::with_capacity(toks.len());
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct("{") {
            let id = blocks.len();
            blocks.push(Block {
                open: i,
                close: toks.len(),
                parent: stack.last().copied(),
                open_line: t.line,
                close_line: toks.last().map_or(t.line, |l| l.line),
                test_root: false,
                impl_name: None,
            });
            stack.push(id);
            block_of.push(Some(id));
            continue;
        }
        block_of.push(stack.last().copied());
        if t.is_punct("}") {
            if let Some(id) = stack.pop() {
                blocks[id].close = i;
                blocks[id].close_line = t.line;
            }
        }
    }
    (blocks, block_of)
}

/// Parses the parameter list between tokens `open`..`close` into
/// `(name, type idents)` pairs; `self` receivers are skipped.
fn parse_params(toks: &[Tok], open: usize, close: usize) -> Vec<(String, Vec<String>)> {
    let mut params = Vec::new();
    let mut start = open + 1;
    let mut depth = 0i64;
    let mut i = open + 1;
    while i <= close.min(toks.len().saturating_sub(1)) {
        let t = &toks[i];
        let boundary = (t.is_punct(",") && depth == 0) || i == close;
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(")") && i != close || t.is_punct("]") || t.is_punct(">") {
            depth -= 1;
        }
        if boundary {
            if let Some(param) = parse_one_param(&toks[start..i]) {
                params.push(param);
            }
            start = i + 1;
        }
        i += 1;
    }
    params
}

fn parse_one_param(toks: &[Tok]) -> Option<(String, Vec<String>)> {
    let colon = toks.iter().position(|t| t.is_punct(":"))?;
    let name = toks[..colon]
        .iter()
        .rev()
        .find(|t| t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref")?
        .text
        .clone();
    let ty = toks[colon + 1..]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .collect();
    Some((name, ty))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_fns_with_signatures() {
        let tree = FileTree::parse(
            "impl Server {\n    fn own_queue(&self) -> std::sync::MutexGuard<'_, Vec<u8>> {\n        self.q.lock().unwrap()\n    }\n}\nfn free(seed: u64, rx: Receiver<u8>) {}\n",
        );
        assert_eq!(tree.fns.len(), 2);
        let own = &tree.fns[0];
        assert_eq!(own.name, "own_queue");
        assert!(own.ret.iter().any(|t| t == "MutexGuard"));
        assert_eq!(own.impl_of.as_deref(), Some("Server"));
        let free = &tree.fns[1];
        assert_eq!(free.params.len(), 2);
        assert_eq!(free.params[0].0, "seed");
        assert!(free.params[1].1.iter().any(|t| t == "Receiver"));
    }

    #[test]
    fn cfg_test_containers_are_tree_nodes() {
        let tree = FileTree::parse(
            "fn prod() { let x = 1; }\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn case() {}\n}\n",
        );
        let by_name = |n: &str| tree.fns.iter().find(|f| f.name == n).expect(n);
        assert!(!by_name("prod").is_test);
        assert!(by_name("helper").is_test, "inherits the mod's cfg(test)");
        assert!(by_name("case").is_test);
    }

    #[test]
    fn impl_for_records_the_self_type() {
        let tree = FileTree::parse(
            "impl fmt::Display for SourceDiagnostic {\n    fn fmt(&self) {}\n}\nimpl<T: Fn(u8)> Wrapper<T> {\n    fn go(&self) {}\n}\n",
        );
        assert_eq!(tree.fns[0].impl_of.as_deref(), Some("SourceDiagnostic"));
        assert_eq!(tree.fns[1].impl_of.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn dominance_follows_the_block_tree() {
        let tree = FileTree::parse(
            "fn f(x: bool) {\n    if x {\n        guard();\n    }\n    call();\n    if x {\n        late();\n    }\n}\n",
        );
        let pos = |name: &str| {
            tree.toks
                .iter()
                .position(|t| t.is_ident(name))
                .expect(name)
        };
        // A sibling block does not dominate...
        assert!(!tree.dominates(pos("guard"), pos("call")));
        // ...the enclosing scope does; later tokens never dominate.
        assert!(tree.dominates(pos("f"), pos("call")));
        assert!(!tree.dominates(pos("late"), pos("call")));
    }

    #[test]
    fn comment_lines_place_into_blocks() {
        let source = "fn f(x: bool) {\n    if x {\n        // nonblocking here\n        a();\n    }\n    b();\n}\n";
        let tree = FileTree::parse(source);
        let f = &tree.fns[0];
        let b_pos = tree.toks.iter().position(|t| t.is_ident("b")).expect("b");
        let comment_block = tree.block_at_line(3, f.start, f.end);
        assert!(
            !tree.is_ancestor_or_self(comment_block, tree.block_of(b_pos)),
            "a comment inside the if-block must not dominate b()"
        );
    }
}
