//! `simlint` CLI — scans the workspace for determinism, concurrency
//! and `unsafe`-code hygiene violations (see `docs/static_analysis.md`).
//!
//! ```text
//! simlint [--root DIR] [--allowlist FILE] [--baseline FILE]
//!         [--write-baseline FILE] [--deny] [--json] [--self-test]
//!         [--catalog]
//! ```
//!
//! - `--root DIR`             workspace root to scan (default: `.`)
//! - `--allowlist FILE`       vetted-site allowlist (default: `<root>/scripts/simlint.allow` if present)
//! - `--baseline FILE`        grandfathered findings to subtract (default: `<root>/scripts/simlint.baseline` if present); deny mode then fails only on NEW findings
//! - `--write-baseline FILE`  write the current findings in baseline format and exit
//! - `--deny`                 exit 1 on any non-grandfathered diagnostic (CI mode; default exits 0 and just prints)
//! - `--json`                 emit the machine-readable report on stdout (version 2: per-rule counts + scan timing)
//! - `--self-test`            scan the bundled fixtures and verify every registered code fires, and that the fixture set and rule registry agree
//! - `--catalog`              emit the machine-readable rule catalog (code, severity, scope, summary) and exit
//!
//! Exit codes: 0 clean (or warn mode), 1 findings under `--deny` or a
//! failed self-test, 2 usage/IO error.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use simlint::{
    catalog_json, check_crate_gate, scan_source, scan_workspace, Allowlist, Baseline, RULES,
};

struct Options {
    root: PathBuf,
    allowlist: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    deny: bool,
    json: bool,
    self_test: bool,
    catalog: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        allowlist: None,
        baseline: None,
        write_baseline: None,
        deny: false,
        json: false,
        self_test: false,
        catalog: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = PathBuf::from(
                    args.next().ok_or_else(|| "--root needs a value".to_owned())?,
                );
            }
            "--allowlist" => {
                opts.allowlist = Some(PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--allowlist needs a value".to_owned())?,
                ));
            }
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--baseline needs a value".to_owned())?,
                ));
            }
            "--write-baseline" => {
                opts.write_baseline = Some(PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--write-baseline needs a value".to_owned())?,
                ));
            }
            "--deny" => opts.deny = true,
            "--json" => opts.json = true,
            "--self-test" => opts.self_test = true,
            "--catalog" => opts.catalog = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

/// Proves each registered diagnostic fires on its bundled fixture, and
/// that the fixture directory and the rule registry agree (no
/// registered code without a fixture, no stray fixture file without a
/// rule) — run by CI so a scanner regression cannot silently stop
/// detecting a class.
fn self_test(root: &Path) -> Result<(), String> {
    let fixtures = root.join("crates/simlint/fixtures");
    let empty = Allowlist::empty();
    for r in &RULES {
        let path = fixtures.join(r.fixture);
        let source = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read fixture {}: {e}", path.display()))?;
        if r.code == "SL106" {
            // The gate rule fires on a crate root, not a scanned line.
            match check_crate_gate("fixtures/missing_gate/src/lib.rs", &source, false, &empty) {
                Some(d) if d.code == "SL106" => {
                    println!("self-test: {} fires SL106", r.fixture);
                }
                other => {
                    return Err(format!("{} no longer fires SL106: {other:?}", r.fixture));
                }
            }
            continue;
        }
        // Fixtures pose as files of the crate their rule is scoped to
        // (the registry records which).
        let label = format!("crates/{}/src/{}", r.fixture_crate, r.fixture);
        let diags = scan_source(&label, &source, true, &empty);
        if !diags.iter().any(|d| d.code == r.code) {
            return Err(format!(
                "fixture {} no longer fires {}: {diags:?}",
                r.fixture, r.code
            ));
        }
        println!("self-test: {} fires {}", r.fixture, r.code);
    }
    // Clean fixtures exercise the legitimate patterns and must stay
    // quiet under every rule.
    for (file, label) in [
        ("clean.rs", "crates/sim/src/clean.rs"),
        ("clean_sl2xx.rs", "crates/serve/src/clean_sl2xx.rs"),
    ] {
        let path = fixtures.join(file);
        let source = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read fixture {}: {e}", path.display()))?;
        let diags = scan_source(label, &source, true, &empty);
        if !diags.is_empty() {
            return Err(format!("{file} fired: {diags:?}"));
        }
        println!("self-test: {file} stays quiet");
    }
    // Fixture-set / registry agreement: every .rs file in fixtures/
    // must be a registered rule's fixture or a known clean fixture.
    let mut expected: BTreeSet<String> = RULES.iter().map(|r| r.fixture.to_owned()).collect();
    expected.insert("clean.rs".to_owned());
    expected.insert("clean_sl2xx.rs".to_owned());
    let mut actual: BTreeSet<String> = BTreeSet::new();
    let entries = std::fs::read_dir(&fixtures)
        .map_err(|e| format!("cannot list {}: {e}", fixtures.display()))?;
    for entry in entries.filter_map(Result::ok) {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".rs") {
            actual.insert(name);
        } else if entry.path().is_dir() {
            // Directory fixtures (crate-shaped, e.g. missing_gate/)
            // register under their crate-root path.
            actual.insert(format!("{name}/src/lib.rs"));
        }
    }
    let unregistered: Vec<&String> = actual.difference(&expected).collect();
    if !unregistered.is_empty() {
        return Err(format!(
            "fixture files with no registry entry (register the rule or delete them): \
             {unregistered:?}"
        ));
    }
    let missing: Vec<&String> = expected.difference(&actual).collect();
    if !missing.is_empty() {
        return Err(format!("registered fixtures missing on disk: {missing:?}"));
    }
    println!(
        "self-test: fixture set and rule registry agree ({} rules, {} fixtures)",
        RULES.len(),
        actual.len()
    );
    Ok(())
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args()?;
    if opts.catalog {
        print!("{}", catalog_json());
        return Ok(ExitCode::SUCCESS);
    }
    if opts.self_test {
        self_test(&opts.root)?;
        return Ok(ExitCode::SUCCESS);
    }
    let allowlist = match &opts.allowlist {
        Some(path) => Allowlist::load(path)?,
        None => {
            let default = opts.root.join("scripts/simlint.allow");
            if default.is_file() {
                Allowlist::load(&default)?
            } else {
                Allowlist::empty()
            }
        }
    };
    let baseline = match &opts.baseline {
        Some(path) => Baseline::load(path)?,
        None => {
            let default = opts.root.join("scripts/simlint.baseline");
            if default.is_file() {
                Baseline::load(&default)?
            } else {
                Baseline::empty()
            }
        }
    };
    let mut report = scan_workspace(&opts.root, &allowlist)
        .map_err(|e| format!("scan failed: {e}"))?;
    if let Some(path) = &opts.write_baseline {
        let text = Baseline::render(&report.diagnostics);
        std::fs::write(path, &text)
            .map_err(|e| format!("cannot write baseline {}: {e}", path.display()))?;
        eprintln!(
            "simlint: wrote {} grandfathered finding(s) to {}",
            report.diagnostics.len(),
            path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }
    let outcome = baseline.apply(&mut report);
    report.suppressed = outcome.suppressed;
    if opts.json {
        print!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            eprintln!("simlint: {d}");
        }
        for (path, code, unused) in &outcome.stale {
            eprintln!(
                "simlint: stale baseline entry {path} {code}: {unused} grandfathered \
                 finding(s) no longer occur — shrink the entry"
            );
        }
        eprintln!(
            "simlint: {} file(s) scanned in {} ms, {} finding(s), {} grandfathered",
            report.files_scanned,
            report.scan_ms,
            report.diagnostics.len(),
            report.suppressed
        );
    }
    // Stale baseline entries fail deny mode too: the baseline must
    // shrink as sites get fixed, or it quietly grandfathers future
    // regressions.
    if opts.deny && (!report.is_clean() || !outcome.stale.is_empty()) {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("simlint: error: {message}");
            ExitCode::from(2)
        }
    }
}
