//! `simlint` CLI — scans the workspace for determinism and
//! `unsafe`-code hygiene violations (see `docs/static_analysis.md`).
//!
//! ```text
//! simlint [--root DIR] [--allowlist FILE] [--deny] [--json] [--self-test]
//! ```
//!
//! - `--root DIR`        workspace root to scan (default: `.`)
//! - `--allowlist FILE`  vetted-site allowlist (default: `<root>/scripts/simlint.allow` if present)
//! - `--deny`            exit 1 on any diagnostic (CI mode; default exits 0 and just prints)
//! - `--json`            emit the machine-readable report on stdout
//! - `--self-test`       scan the bundled fixtures and verify every SL1xx code fires
//!
//! Exit codes: 0 clean (or warn mode), 1 findings under `--deny` or a
//! failed self-test, 2 usage/IO error.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use simlint::{check_crate_gate, scan_source, scan_workspace, Allowlist};

struct Options {
    root: PathBuf,
    allowlist: Option<PathBuf>,
    deny: bool,
    json: bool,
    self_test: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        allowlist: None,
        deny: false,
        json: false,
        self_test: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = PathBuf::from(
                    args.next().ok_or_else(|| "--root needs a value".to_owned())?,
                );
            }
            "--allowlist" => {
                opts.allowlist = Some(PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--allowlist needs a value".to_owned())?,
                ));
            }
            "--deny" => opts.deny = true,
            "--json" => opts.json = true,
            "--self-test" => opts.self_test = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

/// Proves each SL1xx diagnostic fires on its bundled fixture — run by
/// CI so a scanner regression cannot silently stop detecting a class.
fn self_test(root: &Path) -> Result<(), String> {
    let fixtures = root.join("crates/simlint/fixtures");
    let empty = Allowlist::empty();
    let expect = [
        ("hash_iteration.rs", "SL101"),
        ("wall_clock.rs", "SL102"),
        ("ambient_rng.rs", "SL103"),
        ("float_reduction.rs", "SL104"),
        ("unsafe_no_safety.rs", "SL105"),
        ("join_unwrap.rs", "SL107"),
        ("blocking_recv.rs", "SL108"),
        ("ring_stream_bypass.rs", "SL109"),
        ("conn_thread_spawn.rs", "SL110"),
    ];
    for (file, code) in expect {
        let path = fixtures.join(file);
        let source = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read fixture {}: {e}", path.display()))?;
        // Fixtures are labelled as deterministic-crate files so the
        // determinism rules apply; the SL108/SL109 fixtures are
        // labelled in the serving layer, those rules' scope.
        let crate_dir = if matches!(code, "SL108" | "SL109" | "SL110") {
            "serve"
        } else {
            "sim"
        };
        let label = format!("crates/{crate_dir}/src/{file}");
        let diags = scan_source(&label, &source, true, &empty);
        if !diags.iter().any(|d| d.code == code) {
            return Err(format!("fixture {file} no longer fires {code}: {diags:?}"));
        }
        println!("self-test: {file} fires {code}");
    }
    let gate_root = fixtures.join("missing_gate/src/lib.rs");
    let source = std::fs::read_to_string(&gate_root)
        .map_err(|e| format!("cannot read fixture {}: {e}", gate_root.display()))?;
    match check_crate_gate("fixtures/missing_gate/src/lib.rs", &source, false, &empty) {
        Some(d) if d.code == "SL106" => println!("self-test: missing_gate fires SL106"),
        other => return Err(format!("missing_gate fixture no longer fires SL106: {other:?}")),
    }
    let clean = fixtures.join("clean.rs");
    let source = std::fs::read_to_string(&clean)
        .map_err(|e| format!("cannot read fixture {}: {e}", clean.display()))?;
    let diags = scan_source("crates/sim/src/clean.rs", &source, true, &empty);
    if !diags.is_empty() {
        return Err(format!("clean fixture fired: {diags:?}"));
    }
    println!("self-test: clean fixture stays quiet");
    Ok(())
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args()?;
    if opts.self_test {
        self_test(&opts.root)?;
        return Ok(ExitCode::SUCCESS);
    }
    let allowlist = match &opts.allowlist {
        Some(path) => Allowlist::load(path)?,
        None => {
            let default = opts.root.join("scripts/simlint.allow");
            if default.is_file() {
                Allowlist::load(&default)?
            } else {
                Allowlist::empty()
            }
        }
    };
    let report = scan_workspace(&opts.root, &allowlist)
        .map_err(|e| format!("scan failed: {e}"))?;
    if opts.json {
        print!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            eprintln!("simlint: {d}");
        }
        eprintln!(
            "simlint: {} file(s) scanned, {} finding(s)",
            report.files_scanned,
            report.diagnostics.len()
        );
    }
    if opts.deny && !report.is_clean() {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("simlint: error: {message}");
            ExitCode::from(2)
        }
    }
}
