//! The SL2xx concurrency & determinism-provenance rules.
//!
//! Everything here runs over the semantic core (lexer → block tree →
//! symbols) rather than raw lines:
//!
//! | code  | finding |
//! |-------|---------|
//! | SL201 | lock pair acquired in both orders in `crates/serve` (deadlock) |
//! | SL202 | mutex guard held across a blocking call |
//! | SL203 | channel-topology audit: unbounded `channel()` in the serving layer; a `Sender` whose `Receiver` is provably dropped |
//! | SL204 | seed material in deterministic crates not derived from the `RngTree` |
//! | SL205 | scope-aware guard checks: a liveness/lifecycle token must *dominate* the risky call, not merely sit within 3 lines |
//!
//! `scan_semantic` returns diagnostics *unfiltered* — the caller (the
//! crate root) applies inline `simlint: allow` directives and the
//! allowlist, exactly as for the SL1xx text rules — plus the raw lock
//! acquisition pairs so the workspace scanner can detect cross-file
//! order conflicts, and the set of lines the semantic SL107 pass
//! claimed (so the text fallback stays out of its way).

use crate::lexer::{match_delim, TokKind};
use crate::symbols::{normalize_receiver, Prov, Symbols};
use crate::tree::{FileTree, FnItem};
use crate::{SourceDiagnostic, LIFECYCLE_GUARDS, LIVENESS_GUARDS};
use std::collections::BTreeSet;

/// One ordered lock acquisition observed while another lock was held:
/// `first` was live when `second` was acquired.
#[derive(Debug, Clone)]
pub struct LockPair {
    /// The lock already held.
    pub first: String,
    /// The lock acquired under it.
    pub second: String,
    /// File of the inner acquisition.
    pub path: String,
    /// 1-based line of the inner acquisition.
    pub line: usize,
}

/// The semantic pass's output for one file.
#[derive(Debug, Default)]
pub struct SemanticScan {
    /// SL107/SL202–SL205 findings (unfiltered).
    pub diagnostics: Vec<SourceDiagnostic>,
    /// Ordered lock pairs for the SL201 order-consistency check.
    pub lock_pairs: Vec<LockPair>,
    /// 1-based lines where receiver provenance settled `.join(` —
    /// the SL107 text fallback must skip these.
    pub sl107_claimed: BTreeSet<usize>,
}

/// Blocking calls SL202 refuses to see under a held mutex guard
/// (matched as whole method/function identifiers, so `recv_timeout`
/// is its own entry and never a substring accident).
const SL202_BLOCKING: [&str; 10] = [
    "recv",
    "recv_timeout",
    "accept",
    "read",
    "read_exact",
    "read_frame",
    "poll",
    "sleep",
    "wait",
    "join",
];

/// Blocking-read identifiers SL205 requires a dominating liveness
/// guard for (the scope-aware SL108).
const SL205_READS: [&str; 5] = ["recv", "accept", "read", "read_exact", "read_frame"];

/// A guard interval: lock `name` is held over tokens `[start, end)`;
/// `acq` is the acquisition token (excluded from "held" queries so an
/// acquisition never conflicts with itself).
struct Held {
    name: String,
    start: usize,
    end: usize,
    acq: usize,
    line: usize,
}

/// Runs every SL2xx rule (plus the provenance-aware SL107) over one
/// file. `deterministic` gates SL204; the serve-layer rules gate on
/// `path` themselves.
#[must_use]
pub fn scan_semantic(path: &str, source: &str, deterministic: bool) -> SemanticScan {
    let mut out = SemanticScan::default();
    let in_src = path.contains("/src/");
    let in_serve = path.starts_with("crates/serve/") && in_src;
    let in_det = deterministic && in_src;
    if !in_src {
        return out;
    }
    let tree = FileTree::parse(source);
    let raw: Vec<&str> = source.lines().collect();
    let guard_fns: BTreeSet<String> = tree
        .fns
        .iter()
        .filter(|f| f.ret.iter().any(|t| t == "MutexGuard"))
        .map(|f| f.name.clone())
        .collect();
    for (fi, f) in tree.fns.iter().enumerate() {
        if f.is_test || f.body.is_none() {
            continue;
        }
        // Token ranges of fns nested inside this one are walked on
        // their own turn; skip them here so nothing double-fires.
        let nested: Vec<(usize, usize)> = tree
            .fns
            .iter()
            .enumerate()
            .filter(|(gi, g)| *gi != fi && g.start > f.start && g.end <= f.end)
            .map(|(_, g)| (g.start, g.end))
            .collect();
        let skip = |idx: usize| nested.iter().any(|&(s, e)| idx >= s && idx <= e);
        let syms = Symbols::build(&tree, f, &guard_fns);
        sl107_provenance(path, &tree, f, &syms, &skip, &mut out);
        if in_serve {
            let held = lock_intervals(path, &tree, f, &syms, &guard_fns, &skip, &mut out);
            sl202_guard_across_blocking(path, &tree, f, &held, &skip, &mut out);
            sl203_channel_topology(path, &tree, f, &syms, &skip, &mut out);
            sl205_scope_guards(path, &tree, f, &raw, &skip, &mut out);
        }
        if in_det {
            sl204_rng_provenance(path, &tree, f, &syms, &skip, &mut out);
        }
    }
    out
}

/// Finds lock-order conflicts in a set of acquisition pairs: any two
/// locks acquired in both orders. Returns one diagnostic per
/// conflicting lock pair (anchored at the lexicographically first
/// site), tagged with its canonical `(min, max)` lock-name key so a
/// workspace-level rerun over merged pairs can skip conflicts already
/// reported per-file.
#[must_use]
pub fn lock_conflicts(pairs: &[LockPair]) -> Vec<(SourceDiagnostic, (String, String))> {
    let mut out = Vec::new();
    let mut keys = BTreeSet::new();
    let mut sorted: Vec<&LockPair> = pairs.iter().collect();
    sorted.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    for p in &sorted {
        let key = if p.first <= p.second {
            (p.first.clone(), p.second.clone())
        } else {
            (p.second.clone(), p.first.clone())
        };
        if keys.contains(&key) {
            continue;
        }
        let Some(rev) = sorted
            .iter()
            .find(|q| q.first == p.second && q.second == p.first)
        else {
            continue;
        };
        keys.insert(key.clone());
        let diag = SourceDiagnostic {
            code: "SL201",
            severity: "error",
            path: p.path.clone(),
            line: p.line,
            message: format!(
                "lock order conflict: `{}` is held while `{}` is acquired here, but \
                 {}:{} acquires `{}` under `{}` — inconsistent order across the \
                 work-stealing paths can deadlock; pick one order",
                p.first, p.second, rev.path, rev.line, rev.second, rev.first
            ),
        };
        out.push((diag, key));
    }
    out
}

/// The provenance-aware SL107: `.join()` on a known `JoinHandle`
/// followed by `unwrap`/`expect` fires (directly or via a bound
/// `JoinResult`); `.join(` on a known `Path` is claimed as clean. All
/// lines where provenance settled the question are recorded so the
/// text fallback skips them.
fn sl107_provenance(
    path: &str,
    tree: &FileTree,
    f: &FnItem,
    syms: &Symbols,
    skip: &dyn Fn(usize) -> bool,
    out: &mut SemanticScan,
) {
    let toks = &tree.toks;
    let fire = |line: usize, out: &mut SemanticScan| {
        out.diagnostics.push(SourceDiagnostic {
            code: "SL107",
            severity: "error",
            path: path.to_owned(),
            line,
            message: "bare unwrap/expect on JoinHandle::join: a worker panic loses its \
                      payload and origin; match the Err and re-panic with the payload \
                      plus shard/job context"
                .to_owned(),
        });
    };
    for k in f.start..=f.end.min(toks.len().saturating_sub(1)) {
        if skip(k) {
            continue;
        }
        let t = &toks[k];
        if t.is_ident("join") && k > 1 && toks[k - 1].is_punct(".") {
            let recv = &toks[k - 2];
            if recv.kind != TokKind::Ident {
                continue;
            }
            match syms.prov_at(&recv.text, k) {
                Some(Prov::PathLike) => {
                    // Path concatenation: provably not a thread join.
                    out.sl107_claimed.insert(t.line);
                }
                Some(Prov::JoinHandle) => {
                    out.sl107_claimed.insert(t.line);
                    let empty = toks.get(k + 1).is_some_and(|t| t.is_punct("("))
                        && toks.get(k + 2).is_some_and(|t| t.is_punct(")"));
                    let chained = empty
                        && toks.get(k + 3).is_some_and(|t| t.is_punct("."))
                        && toks
                            .get(k + 4)
                            .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"));
                    if chained {
                        fire(t.line, out);
                    }
                }
                _ => {}
            }
        }
        // A bound join Result unwrapped later: `let r = h.join();
        // ... r.unwrap()`.
        if t.kind == TokKind::Ident
            && syms.prov_at(&t.text, k) == Some(&Prov::JoinResult)
            && toks.get(k + 1).is_some_and(|t| t.is_punct("."))
            && toks
                .get(k + 2)
                .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
        {
            out.sl107_claimed.insert(t.line);
            fire(t.line, out);
        }
    }
}

/// Collects every lock-guard liveness interval in `f` — scoped guards
/// from `let g = x.lock()...` (live until `drop(g)` or the end of the
/// defining block) and transient guards from expression-position
/// `.lock()` calls (live to the end of the statement) — and emits the
/// SL201 acquisition pairs along the way.
fn lock_intervals(
    path: &str,
    tree: &FileTree,
    f: &FnItem,
    syms: &Symbols,
    guard_fns: &BTreeSet<String>,
    skip: &dyn Fn(usize) -> bool,
    out: &mut SemanticScan,
) -> Vec<Held> {
    let toks = &tree.toks;
    let mut held: Vec<Held> = Vec::new();
    // Scoped guards from the symbol table.
    for b in &syms.bindings {
        let Prov::LockGuard(name) = &b.prov else {
            continue;
        };
        if b.def < f.start || name.is_empty() {
            continue; // parameters: lifetime unknown here
        }
        let block_end = tree
            .block_of(b.def)
            .map_or(f.end, |bl| tree.blocks[bl].close);
        let mut end = block_end.min(f.end);
        // An explicit `drop(g)` releases early.
        let mut j = b.stmt_end;
        while j + 3 <= f.end.min(toks.len().saturating_sub(1)) {
            if toks[j].is_ident("drop")
                && toks[j + 1].is_punct("(")
                && toks[j + 2].is_ident(&b.name)
                && toks[j + 3].is_punct(")")
            {
                end = j;
                break;
            }
            j += 1;
        }
        held.push(Held {
            name: name.clone(),
            start: b.stmt_end,
            end,
            acq: b.def,
            line: toks[b.def].line,
        });
    }
    // Transient guards: `.lock()` / guard-fn calls in expression
    // position (not inside a scoped binding's defining statement).
    let owned_by_binding = |idx: usize| {
        syms.bindings.iter().any(|b| {
            matches!(b.prov, Prov::LockGuard(_)) && idx >= b.def && idx < b.stmt_end
        })
    };
    let limit = f.end.min(toks.len().saturating_sub(1));
    for k in f.start..=limit {
        if skip(k) || owned_by_binding(k) {
            continue;
        }
        let t = &toks[k];
        let name = if t.is_ident("lock")
            && k > 0
            && toks[k - 1].is_punct(".")
            && toks.get(k + 1).is_some_and(|t| t.is_punct("("))
        {
            normalize_receiver(&toks[f.start..k - 1])
        } else if t.kind == TokKind::Ident
            && guard_fns.contains(&t.text)
            && toks.get(k + 1).is_some_and(|t| t.is_punct("("))
            && k > 0
            && (toks[k - 1].is_punct(".") || toks[k - 1].is_punct("::"))
        {
            format!("fn:{}", t.text)
        } else {
            continue;
        };
        if name.is_empty() {
            continue;
        }
        let mut end = k + 1;
        while end <= limit
            && !(toks[end].is_punct(";") || toks[end].is_punct("{") || toks[end].is_punct("}"))
        {
            end += 1;
        }
        held.push(Held {
            name,
            start: k,
            end,
            acq: k,
            line: t.line,
        });
    }
    // Acquisition-order pairs: at each acquisition, every other lock
    // already live contributes an ordered pair.
    let mut acqs: Vec<(usize, usize)> = held.iter().enumerate().map(|(i, h)| (h.acq, i)).collect();
    acqs.sort_unstable();
    for &(pos, i) in &acqs {
        for h in &held {
            if h.acq != pos
                && h.name != held[i].name
                && h.start <= pos
                && pos < h.end
                && tree.dominates(h.acq, pos)
            {
                out.lock_pairs.push(LockPair {
                    first: h.name.clone(),
                    second: held[i].name.clone(),
                    path: path.to_owned(),
                    line: held[i].line,
                });
            }
        }
    }
    held
}

/// SL202: a blocking call while a mutex guard is live.
fn sl202_guard_across_blocking(
    path: &str,
    tree: &FileTree,
    f: &FnItem,
    held: &[Held],
    skip: &dyn Fn(usize) -> bool,
    out: &mut SemanticScan,
) {
    let toks = &tree.toks;
    let limit = f.end.min(toks.len().saturating_sub(1));
    for k in f.start..=limit {
        if skip(k) {
            continue;
        }
        let t = &toks[k];
        if t.kind != TokKind::Ident || !SL202_BLOCKING.contains(&t.text.as_str()) {
            continue;
        }
        if !toks.get(k + 1).is_some_and(|t| t.is_punct("(")) {
            continue;
        }
        // `.join` only counts with an empty argument list (the
        // JoinHandle signature) — `path.join("x")` is concatenation.
        if t.text == "join" && !toks.get(k + 2).is_some_and(|t| t.is_punct(")")) {
            continue;
        }
        // `.lock()` chains name their own guard; skip tokens that sit
        // inside an acquisition's statement-claiming interval start.
        let Some(holder) = held.iter().find(|h| {
            h.acq != k && h.start <= k && k < h.end && tree.dominates(h.acq, k)
        }) else {
            continue;
        };
        out.diagnostics.push(SourceDiagnostic {
            code: "SL202",
            severity: "error",
            path: path.to_owned(),
            line: t.line,
            message: format!(
                "mutex guard `{}` (acquired line {}) is held across blocking `{}()`: \
                 drop the guard or narrow its scope before blocking, or every other \
                 thread contending for the lock stalls with it",
                holder.name, holder.line, t.text
            ),
        });
    }
}

/// SL203: channel-topology audit over the serving layer.
fn sl203_channel_topology(
    path: &str,
    tree: &FileTree,
    f: &FnItem,
    syms: &Symbols,
    skip: &dyn Fn(usize) -> bool,
    out: &mut SemanticScan,
) {
    let toks = &tree.toks;
    let limit = f.end.min(toks.len().saturating_sub(1));
    let used_after = |name: &str, from: usize| {
        (from..=limit).any(|k| !skip(k) && toks[k].is_ident(name))
    };
    for (i, b) in syms.bindings.iter().enumerate() {
        if b.def < f.start || b.def > f.end || skip(b.def) {
            continue;
        }
        if let Prov::Sender { bounded: false } = b.prov {
            out.diagnostics.push(SourceDiagnostic {
                code: "SL203",
                severity: "warning",
                path: path.to_owned(),
                line: toks[b.def].line,
                message: "unbounded mpsc::channel() in the serving layer: the \
                          backpressure contract is bounded queues end to end — use \
                          sync_channel with an explicit depth, or justify the \
                          unbounded edge in the baseline"
                    .to_owned(),
            });
        }
        // A Sender whose Receiver is provably dropped: tuple-bound
        // `(tx, _)`, or an explicit `drop(rx)` with `tx` still used.
        let Prov::Sender { .. } = b.prov else {
            continue;
        };
        let Some(rx) = syms.bindings.get(i + 1).filter(|r| {
            r.stmt_end == b.stmt_end && matches!(r.prov, Prov::Receiver { .. })
        }) else {
            continue;
        };
        // `dropped_at` is the first token index past the point where
        // the Receiver is gone (stmt_end already points past the `;`).
        let dropped_at = if rx.name == "_" {
            Some(b.stmt_end)
        } else {
            (b.stmt_end..limit.saturating_sub(3))
                .find(|&j| {
                    !skip(j)
                        && toks[j].is_ident("drop")
                        && toks[j + 1].is_punct("(")
                        && toks[j + 2].is_ident(&rx.name)
                        && toks[j + 3].is_punct(")")
                })
                .map(|j| j + 4)
        };
        if let Some(at) = dropped_at {
            if used_after(&b.name, at) {
                out.diagnostics.push(SourceDiagnostic {
                    code: "SL203",
                    severity: "warning",
                    path: path.to_owned(),
                    line: toks[b.def].line,
                    message: format!(
                        "Sender `{}` outlives its dropped Receiver `{}`: every send \
                         on this channel fails; keep the receiver alive or delete \
                         the channel",
                        b.name, rx.name
                    ),
                });
            }
        }
    }
}

/// SL204: seed material fed to `seed_from_u64`/`from_seed` in a
/// deterministic crate must trace back to a seed value or the
/// `RngTree`. Constructor impls (`RngTree`, `SimRng`) are the
/// derivation machinery itself and exempt.
fn sl204_rng_provenance(
    path: &str,
    tree: &FileTree,
    f: &FnItem,
    syms: &Symbols,
    skip: &dyn Fn(usize) -> bool,
    out: &mut SemanticScan,
) {
    if matches!(f.impl_of.as_deref(), Some("RngTree" | "SimRng")) {
        return;
    }
    let toks = &tree.toks;
    let limit = f.end.min(toks.len().saturating_sub(1));
    for k in f.start..=limit {
        if skip(k) {
            continue;
        }
        let t = &toks[k];
        if t.kind != TokKind::Ident
            || t.text != "seed_from_u64" && t.text != "from_seed"
            || !toks.get(k + 1).is_some_and(|t| t.is_punct("("))
        {
            continue;
        }
        let close = match_delim(toks, k + 1);
        let args = &toks[k + 2..close.min(toks.len())];
        let derived = args.iter().any(|a| {
            a.kind == TokKind::Ident
                && (a.text.to_lowercase().contains("seed")
                    || a.text == "RngTree"
                    || a.text == "stream"
                    || a.text == "fork"
                    || a.text == "subtree"
                    || syms.prov_at(&a.text, k) == Some(&Prov::Seeded))
        });
        if !derived {
            out.diagnostics.push(SourceDiagnostic {
                code: "SL204",
                severity: "error",
                path: path.to_owned(),
                line: t.line,
                message: format!(
                    "`{}` seeded from a value with no seed provenance: derive seeds \
                     from the run seed or an RngTree stream so every result is \
                     reproducible from the root seed alone",
                    t.text
                ),
            });
        }
    }
}

/// SL205: scope-aware re-implementation of the SL108/SL110 guard
/// checks. A guard token excuses a risky call only when it *dominates*
/// it — same block or an enclosing one, no later than the call — so a
/// guard inside a sibling branch three lines up no longer counts.
/// Guards are found two ways: identifier tokens (e.g.
/// `set_nonblocking`, `recv_timeout`, `shutdown`) and raw source
/// lines (comments and string literals, e.g. thread-name strings),
/// placed in the tree by line span.
fn sl205_scope_guards(
    path: &str,
    tree: &FileTree,
    f: &FnItem,
    raw: &[&str],
    skip: &dyn Fn(usize) -> bool,
    out: &mut SemanticScan,
) {
    let toks = &tree.toks;
    let limit = f.end.min(toks.len().saturating_sub(1));
    let guarded = |c: usize, guards: &[&str]| {
        let call_line = toks[c].line;
        // Identifier path: any dominating token carrying a guard word.
        let tok_hit = (f.start..=c).any(|g| {
            !skip(g)
                && toks[g].kind == TokKind::Ident
                && {
                    let lower = toks[g].text.to_lowercase();
                    guards.iter().any(|w| lower.contains(w))
                }
                && tree.dominates(g, c)
        });
        if tok_hit {
            return true;
        }
        // Raw-line path: comments and string literals count, placed
        // into the innermost block spanning their line.
        (f.start_line..=call_line).any(|ln| {
            raw.get(ln - 1).is_some_and(|l| {
                let lower = l.to_lowercase();
                guards.iter().any(|w| lower.contains(w))
            }) && tree.is_ancestor_or_self(
                tree.block_at_line(ln, f.start, f.end),
                tree.block_of(c),
            )
        })
    };
    for k in f.start..=limit {
        if skip(k) {
            continue;
        }
        let t = &toks[k];
        if t.kind != TokKind::Ident || !toks.get(k + 1).is_some_and(|p| p.is_punct("(")) {
            continue;
        }
        let is_read = SL205_READS.contains(&t.text.as_str())
            && (t.text == "read_frame" || k > 0 && toks[k - 1].is_punct("."));
        let is_spawn = t.text == "spawn"
            && k > 0
            && (toks[k - 1].is_punct(".") || toks[k - 1].is_punct("::"));
        if is_read && !guarded(k, &LIVENESS_GUARDS) {
            out.diagnostics.push(SourceDiagnostic {
                code: "SL205",
                severity: "warning",
                path: path.to_owned(),
                line: t.line,
                message: format!(
                    "blocking `{}()` with no liveness guard in scope: a \
                     timeout/deadline, nonblocking setup or shutdown check must \
                     dominate this call (same or enclosing block, no later) — a \
                     guard in a sibling branch does not govern it",
                    t.text
                ),
            });
        }
        if is_spawn && !guarded(k, &LIFECYCLE_GUARDS) {
            out.diagnostics.push(SourceDiagnostic {
                code: "SL205",
                severity: "warning",
                path: path.to_owned(),
                line: t.line,
                message: "thread spawn with no lifecycle token in scope: only named \
                          startup threads (worker/scheduler/shard/event-loop) may be \
                          created in the serving layer, and the token must dominate \
                          the spawn, not merely sit nearby"
                    .to_owned(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serve_scan(source: &str) -> SemanticScan {
        scan_semantic("crates/serve/src/x.rs", source, false)
    }

    fn codes(scan: &SemanticScan) -> Vec<&'static str> {
        scan.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn sl201_flags_opposite_lock_orders() {
        let scan = serve_scan(
            "fn push(a: &M, b: &M) {\n    let ga = a.lock().unwrap();\n    let gb = b.lock().unwrap();\n}\nfn steal(a: &M, b: &M) {\n    let gb = b.lock().unwrap();\n    let ga = a.lock().unwrap();\n}\n",
        );
        let conflicts = lock_conflicts(&scan.lock_pairs);
        assert_eq!(conflicts.len(), 1, "{conflicts:?}");
        assert_eq!(conflicts[0].0.code, "SL201");
        assert_eq!(conflicts[0].1, ("a".to_owned(), "b".to_owned()));
        // A consistent order is clean.
        let ordered = serve_scan(
            "fn push(a: &M, b: &M) {\n    let ga = a.lock().unwrap();\n    let gb = b.lock().unwrap();\n}\nfn steal(a: &M, b: &M) {\n    let ga = a.lock().unwrap();\n    let gb = b.lock().unwrap();\n}\n",
        );
        assert!(lock_conflicts(&ordered.lock_pairs).is_empty());
    }

    #[test]
    fn sl202_fires_on_recv_under_a_guard_and_respects_drop() {
        let scan = serve_scan(
            "fn f(q: &M, rx: &Rx) {\n    let g = q.lock().unwrap();\n    let msg = rx.recv_timeout(TICK);\n}\n",
        );
        assert_eq!(codes(&scan), ["SL202"], "{:?}", scan.diagnostics);
        let dropped = serve_scan(
            "fn f(q: &M, rx: &Rx) {\n    let g = q.lock().unwrap();\n    drop(g);\n    let msg = rx.recv_timeout(TICK);\n}\n",
        );
        assert!(codes(&dropped).is_empty(), "{:?}", dropped.diagnostics);
    }

    #[test]
    fn sl203_flags_unbounded_channels_and_dropped_receivers() {
        let scan = serve_scan(
            "fn f() {\n    let (tx, _) = mpsc::channel::<u8>();\n    tx.send(1).ok();\n}\n",
        );
        let c = codes(&scan);
        assert!(c.contains(&"SL203"), "{:?}", scan.diagnostics);
        // Unbounded AND receiver-dropped: two findings on the channel.
        assert_eq!(c.iter().filter(|c| **c == "SL203").count(), 2);
        let bounded = serve_scan(
            "fn f() {\n    let (tx, rx) = mpsc::sync_channel(8);\n    tx.send(1).ok();\n    let _ = rx.recv_timeout(TICK);\n}\n",
        );
        assert!(codes(&bounded).is_empty(), "{:?}", bounded.diagnostics);
    }

    #[test]
    fn sl204_requires_seed_provenance() {
        let det = |src: &str| scan_semantic("crates/sim/src/x.rs", src, true);
        let bad = det("fn f() {\n    let rng = SimRng::seed_from_u64(12345);\n}\n");
        assert_eq!(codes(&bad), ["SL204"], "{:?}", bad.diagnostics);
        for good in [
            "fn f(seed: u64) {\n    let rng = SimRng::seed_from_u64(seed ^ 7);\n}\n",
            "fn f(tree: &RngTree) {\n    let rng = tree.stream(3);\n}\n",
            "impl SimRng {\n    fn new(v: u64) { Self::seed_from_u64(v) }\n}\n",
        ] {
            let scan = det(good);
            assert!(codes(&scan).is_empty(), "{good:?}: {:?}", scan.diagnostics);
        }
    }

    #[test]
    fn sl205_requires_dominating_guards_not_nearby_lines() {
        // The 3-line-window blind spot: a guard inside a *sibling*
        // branch sits 2 lines above the call and fools SL108, but it
        // does not dominate the accept.
        let blind = serve_scan(
            "fn f(l: &L, x: bool) {\n    if x {\n        l.set_nonblocking(true).ok();\n    }\n    let c = l.accept();\n}\n",
        );
        assert_eq!(codes(&blind), ["SL205"], "{:?}", blind.diagnostics);
        // The same guard hoisted to the enclosing block dominates.
        let hoisted = serve_scan(
            "fn f(l: &L, x: bool) {\n    l.set_nonblocking(true).ok();\n    let c = l.accept();\n}\n",
        );
        assert!(codes(&hoisted).is_empty(), "{:?}", hoisted.diagnostics);
        // Raw-line path: a comment at function scope counts...
        let comment = serve_scan(
            "fn f(rx: &Rx) {\n    // Bounded by the caller-armed read timeout.\n    let m = rx.recv();\n}\n",
        );
        assert!(codes(&comment).is_empty(), "{:?}", comment.diagnostics);
        // ...and a thread-name string dominates its own spawn chain.
        let named = serve_scan(
            "fn f() {\n    let h = std::thread::Builder::new()\n        .name(\"strent-serve-shard-0\".to_owned())\n        .spawn(run);\n}\n",
        );
        assert!(codes(&named).is_empty(), "{:?}", named.diagnostics);
        let bare = serve_scan("fn f() {\n    let h = std::thread::spawn(run);\n}\n");
        assert_eq!(codes(&bare), ["SL205"], "{:?}", bare.diagnostics);
    }

    #[test]
    fn sl107_provenance_tracks_handles_through_bindings() {
        let det = |src: &str| scan_semantic("crates/sim/src/x.rs", src, true);
        // Via a binding: the old text rule is blind to this.
        let bound = det(
            "fn f() {\n    let h = std::thread::spawn(work);\n    let r = h.join();\n    let stats = r.unwrap();\n}\n",
        );
        assert_eq!(codes(&bound), ["SL107"], "{:?}", bound.diagnostics);
        // Direct chain on a known handle.
        let direct = det(
            "fn f() {\n    let h = std::thread::spawn(work);\n    let stats = h.join().unwrap();\n}\n",
        );
        assert_eq!(codes(&direct), ["SL107"], "{:?}", direct.diagnostics);
        // A known Path receiver is claimed clean, never fired on.
        let path = det(
            "fn f(dir: &Path) {\n    let p = dir.join(\"x\");\n    let text = p.to_str().unwrap();\n}\n",
        );
        assert!(codes(&path).is_empty(), "{:?}", path.diagnostics);
        assert!(path.sl107_claimed.contains(&2));
        // Matching the Err is the approved pattern: no unwrap, no fire.
        let matched = det(
            "fn f() {\n    let h = std::thread::spawn(work);\n    if let Err(p) = h.join() {\n        std::panic::resume_unwind(p);\n    }\n}\n",
        );
        assert!(codes(&matched).is_empty(), "{:?}", matched.diagnostics);
    }
}
