//! Fixture: seeded HashMap iteration — the canonical determinism bug.
//! Even with a fixed simulation seed, `HashMap` iteration order varies
//! per process (SipHash keys are randomized), so the fold below visits
//! components in a different order every run.

use std::collections::HashMap;

pub fn component_phase_sum(seed: u64) -> f64 {
    let mut phases: HashMap<u64, f64> = HashMap::new();
    for i in 0..16 {
        phases.insert(i, (seed.wrapping_add(i) % 255) as f64);
    }
    let mut sum = 0.0;
    for (_, phase) in &phases {
        sum += phase; // order-dependent float accumulation
    }
    sum
}
