//! Fixture: ambient RNG — randomness must flow from the seeded tree,
//! never from thread-local or OS entropy.

pub fn jitter_sample() -> f64 {
    let mut rng = thread_rng();
    rng.gen::<f64>()
}
