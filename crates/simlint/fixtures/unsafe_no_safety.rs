//! Fixture: an `unsafe` block with no SAFETY comment (fires SL105),
//! next to a properly documented one (does not fire).

pub fn undocumented(values: &[u64], index: usize) -> u64 {
    unsafe { *values.get_unchecked(index) }
}

pub fn documented(values: &[u64], index: usize) -> u64 {
    assert!(index < values.len());
    // SAFETY: the assert above guarantees `index` is in bounds.
    unsafe { *values.get_unchecked(index) }
}
