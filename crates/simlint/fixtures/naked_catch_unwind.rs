//! SL111 fixture: a bare `catch_unwind` in the serving layer with no
//! supervision discipline nearby. The caught panic is swallowed — the
//! unit neither comes back nor tells anyone it died, which is exactly
//! the silently-dead-thread failure this rule retires.

fn run_once(job: impl FnOnce() + std::panic::UnwindSafe) {
    let outcome = std::panic::catch_unwind(job);
    if outcome.is_err() {
        // The panic payload vanishes here; nothing repairs the unit.
    }
}
