//! Fixture: a lock pair acquired in both orders (SL201). Scanned as
//! `crates/serve/src/lock_order.rs` by the self-test. The push path
//! takes local-then-peer, the steal path peer-then-local — the classic
//! work-stealing deadlock: two shards running both paths against each
//! other block forever.

use std::collections::VecDeque;
use std::sync::Mutex;

pub struct Shard {
    queue: Mutex<VecDeque<u64>>,
}

pub fn push_local_then_peer(local: &Shard, peer: &Shard) {
    let mut mine = local.queue.lock().unwrap();
    let mut theirs = peer.queue.lock().unwrap();
    if let Some(job) = mine.pop_back() {
        theirs.push_back(job);
    }
}

pub fn steal_peer_then_local(local: &Shard, peer: &Shard) {
    let mut theirs = peer.queue.lock().unwrap();
    let mut mine = local.queue.lock().unwrap();
    if let Some(job) = theirs.pop_front() {
        mine.push_back(job);
    }
}
