//! Fixture: float reduction over an unordered iterator. Float addition
//! is not associative, so summation order changes the result bits.

use std::collections::BTreeMap;

pub fn mean_period(periods: &BTreeMap<String, f64>) -> f64 {
    let total: f64 = periods.values().sum::<f64>();
    total / periods.len() as f64
}
