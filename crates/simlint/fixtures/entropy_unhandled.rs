//! SL112 fixture: the serving layer consumes an entropy estimate with
//! no acknowledgement of the estimator's typed no-verdict case. An
//! underfed window means "no estimate yet", never "zero entropy" — a
//! consumer that conflates the two demotes every freshly started or
//! re-locked source for having served too few bytes.

fn weight_for(slot: &PooledSource, threshold: u64) -> u64 {
    let verdict = slot.estimator.entropy_rate();
    // An absent verdict is scored as zero entropy: the underfed window
    // of a freshly re-locked source demotes it instantly.
    match verdict.map_or(0, |h| u64::from(h.millibits())) {
        h if h < threshold => 1,
        _ => 4,
    }
}
