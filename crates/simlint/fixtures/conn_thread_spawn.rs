//! Fixture: per-connection thread spawns in the serving layer (SL110).
//! Scanned as `crates/serve/src/conn_thread_spawn.rs` by the self-test.

fn accept_loop(listener: std::os::unix::net::UnixListener) {
    for stream in listener.incoming().flatten() {
        // The retired design: one thread per accepted connection, with
        // no lifecycle naming anywhere near the spawn.
        std::thread::spawn(move || handle(stream));
    }
}

fn handle_builder(stream: std::os::unix::net::UnixStream) {
    let builder = std::thread::Builder::new();
    let _ = builder.spawn(move || handle(stream));
}

fn handle(_stream: std::os::unix::net::UnixStream) {}
