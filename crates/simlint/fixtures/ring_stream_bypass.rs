//! Fixture: direct ring construction bypassing the backend selector
//! (SL109). Scanned as `crates/serve/src/ring_stream_bypass.rs` by the
//! self-test.

fn build_raw(config: &StreamConfig, board: &Board, seed: u64) -> Result<RingStream, RingError> {
    // Ignores the spec's SourceBackend request and every fallback rule.
    RingStream::build(config, board, seed, None)
}
