//! Fixture: a mutex guard held across a blocking call (SL202).
//! Scanned as `crates/serve/src/guard_across_block.rs` by the
//! self-test. The guard stays live while the thread parks in
//! `recv_timeout`, so every other thread contending for the queue
//! stalls with it.

use std::collections::VecDeque;
use std::sync::mpsc::Receiver;
use std::sync::Mutex;
use std::time::Duration;

pub fn drain_under_lock(queue: &Mutex<VecDeque<u64>>, rx: &Receiver<u64>) {
    let mut held = queue.lock().unwrap();
    if let Ok(job) = rx.recv_timeout(Duration::from_millis(5)) {
        held.push_back(job);
    }
}
