//! Fixture: a crate root with no unsafe code anywhere and no
//! `#![forbid(unsafe_code)]` gate — fires SL106.

pub fn safe_but_ungated() -> u32 {
    42
}
