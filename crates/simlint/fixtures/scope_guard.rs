//! Fixture: the 3-line-window blind spot (SL205). Scanned as
//! `crates/serve/src/scope_guard.rs` by the self-test.
//!
//! The guard sits two raw lines above the risky call — close enough to
//! satisfy SL108's proximity window — but it lives in a *sibling*
//! branch, so on the path where `probe` is false nothing governs the
//! accept. Scope-aware checking requires the guard to dominate the
//! call in the block tree and fires here.

use std::os::unix::net::UnixListener;

pub fn accept_with_a_sibling_guard(listener: &UnixListener, probe: bool) {
    if probe {
        listener.set_nonblocking(true).ok();
    }
    let _ = listener.accept();
}
