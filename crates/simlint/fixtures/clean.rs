//! Fixture: exercises every escape hatch and must stay quiet.
//! HashMap in comments, strings and `#[cfg(test)]` regions; an inline
//! allow directive; a SAFETY-documented unsafe block.

pub fn describe() -> &'static str {
    // A HashMap mentioned in a comment never fires.
    "uses HashMap and Instant::now only in this string"
}

pub fn vetted_wall_clock_stat() -> u128 {
    // simlint: allow(SL102) wall-clock progress stat, not simulation state
    std::time::Instant::now().elapsed().as_nanos()
}

pub fn derived_stream(run_seed: u64) -> SimRng {
    // Seed material flows from the run seed: SL204 accepts provenance
    // through the binding chain.
    let stream_seed = run_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    SimRng::seed_from_u64(stream_seed)
}

pub fn documented_unsafe(values: &[u64]) -> u64 {
    if values.is_empty() {
        return 0;
    }
    // SAFETY: emptiness checked above, so index 0 is in bounds.
    unsafe { *values.get_unchecked(0) }
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn tests_may_hash_and_time() {
        let mut seen = HashSet::new();
        seen.insert(std::time::Instant::now());
        assert_eq!(seen.len(), 1);
    }
}
