//! Fixture: wall-clock reads in deterministic code. Simulated time is
//! the only clock the hot path may consult.

use std::time::{Instant, SystemTime};

pub fn stamp_events() -> (Instant, SystemTime) {
    let started = Instant::now();
    let wall = SystemTime::now();
    (started, wall)
}
