//! Fixture: channel-topology violations (SL203). Scanned as
//! `crates/serve/src/channel_topology.rs` by the self-test.

use std::sync::mpsc;
use std::time::Duration;

pub fn unbounded_edge() {
    // Unbounded: a stalled consumer lets the queue grow without
    // limit — the serving layer's backpressure contract is bounded
    // sync_channel everywhere.
    let (tx, rx) = mpsc::channel::<u64>();
    tx.send(1).ok();
    let _ = rx.recv_timeout(Duration::from_millis(1));
}

pub fn send_into_the_void() {
    // The receiver is dropped in the pattern itself: every send on
    // this channel fails from the first one.
    let (tx, _) = mpsc::sync_channel::<u64>(8);
    let _ = tx.send(7);
}
