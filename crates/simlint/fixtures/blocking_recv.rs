//! Fixture: unguarded blocking reads in the serving layer (SL108).
//! Scanned as `crates/serve/src/blocking_recv.rs` by the self-test.

fn drain(rx: &std::sync::mpsc::Receiver<u8>) -> u8 {
    // No deadline anywhere near: a dead producer pins this thread.
    rx.recv().unwrap_or(0)
}

fn accept_one(listener: &std::os::unix::net::UnixListener) {
    let _ = listener.accept();
}

fn slurp(stream: &mut impl std::io::Read) -> std::io::Result<[u8; 4]> {
    let mut buf = [0u8; 4];
    stream.read_exact(&mut buf)?;
    Ok(buf)
}
