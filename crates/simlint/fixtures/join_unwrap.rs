//! Fixture: bare unwrap/expect on `JoinHandle::join`. A worker panic
//! crossing this line loses its payload and its origin; production code
//! must match the `Err` and re-panic with shard/job context.

use std::thread;

pub fn swallow_worker_panics(workers: usize) -> Vec<u64> {
    let handles: Vec<thread::JoinHandle<u64>> =
        (0..workers).map(|i| thread::spawn(move || i as u64)).collect();
    handles
        .into_iter()
        .map(|handle| handle.join().expect("worker panicked"))
        .collect()
}

pub fn swallow_via_binding() -> u64 {
    let worker = std::thread::spawn(|| 7u64);
    let outcome = worker.join();
    // The old same-line heuristic is blind here: `.join()` and
    // `.unwrap()` never share a line. Receiver provenance tracks the
    // handle through the binding and still fires.
    outcome.unwrap()
}

pub fn path_joins_never_fire(root: &std::path::Path) -> String {
    // `Path::join` takes an argument — not the JoinHandle signature.
    root.join("scripts").join("ci.sh").to_str().unwrap().to_owned()
}
