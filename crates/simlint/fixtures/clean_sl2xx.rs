//! Fixture: every legitimate concurrency pattern the SL2xx rules must
//! accept. Scanned as `crates/serve/src/clean_sl2xx.rs` by the
//! self-test and must stay quiet under the full rule set, text and
//! semantic: consistently ordered lock pairs, a guard dropped before
//! blocking, bounded channels with both ends alive, a named startup
//! spawn, a dominating nonblocking setup, and a matched join.

use std::collections::VecDeque;
use std::os::unix::net::UnixListener;
use std::sync::{mpsc, Mutex};
use std::time::Duration;

pub struct Shard {
    queue: Mutex<VecDeque<u64>>,
}

pub fn push_local_then_peer(local: &Shard, peer: &Shard) {
    let mut mine = local.queue.lock().unwrap();
    let mut theirs = peer.queue.lock().unwrap();
    if let Some(job) = mine.pop_back() {
        theirs.push_back(job);
    }
}

pub fn rebalance_in_the_same_order(local: &Shard, peer: &Shard) {
    let mut mine = local.queue.lock().unwrap();
    let mut theirs = peer.queue.lock().unwrap();
    if let Some(job) = theirs.pop_front() {
        mine.push_back(job);
    }
}

pub fn drop_the_guard_before_blocking(queue: &Mutex<VecDeque<u64>>, rx: &mpsc::Receiver<u64>) {
    let mut held = queue.lock().unwrap();
    held.push_back(0);
    drop(held);
    if let Ok(job) = rx.recv_timeout(Duration::from_millis(5)) {
        queue.lock().unwrap().push_back(job);
    }
}

pub fn bounded_round_trip() -> Option<u64> {
    let (tx, rx) = mpsc::sync_channel::<u64>(8);
    tx.send(9).ok();
    rx.recv_timeout(Duration::from_millis(1)).ok()
}

pub fn start_worker() -> std::io::Result<std::thread::JoinHandle<()>> {
    std::thread::Builder::new()
        .name("strent-serve-worker-0".to_owned())
        .spawn(|| {})
}

pub fn accept_ready(listener: &UnixListener) {
    listener.set_nonblocking(true).ok();
    while let Ok((stream, _)) = listener.accept() {
        drop(stream);
    }
}

pub fn reap(worker: std::thread::JoinHandle<u64>) -> u64 {
    match worker.join() {
        Ok(value) => value,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}
