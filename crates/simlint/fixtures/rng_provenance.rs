//! Fixture: RNG state built from a magic constant instead of the run
//! seed (SL204). Scanned as `crates/sim/src/rng_provenance.rs` by the
//! self-test. Def-use tracking follows the constant through the
//! binding: neither call site derives from the run seed or an RngTree
//! stream, so neither result is reproducible from the root seed alone.

pub fn hardcoded_stream() -> SimRng {
    SimRng::seed_from_u64(0xD00D_F00D)
}

pub fn laundered_through_a_binding() -> SimRng {
    let magic = 0xCAFE_BABE_u64;
    SimRng::seed_from_u64(magic.rotate_left(13))
}
