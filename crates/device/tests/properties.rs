//! Property-based tests for the device model.

use proptest::prelude::*;

use strent_device::{
    scaling, BoardFarm, ProcessVariation, RoutingModel, Supply, Technology,
};

proptest! {
    /// Transistor delay factor is strictly decreasing in voltage over the
    /// operating range, for any plausible (vth, alpha) profile.
    #[test]
    fn transistor_factor_is_monotone(v1 in 0.9_f64..1.39, dv in 0.001_f64..0.4) {
        let tech = Technology::cyclone_iii();
        let v2 = (v1 + dv).min(1.4);
        prop_assume!(v2 > v1);
        let f1 = scaling::transistor_factor(&tech, v1);
        let f2 = scaling::transistor_factor(&tech, v2);
        prop_assert!(f2 < f1, "delay factor must fall with voltage");
    }

    /// The interconnect factor always lies between the fixed-RC floor and
    /// the transistor factor.
    #[test]
    fn interconnect_factor_is_a_blend(v in 0.9_f64..1.4, rc in 0.0_f64..=1.0) {
        let tech = Technology::cyclone_iii().with_interconnect_rc_fraction(rc);
        let t = scaling::transistor_factor(&tech, v);
        let i = scaling::interconnect_factor(&tech, v);
        let (lo, hi) = if t < 1.0 { (t, 1.0) } else { (1.0, t) };
        prop_assert!(i >= lo - 1e-12 && i <= hi + 1e-12, "i={i} not in [{lo},{hi}]");
    }

    /// Routing interpolation is bounded by its calibration values and
    /// monotone between two points.
    #[test]
    fn routing_interpolation_is_bounded(
        y0 in 0.0_f64..500.0,
        y1 in 0.0_f64..500.0,
        len in 4_u32..96,
    ) {
        let model = RoutingModel::from_points(&[(4, y0), (96, y1)]);
        let v = model.overhead_ps(len);
        let (lo, hi) = if y0 <= y1 { (y0, y1) } else { (y1, y0) };
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    /// Process factors are reproducible and respect the 0.5 floor.
    #[test]
    fn process_factors_are_stable(seed in any::<u64>(), cell in 0_u64..10_000) {
        let tech = Technology::cyclone_iii();
        let p1 = ProcessVariation::for_board(&tech, seed);
        let p2 = ProcessVariation::for_board(&tech, seed);
        prop_assert_eq!(p1.cell_factor(cell), p2.cell_factor(cell));
        prop_assert!(p1.cell_factor(cell) >= 0.5);
        prop_assert!(p1.total_factor(cell) > 0.0);
    }

    /// Static cell delay is positive and finite for any in-range operating
    /// point, any cell, any board.
    #[test]
    fn cell_delay_is_well_formed(
        seed in any::<u64>(),
        cell in 0_u64..256,
        v in 0.9_f64..1.45,
        routing in 0.0_f64..500.0,
    ) {
        let farm = BoardFarm::new(Technology::cyclone_iii(), 1, seed);
        let lut = farm.board(0).lut_with_routing(cell, routing);
        let d = lut.static_delay_ps(&Supply::dc(v), 0.0);
        prop_assert!(d.is_finite() && d > 0.0);
    }

    /// A sine supply never leaves the band [dc - a, dc + a].
    #[test]
    fn sine_supply_is_bounded(
        a in 0.0_f64..0.2,
        f in 0.01_f64..100.0,
        t in 0.0_f64..1e9,
    ) {
        let s = Supply::sine(1.2, a, f);
        let v = s.voltage_at(t);
        prop_assert!(v >= 1.2 - a - 1e-12 && v <= 1.2 + a + 1e-12);
    }
}
