//! The per-stage delay model: one placed LUT cell plus its output routing.

use serde::{Deserialize, Serialize};
use strent_sim::SimRng;

use crate::scaling::ScalingParams;
use crate::supply::Supply;

/// A placed LUT cell with its share of output interconnect.
///
/// The cell's propagation delay decomposes into a **transistor** part
/// (the LUT itself; full voltage sensitivity) and an **interconnect**
/// part (the routing to the next stage; partially fixed RC). Both parts
/// carry the cell's frozen process factor; every *sampled* traversal adds
/// fresh local Gaussian jitter of sigma `sigma_g` — the paper's entropy
/// source.
///
/// Cells are created by [`Board::lut`] / [`Board::lut_with_routing`].
///
/// [`Board::lut`]: crate::Board::lut
/// [`Board::lut_with_routing`]: crate::Board::lut_with_routing
///
/// # Examples
///
/// ```
/// use strent_device::{BoardFarm, Supply, Technology};
/// use strent_sim::RngTree;
///
/// let farm = BoardFarm::new(Technology::cyclone_iii(), 1, 7);
/// let cell = farm.board(0).lut(0);
/// let supply = Supply::default();
/// let d_static = cell.static_delay_ps(&supply, 0.0);
/// let mut rng = RngTree::new(1).stream(0);
/// let d_noisy = cell.sample_delay_ps(&supply, 0.0, &mut rng);
/// // Jitter is small compared to the static delay (~2 ps vs ~255 ps).
/// assert!((d_noisy - d_static).abs() < 10.0 * cell.sigma_g_ps());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LutCell {
    index: u64,
    transistor_ps: f64,
    interconnect_ps: f64,
    sigma_g_ps: f64,
    temp_c: f64,
    scaling: ScalingParams,
}

impl LutCell {
    pub(crate) fn new(
        index: u64,
        transistor_ps: f64,
        interconnect_ps: f64,
        sigma_g_ps: f64,
        temp_c: f64,
        scaling: ScalingParams,
    ) -> Self {
        debug_assert!(transistor_ps > 0.0 && interconnect_ps >= 0.0 && sigma_g_ps >= 0.0);
        LutCell {
            index,
            transistor_ps,
            interconnect_ps,
            sigma_g_ps,
            temp_c,
            scaling,
        }
    }

    /// The cell's placement index on its board.
    #[must_use]
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Process-adjusted transistor delay at nominal conditions, ps.
    #[must_use]
    pub fn transistor_ps(&self) -> f64 {
        self.transistor_ps
    }

    /// Process-adjusted interconnect delay at nominal conditions, ps.
    #[must_use]
    pub fn interconnect_ps(&self) -> f64 {
        self.interconnect_ps
    }

    /// Local jitter standard deviation per traversal, ps.
    #[must_use]
    pub fn sigma_g_ps(&self) -> f64 {
        self.sigma_g_ps
    }

    /// The die temperature this cell operates at, Celsius.
    #[must_use]
    pub fn temp_c(&self) -> f64 {
        self.temp_c
    }

    /// The voltage/temperature scaling parameters this cell uses —
    /// exposed so higher-level models (e.g. the Charlie term of a Muller
    /// stage) can scale their own delay contributions consistently.
    #[must_use]
    pub fn scaling(&self) -> ScalingParams {
        self.scaling
    }

    /// The process factor frozen into this cell, relative to the
    /// technology's nominal LUT delay.
    #[must_use]
    pub fn process_factor(&self, nominal_lut_delay_ps: f64) -> f64 {
        self.transistor_ps / nominal_lut_delay_ps
    }

    /// Deterministic (noise-free) propagation delay at simulation time
    /// `t_ps` under the given supply, in picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if the supply voltage at `t_ps` does not exceed the
    /// threshold voltage.
    #[must_use]
    pub fn static_delay_ps(&self, supply: &Supply, t_ps: f64) -> f64 {
        let v = supply.voltage_at(t_ps);
        let temp = self.scaling.temperature_factor(self.temp_c);
        temp * (self.transistor_ps * self.scaling.transistor_factor(v)
            + self.interconnect_ps * self.scaling.interconnect_factor(v))
    }

    /// Deterministic propagation delay from precomputed voltage factors,
    /// in picoseconds.
    ///
    /// `transistor` and `interconnect` must come from this cell's own
    /// [`ScalingParams::voltage_factors`]; the arithmetic then matches
    /// [`static_delay_ps`] bit for bit while skipping the per-call
    /// alpha-power evaluation. This is the memo-refill path of every
    /// ring stage.
    ///
    /// [`static_delay_ps`]: LutCell::static_delay_ps
    /// [`ScalingParams::voltage_factors`]: crate::scaling::ScalingParams::voltage_factors
    #[inline]
    #[must_use]
    pub fn static_delay_from_factors(&self, transistor: f64, interconnect: f64) -> f64 {
        let temp = self.scaling.temperature_factor(self.temp_c);
        temp * (self.transistor_ps * transistor + self.interconnect_ps * interconnect)
    }

    /// One stochastic traversal: the static delay plus a fresh local
    /// Gaussian jitter sample. Clamped to stay positive (a traversal can
    /// never complete before it starts).
    ///
    /// # Panics
    ///
    /// Panics if the supply voltage at `t_ps` does not exceed the
    /// threshold voltage.
    pub fn sample_delay_ps(&self, supply: &Supply, t_ps: f64, rng: &mut SimRng) -> f64 {
        let d = self.static_delay_ps(supply, t_ps) + rng.normal(0.0, self.sigma_g_ps);
        d.max(0.01)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::BoardFarm;
    use crate::tech::Technology;
    use strent_sim::RngTree;

    fn test_cell() -> LutCell {
        let farm = BoardFarm::new(Technology::cyclone_iii(), 1, 3);
        farm.board(0).lut_with_routing(0, 100.0)
    }

    #[test]
    fn static_delay_combines_parts() {
        let cell = test_cell();
        let supply = Supply::default();
        let d = cell.static_delay_ps(&supply, 0.0);
        // transistor + interconnect, within process variation of nominal.
        assert!((d / (cell.transistor_ps() + cell.interconnect_ps()) - 1.0).abs() < 1e-9);
        assert!((d / 355.0 - 1.0).abs() < 0.1, "delay {d}");
    }

    #[test]
    fn factor_based_delay_matches_supply_based_delay_exactly() {
        // The factors path feeds the per-stage delay memos; any bit of
        // drift from `static_delay_ps` would desynchronise cached and
        // uncached runs.
        let cell = test_cell();
        for &v in &[1.0, 1.05, 1.2, 1.33, 1.4] {
            let supply = Supply::dc(v);
            let (tf, inf) = cell.scaling().voltage_factors(v);
            assert_eq!(
                cell.static_delay_from_factors(tf, inf).to_bits(),
                cell.static_delay_ps(&supply, 0.0).to_bits()
            );
        }
    }

    #[test]
    fn voltage_moves_transistor_part_more() {
        let cell = test_cell();
        let nominal = cell.static_delay_ps(&Supply::default(), 0.0);
        let low = cell.static_delay_ps(&Supply::dc(1.0), 0.0);
        let high = cell.static_delay_ps(&Supply::dc(1.4), 0.0);
        assert!(low > nominal && nominal > high);
        // Sensitivity must be below a pure-transistor cell of equal size
        // (the interconnect part damps it).
        let pure = Technology::cyclone_iii();
        let pure_ratio = crate::scaling::transistor_factor(&pure, 1.0);
        assert!(low / nominal < pure_ratio);
    }

    #[test]
    fn sine_supply_modulates_delay_over_time() {
        let cell = test_cell();
        let supply = Supply::sine(1.2, 0.05, 1.0); // 1 MHz
        let quarter = 0.25e6; // ps
        let d_peak = cell.static_delay_ps(&supply, quarter);
        let d_trough = cell.static_delay_ps(&supply, 3.0 * quarter);
        assert!(d_peak < d_trough, "higher V -> faster");
    }

    #[test]
    fn samples_scatter_around_static() {
        let cell = test_cell();
        let supply = Supply::default();
        let d0 = cell.static_delay_ps(&supply, 0.0);
        let mut rng = RngTree::new(9).stream(0);
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| cell.sample_delay_ps(&supply, 0.0, &mut rng))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let sd = (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64)
            .sqrt();
        assert!((mean - d0).abs() < 0.1, "mean {mean} vs {d0}");
        assert!((sd - cell.sigma_g_ps()).abs() < 0.1, "sd {sd}");
    }

    #[test]
    fn sampled_delay_is_always_positive() {
        // Even with absurd jitter, a traversal takes positive time.
        let farm = BoardFarm::new(
            Technology::cyclone_iii().with_sigma_g_ps(10_000.0),
            1,
            3,
        );
        let cell = farm.board(0).lut(0);
        let mut rng = RngTree::new(1).stream(0);
        for _ in 0..1000 {
            assert!(cell.sample_delay_ps(&Supply::default(), 0.0, &mut rng) > 0.0);
        }
    }
}
