//! Delay scaling with supply voltage and temperature.
//!
//! Transistor propagation delay follows the alpha-power law
//! `d(V) ∝ V / (V - Vth)^alpha` (Sakurai–Newton), normalized so the factor
//! is 1 at the nominal voltage. Interconnect delay is modelled as a blend:
//! a fixed-RC share that does not move with voltage plus a drive-dependent
//! share that scales like transistor delay. This split is what lets long
//! (interconnect-heavy) STRs track voltage less than IROs — the mechanism
//! behind Table I of the paper.

use serde::{Deserialize, Serialize};

use crate::tech::Technology;

/// Raw (un-normalized) alpha-power-law delay, arbitrary units.
fn alpha_power(v: f64, vth: f64, alpha: f64) -> f64 {
    v / (v - vth).powf(alpha)
}

/// The compact, copyable subset of [`Technology`] needed to scale a delay
/// with voltage and temperature. Embedded in every
/// [`LutCell`](crate::LutCell) so cells stay self-contained.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingParams {
    vth: f64,
    alpha: f64,
    rc_fraction: f64,
    v_nominal: f64,
    temp_coeff: f64,
    temp_nominal: f64,
}

impl ScalingParams {
    /// Multiplicative transistor delay factor at supply `v` volts,
    /// normalized to 1 at the nominal voltage.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not exceed the threshold voltage (the cell
    /// would not switch at all).
    #[must_use]
    pub fn transistor_factor(&self, v: f64) -> f64 {
        assert!(
            v.is_finite() && v > self.vth,
            "supply voltage {v} V must exceed the threshold {} V",
            self.vth
        );
        alpha_power(v, self.vth, self.alpha) / alpha_power(self.v_nominal, self.vth, self.alpha)
    }

    /// Multiplicative interconnect delay factor at supply `v` volts.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not exceed the threshold voltage.
    #[must_use]
    pub fn interconnect_factor(&self, v: f64) -> f64 {
        self.rc_fraction + (1.0 - self.rc_fraction) * self.transistor_factor(v)
    }

    /// Multiplicative delay factor at `temp_c` degrees Celsius (linear
    /// model, 1 at the nominal temperature).
    #[must_use]
    pub fn temperature_factor(&self, temp_c: f64) -> f64 {
        1.0 + self.temp_coeff * (temp_c - self.temp_nominal)
    }

    /// Both voltage factors at once: `(transistor, interconnect)`.
    ///
    /// Bit-identical to calling [`transistor_factor`] and
    /// [`interconnect_factor`] separately, but evaluates the alpha-power
    /// law once instead of twice. This is the refill path of the
    /// per-stage delay memos in the ring models (the supply is
    /// piecewise-constant in almost every experiment, so stages cache
    /// their scaled delays keyed on `v` and call this only when the
    /// voltage actually changes).
    ///
    /// # Panics
    ///
    /// Panics if `v` does not exceed the threshold voltage.
    ///
    /// [`transistor_factor`]: ScalingParams::transistor_factor
    /// [`interconnect_factor`]: ScalingParams::interconnect_factor
    #[must_use]
    pub fn voltage_factors(&self, v: f64) -> (f64, f64) {
        let transistor = self.transistor_factor(v);
        let interconnect = self.rc_fraction + (1.0 - self.rc_fraction) * transistor;
        (transistor, interconnect)
    }
}

impl From<&Technology> for ScalingParams {
    fn from(tech: &Technology) -> Self {
        ScalingParams {
            vth: tech.threshold_voltage(),
            alpha: tech.alpha(),
            rc_fraction: tech.interconnect_rc_fraction(),
            v_nominal: tech.nominal_voltage(),
            temp_coeff: tech.temp_coeff_per_c(),
            temp_nominal: tech.nominal_temp_c(),
        }
    }
}

/// Multiplicative transistor delay factor at supply `v` volts,
/// normalized to 1 at the technology's nominal voltage.
///
/// # Panics
///
/// Panics if `v` does not exceed the threshold voltage (the cell would
/// not switch at all).
///
/// # Examples
///
/// ```
/// use strent_device::{scaling, Technology};
///
/// let tech = Technology::cyclone_iii();
/// let nominal = scaling::transistor_factor(&tech, 1.2);
/// assert!((nominal - 1.0).abs() < 1e-12);
/// assert!(scaling::transistor_factor(&tech, 1.0) > 1.0); // slower at low V
/// assert!(scaling::transistor_factor(&tech, 1.4) < 1.0); // faster at high V
/// ```
#[must_use]
pub fn transistor_factor(tech: &Technology, v: f64) -> f64 {
    ScalingParams::from(tech).transistor_factor(v)
}

/// Multiplicative interconnect delay factor at supply `v` volts.
///
/// A fraction [`Technology::interconnect_rc_fraction`] of the wire delay
/// is fixed RC; the rest follows [`transistor_factor`].
///
/// # Panics
///
/// Panics if `v` does not exceed the threshold voltage.
#[must_use]
pub fn interconnect_factor(tech: &Technology, v: f64) -> f64 {
    ScalingParams::from(tech).interconnect_factor(v)
}

/// Multiplicative delay factor at `temp_c` degrees Celsius (linear model,
/// 1 at the nominal temperature).
#[must_use]
pub fn temperature_factor(tech: &Technology, temp_c: f64) -> f64 {
    ScalingParams::from(tech).temperature_factor(temp_c)
}

/// Relative frequency excursion of a pure-transistor delay over a
/// voltage sweep: `(F(v_hi) - F(v_lo)) / F(v_nom)`.
///
/// Used by calibration tests to pin the ~50% excursion the paper reports
/// for IROs over 1.0 V..1.4 V.
#[must_use]
pub fn transistor_excursion(tech: &Technology, v_lo: f64, v_hi: f64) -> f64 {
    let f = |v: f64| 1.0 / transistor_factor(tech, v);
    (f(v_hi) - f(v_lo)) / f(tech.nominal_voltage())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_are_normalized_at_nominal() {
        let tech = Technology::cyclone_iii();
        let vn = tech.nominal_voltage();
        assert!((transistor_factor(&tech, vn) - 1.0).abs() < 1e-12);
        assert!((interconnect_factor(&tech, vn) - 1.0).abs() < 1e-12);
        assert!((temperature_factor(&tech, tech.nominal_temp_c()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delay_decreases_with_voltage() {
        let tech = Technology::cyclone_iii();
        let mut prev = f64::INFINITY;
        for i in 0..=8 {
            let v = 1.0 + 0.05 * f64::from(i);
            let f = transistor_factor(&tech, v);
            assert!(f < prev, "delay factor must fall as V rises");
            prev = f;
        }
    }

    #[test]
    fn voltage_factors_match_individual_calls_exactly() {
        // The fused path feeds the per-stage delay memos; it must agree
        // bit for bit with the two-call form or cached and uncached
        // runs diverge.
        let params = ScalingParams::from(&Technology::cyclone_iii());
        for i in 0..=80 {
            let v = 1.0 + 0.005 * f64::from(i);
            let (tf, inf) = params.voltage_factors(v);
            assert_eq!(tf.to_bits(), params.transistor_factor(v).to_bits());
            assert_eq!(inf.to_bits(), params.interconnect_factor(v).to_bits());
        }
    }

    #[test]
    fn interconnect_scales_less_than_transistor() {
        let tech = Technology::cyclone_iii();
        for &v in &[1.0, 1.1, 1.3, 1.4] {
            let t = transistor_factor(&tech, v);
            let i = interconnect_factor(&tech, v);
            // Interconnect moves in the same direction but by less.
            assert!((i - 1.0).abs() < (t - 1.0).abs());
            assert_eq!((i - 1.0).signum(), (t - 1.0).signum());
        }
    }

    #[test]
    fn calibrated_excursion_matches_paper_iros() {
        // Paper Table I: IROs show ~47-50% excursion over the 0.4 V sweep.
        let tech = Technology::cyclone_iii();
        let e = transistor_excursion(&tech, 1.0, 1.4);
        assert!((0.45..0.56).contains(&e), "excursion {e}");
    }

    #[test]
    fn frequency_is_nearly_linear_in_voltage() {
        // Fig. 8: "frequencies vary linearly with voltage".
        let tech = Technology::cyclone_iii();
        let f = |v: f64| 1.0 / transistor_factor(&tech, v);
        let mid = f(1.2);
        let interp = 0.5 * (f(1.0) + f(1.4));
        assert!(
            ((mid - interp) / mid).abs() < 0.02,
            "nonlinearity {}",
            ((mid - interp) / mid).abs()
        );
    }

    #[test]
    fn temperature_factor_is_linear() {
        let tech = Technology::cyclone_iii();
        assert!(temperature_factor(&tech, 85.0) > 1.0);
        assert!(temperature_factor(&tech, 0.0) < 1.0);
        let up = temperature_factor(&tech, 35.0) - 1.0;
        let down = 1.0 - temperature_factor(&tech, 15.0);
        assert!((up - down).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn sub_threshold_voltage_rejected() {
        let tech = Technology::cyclone_iii();
        let _ = transistor_factor(&tech, 0.3);
    }
}
