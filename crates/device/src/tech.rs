//! Technology profiles: every fabric constant in one place.

use serde::{Deserialize, Serialize};

use crate::routing::RoutingModel;

/// A complete set of fabric parameters.
///
/// The default profile, [`Technology::cyclone_iii`], is calibrated against
/// the paper's own measurements (see `DESIGN.md` §5). An
/// [`Technology::asic_like`] profile with a weaker Charlie effect and a
/// strong drafting effect is provided to reproduce burst-mode behaviour
/// (the paper's refs \[3\], \[4\] context).
///
/// # Examples
///
/// ```
/// use strent_device::Technology;
///
/// let tech = Technology::cyclone_iii();
/// assert_eq!(tech.nominal_voltage(), 1.2);
/// // Tweak a parameter for an ablation study:
/// let quiet = tech.with_sigma_g_ps(0.5);
/// assert_eq!(quiet.sigma_g_ps(), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    lut_delay_ps: f64,
    sigma_g_ps: f64,
    nominal_voltage: f64,
    threshold_voltage: f64,
    alpha: f64,
    interconnect_rc_fraction: f64,
    sigma_intra: f64,
    sigma_inter: f64,
    temp_coeff_per_c: f64,
    nominal_temp_c: f64,
    charlie_delay_ps: f64,
    drafting_delay_ps: f64,
    drafting_tau_ps: f64,
    flicker_rel_sigma: f64,
    flicker_tau_ps: f64,
    iro_routing: RoutingModel,
    str_routing: RoutingModel,
}

macro_rules! positive_setter {
    ($(#[$doc:meta])* $name:ident, $field:ident) => {
        $(#[$doc])*
        ///
        /// # Panics
        ///
        /// Panics if the value is negative or non-finite.
        #[must_use]
        pub fn $name(mut self, value: f64) -> Self {
            assert!(
                value.is_finite() && value >= 0.0,
                concat!(stringify!($field), " must be non-negative")
            );
            self.$field = value;
            self
        }
    };
}

impl Technology {
    /// The Cyclone-III-like profile the paper's boards are calibrated to.
    #[must_use]
    pub fn cyclone_iii() -> Self {
        Technology {
            // IRO 3C at ~648 MHz: T = 2*3*D  =>  D ~ 257 ps.
            lut_delay_ps: 255.0,
            // Fig. 11's own extraction.
            sigma_g_ps: 2.0,
            nominal_voltage: 1.2,
            threshold_voltage: 0.45,
            alpha: 1.6,
            // Interconnect: half fixed RC, half drive-strength dependent.
            interconnect_rc_fraction: 0.5,
            // Table II is consistent with sqrt(L) averaging of ~1.45%
            // per-cell i.i.d. variation.
            sigma_intra: 0.0145,
            sigma_inter: 0.002,
            temp_coeff_per_c: 0.001,
            nominal_temp_c: 25.0,
            // STR 4C at 653 MHz: T = 4*(Ds + Dcharlie) => Dcharlie ~ 128 ps.
            charlie_delay_ps: 128.0,
            // The paper finds drafting negligible in FPGAs.
            drafting_delay_ps: 0.0,
            drafting_tau_ps: 500.0,
            // The paper's model is white; flicker is an opt-in
            // extension (EXT-FLICKER).
            flicker_rel_sigma: 0.0,
            flicker_tau_ps: 1.0e6,
            // Calibrated per-stage interconnect overhead (DESIGN.md §5).
            iro_routing: RoutingModel::from_points(&[
                (3, 0.0),
                (5, 11.0),
                (25, 19.0),
                (80, 17.0),
            ]),
            str_routing: RoutingModel::from_points(&[
                (4, 0.0),
                (24, 194.0),
                (48, 230.0),
                (64, 294.0),
                (96, 398.0),
            ]),
        }
    }

    /// An ASIC-like profile: weaker Charlie effect, pronounced drafting
    /// effect, no length-dependent routing. Used to demonstrate burst-mode
    /// oscillation (refs \[3\], \[4\] of the paper).
    #[must_use]
    pub fn asic_like() -> Self {
        Technology {
            lut_delay_ps: 60.0,
            sigma_g_ps: 1.0,
            nominal_voltage: 1.2,
            threshold_voltage: 0.40,
            alpha: 1.5,
            interconnect_rc_fraction: 0.2,
            sigma_intra: 0.01,
            sigma_inter: 0.002,
            temp_coeff_per_c: 0.001,
            nominal_temp_c: 25.0,
            charlie_delay_ps: 5.0,
            drafting_delay_ps: 20.0,
            drafting_tau_ps: 150.0,
            flicker_rel_sigma: 0.0,
            flicker_tau_ps: 1.0e6,
            iro_routing: RoutingModel::none(),
            str_routing: RoutingModel::none(),
        }
    }

    /// Static LUT propagation delay at nominal conditions, picoseconds.
    #[must_use]
    pub fn lut_delay_ps(&self) -> f64 {
        self.lut_delay_ps
    }

    /// Standard deviation of the local Gaussian jitter added per stage
    /// crossing, picoseconds (the paper's `sigma_g`).
    #[must_use]
    pub fn sigma_g_ps(&self) -> f64 {
        self.sigma_g_ps
    }

    /// Nominal core supply voltage, volts.
    #[must_use]
    pub fn nominal_voltage(&self) -> f64 {
        self.nominal_voltage
    }

    /// Effective transistor threshold voltage, volts.
    #[must_use]
    pub fn threshold_voltage(&self) -> f64 {
        self.threshold_voltage
    }

    /// Alpha-power-law velocity-saturation exponent.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Fraction of interconnect delay that is fixed RC (voltage
    /// independent); the remainder scales like transistor delay.
    #[must_use]
    pub fn interconnect_rc_fraction(&self) -> f64 {
        self.interconnect_rc_fraction
    }

    /// Relative sigma of intra-die (per-cell) delay variation.
    #[must_use]
    pub fn sigma_intra(&self) -> f64 {
        self.sigma_intra
    }

    /// Relative sigma of inter-die (per-board) delay variation.
    #[must_use]
    pub fn sigma_inter(&self) -> f64 {
        self.sigma_inter
    }

    /// Linear delay temperature coefficient, per degree Celsius.
    #[must_use]
    pub fn temp_coeff_per_c(&self) -> f64 {
        self.temp_coeff_per_c
    }

    /// Temperature at which delays equal their nominal value, Celsius.
    #[must_use]
    pub fn nominal_temp_c(&self) -> f64 {
        self.nominal_temp_c
    }

    /// Charlie effect magnitude `Dcharlie`, picoseconds (Eq. 3).
    #[must_use]
    pub fn charlie_delay_ps(&self) -> f64 {
        self.charlie_delay_ps
    }

    /// Drafting effect magnitude, picoseconds (0 disables it).
    #[must_use]
    pub fn drafting_delay_ps(&self) -> f64 {
        self.drafting_delay_ps
    }

    /// Drafting effect decay constant, picoseconds.
    #[must_use]
    pub fn drafting_tau_ps(&self) -> f64 {
        self.drafting_tau_ps
    }

    /// Stationary relative sigma of the slow (flicker-like) delay
    /// modulation per stage (0 disables it — the paper's white model).
    #[must_use]
    pub fn flicker_rel_sigma(&self) -> f64 {
        self.flicker_rel_sigma
    }

    /// Correlation time of the flicker modulation, picoseconds.
    #[must_use]
    pub fn flicker_tau_ps(&self) -> f64 {
        self.flicker_tau_ps
    }

    /// Calibrated per-stage routing overhead for IRO placements.
    #[must_use]
    pub fn iro_routing(&self) -> &RoutingModel {
        &self.iro_routing
    }

    /// Calibrated per-stage routing overhead for STR placements.
    #[must_use]
    pub fn str_routing(&self) -> &RoutingModel {
        &self.str_routing
    }

    positive_setter! {
        /// Returns a copy with a different nominal LUT delay (ps).
        with_lut_delay_ps, lut_delay_ps
    }
    positive_setter! {
        /// Returns a copy with a different local jitter sigma (ps).
        with_sigma_g_ps, sigma_g_ps
    }
    positive_setter! {
        /// Returns a copy with a different Charlie magnitude (ps).
        with_charlie_delay_ps, charlie_delay_ps
    }
    positive_setter! {
        /// Returns a copy with a different drafting magnitude (ps).
        with_drafting_delay_ps, drafting_delay_ps
    }
    positive_setter! {
        /// Returns a copy with a different drafting decay constant (ps).
        with_drafting_tau_ps, drafting_tau_ps
    }
    positive_setter! {
        /// Returns a copy with a different flicker stationary sigma
        /// (relative; 0 disables).
        with_flicker_rel_sigma, flicker_rel_sigma
    }

    /// Returns a copy with a different flicker correlation time (ps).
    ///
    /// # Panics
    ///
    /// Panics unless the value is finite and positive.
    #[must_use]
    pub fn with_flicker_tau_ps(mut self, tau_ps: f64) -> Self {
        assert!(
            tau_ps.is_finite() && tau_ps > 0.0,
            "flicker tau must be positive, got {tau_ps}"
        );
        self.flicker_tau_ps = tau_ps;
        self
    }
    positive_setter! {
        /// Returns a copy with a different intra-die variation sigma.
        with_sigma_intra, sigma_intra
    }
    positive_setter! {
        /// Returns a copy with a different inter-die variation sigma.
        with_sigma_inter, sigma_inter
    }

    /// Returns a copy with a different IRO routing model.
    #[must_use]
    pub fn with_iro_routing(mut self, model: RoutingModel) -> Self {
        self.iro_routing = model;
        self
    }

    /// Returns a copy with a different STR routing model.
    #[must_use]
    pub fn with_str_routing(mut self, model: RoutingModel) -> Self {
        self.str_routing = model;
        self
    }

    /// Returns a copy with a different interconnect RC fraction.
    ///
    /// # Panics
    ///
    /// Panics unless the fraction lies in `[0, 1]`.
    #[must_use]
    pub fn with_interconnect_rc_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "RC fraction must be in [0,1], got {fraction}"
        );
        self.interconnect_rc_fraction = fraction;
        self
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::cyclone_iii()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclone_profile_is_calibrated() {
        let t = Technology::cyclone_iii();
        // IRO 3C: 1 / (2*3*255 ps) ~ 654 MHz.
        let f3 = 1e6 / (2.0 * 3.0 * t.lut_delay_ps());
        assert!((f3 - 653.6).abs() < 2.0, "IRO 3C freq {f3}");
        // STR 4C: 1 / (4*(255+128) ps) ~ 653 MHz.
        let f4 = 1e6 / (4.0 * (t.lut_delay_ps() + t.charlie_delay_ps()));
        assert!((f4 - 652.7).abs() < 3.0, "STR 4C freq {f4}");
        assert_eq!(t.drafting_delay_ps(), 0.0);
    }

    #[test]
    fn setters_replace_single_fields() {
        let t = Technology::cyclone_iii()
            .with_sigma_g_ps(3.0)
            .with_charlie_delay_ps(64.0)
            .with_interconnect_rc_fraction(0.25);
        assert_eq!(t.sigma_g_ps(), 3.0);
        assert_eq!(t.charlie_delay_ps(), 64.0);
        assert_eq!(t.interconnect_rc_fraction(), 0.25);
        // Untouched fields keep their calibration.
        assert_eq!(t.lut_delay_ps(), 255.0);
    }

    #[test]
    fn asic_profile_enables_drafting() {
        let t = Technology::asic_like();
        assert!(t.drafting_delay_ps() > 0.0);
        assert!(t.charlie_delay_ps() < Technology::cyclone_iii().charlie_delay_ps());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_setter_rejected() {
        let _ = Technology::cyclone_iii().with_sigma_g_ps(-1.0);
    }

    #[test]
    #[should_panic(expected = "RC fraction")]
    fn bad_rc_fraction_rejected() {
        let _ = Technology::cyclone_iii().with_interconnect_rc_fraction(1.5);
    }

    #[test]
    fn default_is_cyclone() {
        assert_eq!(Technology::default(), Technology::cyclone_iii());
    }
}
