//! Process (manufacturing) variation model.
//!
//! Delays vary between devices (inter-die) and between cells of one device
//! (intra-die). Table II of the paper is internally consistent with
//! i.i.d. per-cell variation of ~1.45% relative sigma averaged over the
//! ring length (see `DESIGN.md` §5), plus a small common inter-die shift.
//!
//! Variation draws are **deterministic in (board seed, cell index)**: the
//! same bitstream loaded into the same board always sees the same silicon.

use strent_sim::RngTree;

use crate::tech::Technology;

/// The frozen process-variation state of one device.
///
/// # Examples
///
/// ```
/// use strent_device::{ProcessVariation, Technology};
///
/// let tech = Technology::cyclone_iii();
/// let silicon = ProcessVariation::for_board(&tech, 41);
/// // Stable across queries...
/// assert_eq!(silicon.cell_factor(7), silicon.cell_factor(7));
/// // ...and close to 1 (a few percent of variation).
/// assert!((silicon.cell_factor(7) - 1.0).abs() < 0.10);
/// ```
#[derive(Debug, Clone)]
pub struct ProcessVariation {
    inter_die: f64,
    cells: RngTree,
    sigma_intra: f64,
}

impl ProcessVariation {
    /// Derives the silicon of the board with the given seed.
    #[must_use]
    pub fn for_board(tech: &Technology, board_seed: u64) -> Self {
        let tree = RngTree::new(board_seed);
        let mut die_rng = tree.stream(u64::MAX);
        let inter_die = (1.0 + die_rng.normal(0.0, tech.sigma_inter())).max(0.5);
        ProcessVariation {
            inter_die,
            cells: tree.subtree(0xCE11),
            sigma_intra: tech.sigma_intra(),
        }
    }

    /// The common multiplicative delay factor of this die.
    #[must_use]
    pub fn inter_die_factor(&self) -> f64 {
        self.inter_die
    }

    /// The intra-die multiplicative delay factor of cell `index`
    /// (excluding the inter-die factor). Deterministic per (board, cell).
    #[must_use]
    pub fn cell_factor(&self, index: u64) -> f64 {
        let mut rng = self.cells.stream(index);
        // Clamp far tails: a cell cannot be infinitely fast.
        (1.0 + rng.normal(0.0, self.sigma_intra)).max(0.5)
    }

    /// The combined (inter * intra) delay factor of cell `index`.
    #[must_use]
    pub fn total_factor(&self, index: u64) -> f64 {
        self.inter_die * self.cell_factor(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_are_deterministic_per_board_and_cell() {
        let tech = Technology::cyclone_iii();
        let a = ProcessVariation::for_board(&tech, 1);
        let b = ProcessVariation::for_board(&tech, 1);
        for cell in 0..32 {
            assert_eq!(a.cell_factor(cell), b.cell_factor(cell));
            assert_eq!(a.total_factor(cell), b.total_factor(cell));
        }
    }

    #[test]
    fn different_boards_differ() {
        let tech = Technology::cyclone_iii();
        let a = ProcessVariation::for_board(&tech, 1);
        let b = ProcessVariation::for_board(&tech, 2);
        assert_ne!(a.cell_factor(0), b.cell_factor(0));
        assert_ne!(a.inter_die_factor(), b.inter_die_factor());
    }

    #[test]
    fn intra_die_sigma_matches_configuration() {
        let tech = Technology::cyclone_iii();
        let p = ProcessVariation::for_board(&tech, 77);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|i| p.cell_factor(i)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let sd = (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64)
            .sqrt();
        assert!((mean - 1.0).abs() < 5e-4, "mean {mean}");
        assert!(
            (sd - tech.sigma_intra()).abs() < 0.001,
            "sd {sd} vs {}",
            tech.sigma_intra()
        );
    }

    #[test]
    fn inter_die_dispersion_matches_configuration() {
        let tech = Technology::cyclone_iii();
        let n = 4_000;
        let factors: Vec<f64> = (0..n)
            .map(|seed| ProcessVariation::for_board(&tech, seed).inter_die_factor())
            .collect();
        let mean = factors.iter().sum::<f64>() / n as f64;
        let sd = (factors.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64)
            .sqrt();
        assert!((mean - 1.0).abs() < 1e-3, "mean {mean}");
        assert!(
            (sd - tech.sigma_inter()).abs() < 4e-4,
            "sd {sd} vs {}",
            tech.sigma_inter()
        );
    }

    #[test]
    fn factors_are_bounded_away_from_zero() {
        let extreme = Technology::cyclone_iii().with_sigma_intra(2.0);
        let p = ProcessVariation::for_board(&extreme, 5);
        for cell in 0..1000 {
            assert!(p.cell_factor(cell) >= 0.5);
        }
    }
}
