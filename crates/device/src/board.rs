//! Boards (device instances) and board farms.

use strent_sim::RngTree;

use crate::error::DeviceError;
use crate::lut::LutCell;
use crate::process::ProcessVariation;
use crate::scaling::ScalingParams;
use crate::supply::Supply;
use crate::tech::Technology;

/// One physical device instance: a die with frozen process variation,
/// operating at a given supply and temperature.
///
/// The paper used five equivalent boards; here a board is one seeded draw
/// from the technology's process distribution.
///
/// # Examples
///
/// ```
/// use strent_device::{Board, Supply, Technology};
///
/// let mut board = Board::new(Technology::cyclone_iii(), 0, 99);
/// board.set_supply(Supply::dc(1.1));
/// let cell = board.lut(4);
/// assert!(cell.static_delay_ps(board.supply(), 0.0) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Board {
    id: usize,
    tech: Technology,
    process: ProcessVariation,
    supply: Supply,
    temp_c: f64,
}

impl Board {
    /// Creates a board with the given id and process seed, at the
    /// nominal operating point.
    #[must_use]
    pub fn new(tech: Technology, id: usize, process_seed: u64) -> Self {
        let process = ProcessVariation::for_board(&tech, process_seed);
        let supply = Supply::dc(tech.nominal_voltage());
        let temp_c = tech.nominal_temp_c();
        Board {
            id,
            tech,
            process,
            supply,
            temp_c,
        }
    }

    /// The board's index in its farm (or a user-chosen id).
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// The fabric profile of this board.
    #[must_use]
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// This board's silicon.
    #[must_use]
    pub fn process(&self) -> &ProcessVariation {
        &self.process
    }

    /// The current supply waveform.
    #[must_use]
    pub fn supply(&self) -> &Supply {
        &self.supply
    }

    /// Changes the supply waveform (DC sweep point, attack modulation...).
    pub fn set_supply(&mut self, supply: Supply) {
        self.supply = supply;
    }

    /// The die temperature, Celsius.
    #[must_use]
    pub fn temperature_c(&self) -> f64 {
        self.temp_c
    }

    /// Changes the die temperature.
    ///
    /// # Panics
    ///
    /// Panics if `temp_c` is non-finite.
    pub fn set_temperature_c(&mut self, temp_c: f64) {
        assert!(temp_c.is_finite(), "temperature must be finite");
        self.temp_c = temp_c;
    }

    /// A placed LUT cell with no extra routing (single-LAB placement).
    #[must_use]
    pub fn lut(&self, index: u64) -> LutCell {
        self.lut_with_routing(index, 0.0)
    }

    /// A placed LUT cell with `routing_ps` of nominal output interconnect
    /// (per-stage share, before process/voltage factors).
    ///
    /// # Panics
    ///
    /// Panics if `routing_ps` is negative or non-finite.
    #[must_use]
    pub fn lut_with_routing(&self, index: u64, routing_ps: f64) -> LutCell {
        assert!(
            routing_ps.is_finite() && routing_ps >= 0.0,
            "routing delay must be non-negative, got {routing_ps}"
        );
        let factor = self.process.total_factor(index);
        LutCell::new(
            index,
            self.tech.lut_delay_ps() * factor,
            routing_ps * factor,
            self.tech.sigma_g_ps(),
            self.temp_c,
            ScalingParams::from(&self.tech),
        )
    }
}

/// A set of boards drawn independently from one technology — the stand-in
/// for the paper's five equivalent evaluation boards.
#[derive(Debug, Clone)]
pub struct BoardFarm {
    boards: Vec<Board>,
}

impl BoardFarm {
    /// Creates `count` boards with process seeds derived from `seed`.
    #[must_use]
    pub fn new(tech: Technology, count: usize, seed: u64) -> Self {
        let tree = RngTree::new(seed);
        let boards = (0..count)
            .map(|id| {
                let board_seed = tree.stream(id as u64).next_u64();
                Board::new(tech.clone(), id, board_seed)
            })
            .collect();
        BoardFarm { boards }
    }

    /// Number of boards in the farm.
    #[must_use]
    pub fn len(&self) -> usize {
        self.boards.len()
    }

    /// Whether the farm is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.boards.is_empty()
    }

    /// The board at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range; use [`BoardFarm::try_board`]
    /// for a fallible lookup.
    #[must_use]
    pub fn board(&self, index: usize) -> &Board {
        &self.boards[index]
    }

    /// The board at `index`, or an error for out-of-range indices.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownBoard`] if `index >= len()`.
    pub fn try_board(&self, index: usize) -> Result<&Board, DeviceError> {
        self.boards.get(index).ok_or(DeviceError::UnknownBoard {
            index,
            count: self.boards.len(),
        })
    }

    /// Mutable access to the board at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownBoard`] if `index >= len()`.
    pub fn board_mut(&mut self, index: usize) -> Result<&mut Board, DeviceError> {
        let count = self.boards.len();
        self.boards
            .get_mut(index)
            .ok_or(DeviceError::UnknownBoard { index, count })
    }

    /// Iterates over the boards in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Board> {
        self.boards.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn farm_creates_distinct_silicon() {
        let farm = BoardFarm::new(Technology::cyclone_iii(), 5, 2012);
        assert_eq!(farm.len(), 5);
        assert!(!farm.is_empty());
        let d0 = farm.board(0).lut(0).transistor_ps();
        let d1 = farm.board(1).lut(0).transistor_ps();
        assert_ne!(d0, d1, "boards must have different silicon");
        // Same farm seed reproduces the same silicon.
        let again = BoardFarm::new(Technology::cyclone_iii(), 5, 2012);
        assert_eq!(again.board(0).lut(0).transistor_ps(), d0);
    }

    #[test]
    fn out_of_range_board_is_an_error() {
        let mut farm = BoardFarm::new(Technology::cyclone_iii(), 2, 1);
        assert!(matches!(
            farm.try_board(5),
            Err(DeviceError::UnknownBoard { index: 5, count: 2 })
        ));
        assert!(farm.board_mut(1).is_ok());
        assert!(farm.board_mut(2).is_err());
        assert_eq!(farm.iter().count(), 2);
    }

    #[test]
    fn supply_changes_apply() {
        let mut board = Board::new(Technology::cyclone_iii(), 0, 7);
        let d_nom = board.lut(0).static_delay_ps(board.supply(), 0.0);
        board.set_supply(Supply::dc(1.0));
        let d_low = board.lut(0).static_delay_ps(board.supply(), 0.0);
        assert!(d_low > d_nom);
    }

    #[test]
    fn temperature_changes_apply() {
        let mut board = Board::new(Technology::cyclone_iii(), 0, 7);
        let d_25 = board.lut(0).static_delay_ps(board.supply(), 0.0);
        board.set_temperature_c(85.0);
        let d_85 = board.lut(0).static_delay_ps(board.supply(), 0.0);
        assert!(d_85 > d_25, "hotter silicon is slower");
    }

    #[test]
    fn routing_share_carries_process_factor() {
        let board = Board::new(Technology::cyclone_iii(), 0, 3);
        let plain = board.lut(9);
        let routed = board.lut_with_routing(9, 200.0);
        assert_eq!(plain.transistor_ps(), routed.transistor_ps());
        assert_eq!(plain.interconnect_ps(), 0.0);
        let expected = 200.0 * board.process().total_factor(9);
        assert!((routed.interconnect_ps() - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_routing_rejected() {
        let board = Board::new(Technology::cyclone_iii(), 0, 3);
        let _ = board.lut_with_routing(0, -5.0);
    }
}
