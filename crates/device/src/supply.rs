//! Core supply-voltage waveforms.
//!
//! Experiments need three kinds of supply behaviour:
//!
//! * a fixed DC operating point (every baseline measurement),
//! * a swept DC point (Fig. 8 / Table I — the experiment re-runs at each
//!   point),
//! * deterministic modulation on top of the DC point — the classic
//!   non-invasive attack channel of the paper's ref \[2\] (sine) and the
//!   step perturbation used for robustness studies.

use serde::{Deserialize, Serialize};

/// A supply-voltage waveform `V(t)`.
///
/// # Examples
///
/// ```
/// use strent_device::Supply;
///
/// let dc = Supply::dc(1.2);
/// assert_eq!(dc.voltage_at(0.0), 1.2);
///
/// // 1% sine ripple at 1 MHz on top of the nominal point.
/// let attack = Supply::sine(1.2, 0.012, 1.0);
/// let quarter_period_ps = 0.25 * 1e6; // 1 MHz -> 1 us period
/// assert!((attack.voltage_at(quarter_period_ps) - 1.212).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Supply {
    /// Constant voltage.
    Dc {
        /// Level in volts.
        volts: f64,
    },
    /// `dc + amplitude * sin(2*pi*f*t)`.
    Sine {
        /// DC operating point, volts.
        dc: f64,
        /// Peak amplitude, volts.
        amplitude: f64,
        /// Modulation frequency, MHz.
        freq_mhz: f64,
    },
    /// Steps from `before` to `after` at `at_ps`.
    Step {
        /// Level before the step, volts.
        before: f64,
        /// Level after the step, volts.
        after: f64,
        /// Step instant, picoseconds.
        at_ps: f64,
    },
    /// Holds `nominal` except during `[from_ps, until_ps)`, where the
    /// rail sags to `droop` — the transient supply-droop fault window
    /// used by the fault-injection subsystem.
    Droop {
        /// Level outside the droop window, volts.
        nominal: f64,
        /// Sagged level inside the window, volts.
        droop: f64,
        /// Window start, picoseconds.
        from_ps: f64,
        /// Window end (exclusive), picoseconds.
        until_ps: f64,
    },
}

impl Supply {
    /// A constant supply.
    ///
    /// # Panics
    ///
    /// Panics if `volts` is non-finite or non-positive.
    #[must_use]
    pub fn dc(volts: f64) -> Self {
        assert!(
            volts.is_finite() && volts > 0.0,
            "supply voltage must be positive, got {volts}"
        );
        Supply::Dc { volts }
    }

    /// A sinusoidally modulated supply (the ref-\[2\] attack waveform).
    ///
    /// # Panics
    ///
    /// Panics if the parameters are non-finite, `dc <= amplitude`, or the
    /// frequency is non-positive.
    #[must_use]
    pub fn sine(dc: f64, amplitude: f64, freq_mhz: f64) -> Self {
        assert!(
            dc.is_finite() && amplitude.is_finite() && freq_mhz.is_finite(),
            "supply parameters must be finite"
        );
        assert!(
            amplitude >= 0.0 && dc > amplitude,
            "need dc > amplitude >= 0, got dc={dc}, amplitude={amplitude}"
        );
        assert!(freq_mhz > 0.0, "modulation frequency must be positive");
        Supply::Sine {
            dc,
            amplitude,
            freq_mhz,
        }
    }

    /// A step supply.
    ///
    /// # Panics
    ///
    /// Panics if either level is non-positive/non-finite or the step time
    /// is non-finite.
    #[must_use]
    pub fn step(before: f64, after: f64, at_ps: f64) -> Self {
        assert!(
            before.is_finite() && before > 0.0 && after.is_finite() && after > 0.0,
            "supply levels must be positive"
        );
        assert!(at_ps.is_finite(), "step time must be finite");
        Supply::Step { before, after, at_ps }
    }

    /// A transient droop: `nominal` outside `[from_ps, until_ps)`,
    /// `droop` inside.
    ///
    /// # Panics
    ///
    /// Panics if either level is non-positive/non-finite, the droop
    /// level is not below nominal, or the window is empty/non-finite.
    #[must_use]
    pub fn droop(nominal: f64, droop: f64, from_ps: f64, until_ps: f64) -> Self {
        assert!(
            nominal.is_finite() && nominal > 0.0 && droop.is_finite() && droop > 0.0,
            "supply levels must be positive"
        );
        assert!(
            droop < nominal,
            "droop level {droop} must lie below nominal {nominal}"
        );
        assert!(
            from_ps.is_finite() && until_ps.is_finite() && until_ps > from_ps,
            "droop window [{from_ps}, {until_ps}) must be non-empty and finite"
        );
        Supply::Droop {
            nominal,
            droop,
            from_ps,
            until_ps,
        }
    }

    /// The voltage at simulation time `t_ps` picoseconds.
    #[must_use]
    pub fn voltage_at(&self, t_ps: f64) -> f64 {
        match *self {
            Supply::Dc { volts } => volts,
            Supply::Sine {
                dc,
                amplitude,
                freq_mhz,
            } => {
                // f [MHz] * t [ps] = cycles * 1e-6.
                let phase = std::f64::consts::TAU * freq_mhz * t_ps * 1e-6;
                dc + amplitude * phase.sin()
            }
            Supply::Step { before, after, at_ps } => {
                if t_ps < at_ps {
                    before
                } else {
                    after
                }
            }
            Supply::Droop {
                nominal,
                droop,
                from_ps,
                until_ps,
            } => {
                if t_ps >= from_ps && t_ps < until_ps {
                    droop
                } else {
                    nominal
                }
            }
        }
    }

    /// The DC (average) operating point of the waveform.
    #[must_use]
    pub fn dc_level(&self) -> f64 {
        match *self {
            Supply::Dc { volts } => volts,
            Supply::Sine { dc, .. } => dc,
            Supply::Step { after, .. } => after,
            Supply::Droop { nominal, .. } => nominal,
        }
    }
}

impl Default for Supply {
    /// The nominal Cyclone III core supply (1.2 V DC).
    fn default() -> Self {
        Supply::dc(1.2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let s = Supply::dc(1.1);
        assert_eq!(s.voltage_at(0.0), 1.1);
        assert_eq!(s.voltage_at(1e9), 1.1);
        assert_eq!(s.dc_level(), 1.1);
    }

    #[test]
    fn sine_has_correct_extrema_and_period() {
        let s = Supply::sine(1.2, 0.05, 10.0); // 10 MHz -> 100 ns period
        let period_ps = 1e5;
        assert!((s.voltage_at(0.0) - 1.2).abs() < 1e-12);
        assert!((s.voltage_at(0.25 * period_ps) - 1.25).abs() < 1e-9);
        assert!((s.voltage_at(0.75 * period_ps) - 1.15).abs() < 1e-9);
        assert!((s.voltage_at(period_ps) - 1.2).abs() < 1e-9);
        assert_eq!(s.dc_level(), 1.2);
    }

    #[test]
    fn step_switches_at_the_right_time() {
        let s = Supply::step(1.2, 1.0, 500.0);
        assert_eq!(s.voltage_at(499.9), 1.2);
        assert_eq!(s.voltage_at(500.0), 1.0);
        assert_eq!(s.dc_level(), 1.0);
    }

    #[test]
    fn default_is_nominal() {
        assert_eq!(Supply::default().voltage_at(0.0), 1.2);
    }

    #[test]
    fn droop_sags_only_inside_the_window() {
        let s = Supply::droop(1.2, 0.6, 1_000.0, 2_000.0);
        assert_eq!(s.voltage_at(999.9), 1.2);
        assert_eq!(s.voltage_at(1_000.0), 0.6);
        assert_eq!(s.voltage_at(1_999.9), 0.6);
        assert_eq!(s.voltage_at(2_000.0), 1.2);
        assert_eq!(s.dc_level(), 1.2);
    }

    #[test]
    #[should_panic(expected = "below nominal")]
    fn droop_above_nominal_rejected() {
        let _ = Supply::droop(1.2, 1.3, 0.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_droop_window_rejected() {
        let _ = Supply::droop(1.2, 0.6, 10.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dc_rejected() {
        let _ = Supply::dc(0.0);
    }

    #[test]
    #[should_panic(expected = "dc > amplitude")]
    fn over_modulation_rejected() {
        let _ = Supply::sine(0.5, 0.6, 1.0);
    }

    #[test]
    #[should_panic(expected = "frequency")]
    fn zero_frequency_rejected() {
        let _ = Supply::sine(1.2, 0.1, 0.0);
    }
}
