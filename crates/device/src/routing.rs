//! Interconnect (routing) delay model.
//!
//! Placing a ring of `L` stages on a real FPGA spreads it over one or more
//! LABs; the average per-stage interconnect delay therefore grows with the
//! ring length. The paper observes this directly (its STR frequencies fall
//! from 653 MHz at 4 stages to 320 MHz at 96 stages even though the
//! evenly-spaced STR period is nominally length-independent) but does not
//! model it. We represent it as a calibrated piecewise-linear function of
//! ring length — see `DESIGN.md` §5 for the calibration points.

use serde::{Deserialize, Serialize};

/// Per-stage interconnect delay overhead as a function of ring length.
///
/// # Examples
///
/// ```
/// use strent_device::RoutingModel;
///
/// let model = RoutingModel::from_points(&[(4, 0.0), (96, 398.0)]);
/// assert_eq!(model.overhead_ps(4), 0.0);
/// assert_eq!(model.overhead_ps(96), 398.0);
/// // Lengths between calibration points interpolate linearly...
/// assert!((model.overhead_ps(50) - 199.0).abs() < 5.0);
/// // ...and lengths outside clamp to the nearest point.
/// assert_eq!(model.overhead_ps(3), 0.0);
/// assert_eq!(model.overhead_ps(128), 398.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingModel {
    /// `(ring length, per-stage overhead in ps)`, strictly increasing in
    /// length.
    points: Vec<(u32, f64)>,
}

impl RoutingModel {
    /// A model with zero overhead everywhere (ideal placement).
    #[must_use]
    pub fn none() -> Self {
        RoutingModel {
            points: vec![(1, 0.0)],
        }
    }

    /// Builds a model from calibration points.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, lengths are not strictly increasing,
    /// or any overhead is negative/non-finite — calibration tables are
    /// compile-time data, so these are programming errors.
    #[must_use]
    pub fn from_points(points: &[(u32, f64)]) -> Self {
        assert!(!points.is_empty(), "routing model needs at least one point");
        for w in points.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "routing calibration lengths must be strictly increasing"
            );
        }
        for &(len, ps) in points {
            assert!(
                ps.is_finite() && ps >= 0.0,
                "routing overhead at length {len} must be non-negative, got {ps}"
            );
        }
        RoutingModel {
            points: points.to_vec(),
        }
    }

    /// Per-stage interconnect overhead in picoseconds for a ring of the
    /// given length (linear interpolation, clamped outside the table).
    #[must_use]
    pub fn overhead_ps(&self, ring_length: u32) -> f64 {
        let pts = &self.points;
        if ring_length <= pts[0].0 {
            return pts[0].1;
        }
        if ring_length >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        // Find the bracketing segment.
        let hi = pts
            .iter()
            .position(|&(len, _)| len >= ring_length)
            .expect("ring_length is below the last point");
        let (x0, y0) = pts[hi - 1];
        let (x1, y1) = pts[hi];
        if x1 == x0 {
            return y0;
        }
        let t = f64::from(ring_length - x0) / f64::from(x1 - x0);
        y0 + t * (y1 - y0)
    }

    /// The calibration points backing this model.
    #[must_use]
    pub fn points(&self) -> &[(u32, f64)] {
        &self.points
    }
}

impl Default for RoutingModel {
    fn default() -> Self {
        RoutingModel::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_points_are_reproduced() {
        let m = RoutingModel::from_points(&[(4, 0.0), (24, 194.0), (96, 398.0)]);
        assert_eq!(m.overhead_ps(4), 0.0);
        assert_eq!(m.overhead_ps(24), 194.0);
        assert_eq!(m.overhead_ps(96), 398.0);
        assert_eq!(m.points().len(), 3);
    }

    #[test]
    fn interpolation_is_linear() {
        let m = RoutingModel::from_points(&[(10, 100.0), (20, 200.0)]);
        assert!((m.overhead_ps(15) - 150.0).abs() < 1e-12);
        assert!((m.overhead_ps(11) - 110.0).abs() < 1e-12);
    }

    #[test]
    fn clamping_outside_range() {
        let m = RoutingModel::from_points(&[(10, 100.0), (20, 200.0)]);
        assert_eq!(m.overhead_ps(1), 100.0);
        assert_eq!(m.overhead_ps(1000), 200.0);
    }

    #[test]
    fn none_is_zero_everywhere() {
        let m = RoutingModel::none();
        assert_eq!(m.overhead_ps(1), 0.0);
        assert_eq!(m.overhead_ps(96), 0.0);
        assert_eq!(RoutingModel::default(), m);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_points_rejected() {
        let _ = RoutingModel::from_points(&[(10, 1.0), (10, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_points_rejected() {
        let _ = RoutingModel::from_points(&[]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_overhead_rejected() {
        let _ = RoutingModel::from_points(&[(10, -1.0)]);
    }
}
