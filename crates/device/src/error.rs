//! Error type for the device model.

use std::error::Error;
use std::fmt;

/// Errors reported by the device model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeviceError {
    /// A board index was out of range for the farm.
    UnknownBoard {
        /// Requested index.
        index: usize,
        /// Number of boards in the farm.
        count: usize,
    },
    /// A supply voltage was outside the physically meaningful range.
    InvalidVoltage(f64),
    /// A technology parameter failed validation.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::UnknownBoard { index, count } => {
                write!(f, "board index {index} out of range (farm has {count})")
            }
            DeviceError::InvalidVoltage(v) => {
                write!(f, "supply voltage {v} V is outside the valid range")
            }
            DeviceError::InvalidParameter { name, value } => {
                write!(f, "invalid technology parameter {name} = {value}")
            }
        }
    }
}

impl Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(DeviceError::UnknownBoard { index: 9, count: 5 }
            .to_string()
            .contains("9"));
        assert!(DeviceError::InvalidVoltage(3.3).to_string().contains("3.3"));
        assert!(DeviceError::InvalidParameter {
            name: "alpha",
            value: -1.0
        }
        .to_string()
        .contains("alpha"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<DeviceError>();
    }
}
