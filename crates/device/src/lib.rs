//! # strent-device — FPGA fabric model
//!
//! A behavioural model of the delay-relevant aspects of an FPGA fabric
//! (calibrated to the Altera Cyclone III family used by Cherkaoui et al.,
//! DATE 2012):
//!
//! * [`Technology`] — nominal LUT delay, local jitter, voltage-scaling
//!   exponents, process-variation magnitudes, calibrated routing models;
//! * [`scaling`] — alpha-power-law delay scaling with supply voltage and a
//!   partially-RC interconnect component that scales less than transistor
//!   delay (the mechanism behind the paper's Table I trend);
//! * [`process`] — inter-die and intra-die (per-cell) process variation;
//! * [`supply`] — supply-voltage waveforms: DC operating points, sweeps
//!   and deterministic modulation (sine/step) used for attack studies;
//! * [`Board`] / [`BoardFarm`] — independently seeded device instances,
//!   standing in for the paper's five physical boards;
//! * [`LutCell`] — the per-stage delay model combining all of the above.
//!
//! The model deliberately knows nothing about rings: it answers one
//! question — *"what is the propagation delay of cell `k` of board `b` at
//! time `t`?"* — and the ring crate builds oscillators on top.
//!
//! ## Example
//!
//! ```
//! use strent_device::{Technology, BoardFarm, supply::Supply};
//!
//! let tech = Technology::cyclone_iii();
//! let farm = BoardFarm::new(tech.clone(), 5, 2012);
//! let board = farm.board(0);
//! let cell = board.lut(3);
//! // Static delay at nominal voltage is near the technology nominal...
//! let supply = Supply::dc(tech.nominal_voltage());
//! let d_nom = cell.static_delay_ps(&supply, 0.0);
//! assert!((d_nom / tech.lut_delay_ps() - 1.0).abs() < 0.10);
//! // ...and grows when the core voltage drops.
//! let d_low = cell.static_delay_ps(&Supply::dc(1.0), 0.0);
//! assert!(d_low > d_nom);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod board;
pub mod error;
pub mod lut;
pub mod noise;
pub mod process;
pub mod routing;
pub mod scaling;
pub mod supply;
pub mod tech;

pub use board::{Board, BoardFarm};
pub use error::DeviceError;
pub use lut::LutCell;
pub use process::ProcessVariation;
pub use routing::RoutingModel;
pub use supply::Supply;
pub use tech::Technology;
