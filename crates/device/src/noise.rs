//! Slow (flicker-like) delay noise.
//!
//! The paper's temporal model is white: every stage crossing draws an
//! independent Gaussian. Real gates also carry low-frequency (1/f)
//! delay noise — the paper's ref \[2\] discusses how it corrupts jitter
//! accumulation measurements. We model it as an Ornstein–Uhlenbeck
//! modulation of each stage's static delay: stationary relative sigma
//! `rel_sigma`, correlation time `tau`. The white model is the
//! `rel_sigma = 0` special case (the default technology profile).

use serde::{Deserialize, Serialize};
use strent_sim::SimRng;

/// A per-stage Ornstein–Uhlenbeck delay modulation.
///
/// # Examples
///
/// ```
/// use strent_device::noise::FlickerProcess;
/// use strent_sim::RngTree;
///
/// let mut flicker = FlickerProcess::new(0.01, 1_000.0);
/// let mut rng = RngTree::new(5).stream(0);
/// let f = flicker.factor_at(100.0, &mut rng);
/// assert!((f - 1.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlickerProcess {
    value: f64,
    rel_sigma: f64,
    tau_ps: f64,
    last_t_ps: f64,
    started: bool,
}

impl FlickerProcess {
    /// Creates a process with the given stationary relative sigma and
    /// correlation time.
    ///
    /// # Panics
    ///
    /// Panics if `rel_sigma` is negative or `tau_ps` is not positive
    /// (compile-time configuration, not runtime data).
    #[must_use]
    pub fn new(rel_sigma: f64, tau_ps: f64) -> Self {
        assert!(
            rel_sigma.is_finite() && rel_sigma >= 0.0,
            "flicker sigma must be non-negative, got {rel_sigma}"
        );
        assert!(
            tau_ps.is_finite() && tau_ps > 0.0,
            "flicker tau must be positive, got {tau_ps}"
        );
        FlickerProcess {
            value: 0.0,
            rel_sigma,
            tau_ps,
            last_t_ps: 0.0,
            started: false,
        }
    }

    /// A disabled process (always returns factor 1).
    #[must_use]
    pub fn disabled() -> Self {
        FlickerProcess::new(0.0, 1.0)
    }

    /// Whether the process modulates anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.rel_sigma > 0.0
    }

    /// Advances the process to time `t_ps` and returns the current
    /// multiplicative delay factor `1 + x(t)`.
    ///
    /// The first call draws from the stationary distribution; later
    /// calls apply the exact OU transition over the elapsed interval.
    /// Time may only move forward; out-of-order queries reuse the
    /// current value.
    pub fn factor_at(&mut self, t_ps: f64, rng: &mut SimRng) -> f64 {
        if self.rel_sigma == 0.0 {
            return 1.0;
        }
        if !self.started {
            self.value = rng.normal(0.0, self.rel_sigma);
            self.last_t_ps = t_ps;
            self.started = true;
        } else if t_ps > self.last_t_ps {
            let a = (-(t_ps - self.last_t_ps) / self.tau_ps).exp();
            let innovation_sigma = self.rel_sigma * (1.0 - a * a).sqrt();
            self.value = self.value * a + rng.normal(0.0, innovation_sigma);
            self.last_t_ps = t_ps;
        }
        // Clamp so the delay factor stays positive even at wild sigmas.
        1.0 + self.value.max(-0.9)
    }
}

/// A shared **global-jitter** process: the deterministic, board-wide
/// jitter component — supply ripple at a known tone — that every ring
/// on the die sees identically (common mode), as opposed to the
/// per-stage thermal noise each ring draws privately.
///
/// A differential measurement pair is built by applying the *same*
/// process to both rings' boards while each ring keeps its own thermal
/// seed: subtracting the two period series then cancels the common
/// mode, and the residual tone quantifies the rejection (see
/// `strent_rings::differential`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GlobalJitterProcess {
    amplitude_v: f64,
    freq_mhz: f64,
}

impl GlobalJitterProcess {
    /// Creates a process: a supply ripple of the given amplitude
    /// (volts) at the given tone (MHz).
    ///
    /// # Panics
    ///
    /// Panics if the amplitude is negative or the frequency is not
    /// positive (compile-time configuration, not runtime data).
    #[must_use]
    pub fn new(amplitude_v: f64, freq_mhz: f64) -> Self {
        assert!(
            amplitude_v.is_finite() && amplitude_v >= 0.0,
            "global-jitter amplitude must be non-negative, got {amplitude_v}"
        );
        assert!(
            freq_mhz.is_finite() && freq_mhz > 0.0,
            "global-jitter frequency must be positive, got {freq_mhz}"
        );
        GlobalJitterProcess {
            amplitude_v,
            freq_mhz,
        }
    }

    /// A disabled process (no common-mode component).
    #[must_use]
    pub fn disabled() -> Self {
        GlobalJitterProcess {
            amplitude_v: 0.0,
            freq_mhz: 1.0,
        }
    }

    /// Whether the process injects anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.amplitude_v > 0.0
    }

    /// The ripple amplitude, volts.
    #[must_use]
    pub fn amplitude_v(&self) -> f64 {
        self.amplitude_v
    }

    /// The tone frequency, MHz.
    #[must_use]
    pub fn freq_mhz(&self) -> f64 {
        self.freq_mhz
    }

    /// The tone frequency in cycles per picosecond — the unit a
    /// lock-in detector over picosecond period series wants.
    #[must_use]
    pub fn tone_per_ps(&self) -> f64 {
        self.freq_mhz * 1e-6
    }

    /// A copy of `board` with this process applied: the supply becomes
    /// a sine of the board's current DC level, this amplitude and this
    /// tone. Both members of a differential pair must be modulated
    /// from the same process for the common mode to be common.
    #[must_use]
    pub fn modulated(&self, board: &crate::board::Board) -> crate::board::Board {
        let mut out = board.clone();
        let dc = board.supply().dc_level();
        out.set_supply(crate::supply::Supply::sine(dc, self.amplitude_v, self.freq_mhz));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strent_sim::RngTree;

    #[test]
    fn global_process_modulates_a_board_copy() {
        use crate::board::Board;
        use crate::tech::Technology;

        let board = Board::new(Technology::cyclone_iii(), 0, 1);
        let process = GlobalJitterProcess::new(0.012, 5.0);
        assert!(process.is_enabled());
        assert!((process.tone_per_ps() - 5e-6).abs() < 1e-18);
        let modulated = process.modulated(&board);
        // Same DC level, but the supply now swings around it...
        let dc = board.supply().dc_level();
        assert_eq!(modulated.supply().dc_level(), dc);
        let quarter_ps = 1.0 / (4.0 * 5e-6);
        assert!((modulated.supply().voltage_at(quarter_ps) - (dc + 0.012)).abs() < 1e-9);
        // ...while the original board is untouched.
        assert_eq!(board.supply().voltage_at(quarter_ps), dc);
        // A disabled process modulates nothing.
        let idle = GlobalJitterProcess::disabled();
        assert!(!idle.is_enabled());
        assert_eq!(idle.modulated(&board).supply().voltage_at(quarter_ps), dc);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_global_amplitude_rejected() {
        let _ = GlobalJitterProcess::new(-0.01, 5.0);
    }

    #[test]
    fn disabled_process_is_identity() {
        let mut p = FlickerProcess::disabled();
        let mut rng = RngTree::new(1).stream(0);
        assert!(!p.is_enabled());
        for t in 0..100 {
            assert_eq!(p.factor_at(f64::from(t) * 10.0, &mut rng), 1.0);
        }
    }

    #[test]
    fn stationary_spread_matches_configuration() {
        let tree = RngTree::new(7);
        let n = 4000;
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let mut p = FlickerProcess::new(0.02, 500.0);
                let mut rng = tree.stream(i);
                p.factor_at(0.0, &mut rng) - 1.0
            })
            .collect();
        let mean = values.iter().sum::<f64>() / n as f64;
        let sd = (values.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64)
            .sqrt();
        assert!(mean.abs() < 2e-3, "mean {mean}");
        assert!((sd - 0.02).abs() < 2e-3, "sd {sd}");
    }

    #[test]
    fn correlation_decays_with_tau() {
        // Sample pairs separated by dt << tau and dt >> tau.
        let tree = RngTree::new(9);
        let n = 3000;
        let corr = |dt: f64| {
            let pairs: Vec<(f64, f64)> = (0..n)
                .map(|i| {
                    let mut p = FlickerProcess::new(0.05, 1_000.0);
                    let mut rng = tree.stream(i);
                    let a = p.factor_at(0.0, &mut rng) - 1.0;
                    let b = p.factor_at(dt, &mut rng) - 1.0;
                    (a, b)
                })
                .collect();
            let ma = pairs.iter().map(|p| p.0).sum::<f64>() / n as f64;
            let mb = pairs.iter().map(|p| p.1).sum::<f64>() / n as f64;
            let cov: f64 = pairs.iter().map(|p| (p.0 - ma) * (p.1 - mb)).sum::<f64>();
            let va: f64 = pairs.iter().map(|p| (p.0 - ma).powi(2)).sum::<f64>();
            let vb: f64 = pairs.iter().map(|p| (p.1 - mb).powi(2)).sum::<f64>();
            cov / (va * vb).sqrt()
        };
        assert!(corr(50.0) > 0.9, "short-lag correlation");
        assert!(corr(10_000.0) < 0.1, "long-lag decorrelation");
    }

    #[test]
    fn time_only_moves_forward() {
        let mut p = FlickerProcess::new(0.05, 100.0);
        let mut rng = RngTree::new(3).stream(0);
        let f1 = p.factor_at(1_000.0, &mut rng);
        // An out-of-order query reuses the current state.
        let f2 = p.factor_at(500.0, &mut rng);
        assert_eq!(f1, f2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_rejected() {
        let _ = FlickerProcess::new(-0.1, 100.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tau_rejected() {
        let _ = FlickerProcess::new(0.1, 0.0);
    }
}
