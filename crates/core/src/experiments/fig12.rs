//! Fig. 12 — STR period jitter vs ring length: flat in `L`, converging
//! to `sqrt(2) * sigma_g` (Eq. 5).

use std::fmt;

use strent_analysis::jitter;
use strent_analysis::stats::Summary;
use strent_rings::{analytic, measure, StrConfig};

use crate::calibration::{self, FIG12_LENGTHS};
use crate::report::{fmt_mhz, fmt_ps, Table};

use super::{Effort, ExperimentError};

/// One measured point of Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig12Point {
    /// Ring length `L` (with `NT = NB = L/2`).
    pub length: usize,
    /// Mean frequency, MHz.
    pub frequency_mhz: f64,
    /// Measured period jitter, ps.
    pub sigma_period_ps: f64,
}

/// The reproduced Fig. 12.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12Result {
    /// Measured points in increasing length.
    pub points: Vec<Fig12Point>,
    /// Eq. 5's prediction `sqrt(2) * sigma_g`, ps.
    pub predicted_sigma_ps: f64,
}

impl Fig12Result {
    /// Mean measured jitter across lengths.
    #[must_use]
    pub fn mean_sigma_ps(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.sigma_period_ps)
            .collect::<Summary>()
            .mean()
    }

    /// The spread (max/min ratio) of the jitter across lengths — a
    /// direct "is it flat?" metric.
    #[must_use]
    pub fn flatness_ratio(&self) -> f64 {
        let max = self
            .points
            .iter()
            .map(|p| p.sigma_period_ps)
            .fold(f64::MIN, f64::max);
        let min = self
            .points
            .iter()
            .map(|p| p.sigma_period_ps)
            .fold(f64::MAX, f64::min);
        max / min
    }
}

impl fmt::Display for Fig12Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 12 — STR period jitter vs number of stages")?;
        let mut table = Table::new(&["L", "F (MHz)", "sigma_p"]);
        for p in &self.points {
            table.row_owned(vec![
                p.length.to_string(),
                fmt_mhz(p.frequency_mhz),
                fmt_ps(p.sigma_period_ps),
            ]);
        }
        write!(f, "{table}")?;
        writeln!(
            f,
            "mean sigma_p = {} (Eq. 5 predicts sqrt(2)*sigma_g = {}), max/min = {:.2}",
            fmt_ps(self.mean_sigma_ps()),
            fmt_ps(self.predicted_sigma_ps),
            self.flatness_ratio()
        )
    }
}

/// Runs the Fig. 12 experiment.
///
/// # Errors
///
/// Propagates ring simulation and analysis errors.
pub fn run(effort: Effort, seed: u64) -> Result<Fig12Result, ExperimentError> {
    let periods = effort.size(1_500, 8_000);
    let board = calibration::default_board();
    let mut points = Vec::new();
    for &l in &FIG12_LENGTHS {
        let config = StrConfig::new(l, l / 2).expect("valid counts");
        let run = measure::run_str(&config, &board, seed, periods)?;
        points.push(Fig12Point {
            length: l,
            frequency_mhz: run.frequency_mhz,
            sigma_period_ps: jitter::period_jitter(&run.periods_ps)?,
        });
    }
    Ok(Fig12Result {
        predicted_sigma_ps: analytic::str_sigma_period_ps(&board),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_jitter_is_flat_and_in_band() {
        let result = run(Effort::Quick, 5).expect("simulates");
        assert_eq!(result.points.len(), 8);
        // The paper's band: 2-4 ps for every length.
        for p in &result.points {
            assert!(
                (2.0..4.5).contains(&p.sigma_period_ps),
                "L={}: sigma {}",
                p.length,
                p.sigma_period_ps
            );
        }
        // Flat: a 24x length increase moves sigma by well under 50%.
        assert!(
            result.flatness_ratio() < 1.5,
            "flatness {}",
            result.flatness_ratio()
        );
        // Near Eq. 5's prediction (within the paper's own 2-4 ps spread
        // around sqrt(2)*sigma_g = 2.83 ps).
        let mean = result.mean_sigma_ps();
        assert!(
            (mean / result.predicted_sigma_ps) < 1.5 && (mean / result.predicted_sigma_ps) > 0.7,
            "mean {mean} vs predicted {}",
            result.predicted_sigma_ps
        );
        let text = result.to_string();
        assert!(text.contains("Fig. 12"));
        assert!(text.contains("Eq. 5"));
    }
}
