//! EXT-MULTI — the multi-phase STR TRNG (the paper's future work).
//!
//! The paper closes with "each ring stage can be considered as an
//! independent entropy source" and announces a robust STR-based TRNG as
//! future work; the authors' follow-up design samples every stage
//! output with one reference clock and XORs the samples. This
//! experiment quantifies the payoff: entropy per bit at a *fast*
//! reference (high throughput) for the single-phase baseline vs the
//! multi-phase combiner, across ring lengths.

use std::fmt;

use strent_device::{Board, Technology};
use strent_rings::StrConfig;
use strent_trng::entropy;
use strent_trng::multiphase::MultiphaseTrng;

use crate::calibration::PAPER_SEED;
use crate::report::{fmt_ps, Table};

use super::runner::ExperimentRunner;
use super::{Effort, ExperimentError};

/// One ring-length row of the comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtMultiRow {
    /// Ring length `L` (with `NT = NB = L/2`).
    pub length: usize,
    /// The ring's phase resolution `T / (2L)`, ps.
    pub phase_resolution_ps: f64,
    /// Markov entropy of the single-phase stream.
    pub single_phase_entropy: f64,
    /// Markov entropy of the XOR-of-all-phases stream.
    pub multiphase_entropy: f64,
}

/// The EXT-MULTI result set.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtMultiResult {
    /// One row per ring length.
    pub rows: Vec<ExtMultiRow>,
    /// Reference period used, in ring periods.
    pub reference_periods: f64,
}

impl fmt::Display for ExtMultiResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EXT-MULTI — multi-phase STR TRNG at a fast reference ({} ring periods per bit)",
            self.reference_periods
        )?;
        let mut table = Table::new(&[
            "L",
            "phase res.",
            "H single-phase",
            "H multi-phase",
            "gain",
        ]);
        for row in &self.rows {
            table.row_owned(vec![
                row.length.to_string(),
                fmt_ps(row.phase_resolution_ps),
                format!("{:.3}", row.single_phase_entropy),
                format!("{:.3}", row.multiphase_entropy),
                format!(
                    "{:+.3}",
                    row.multiphase_entropy - row.single_phase_entropy
                ),
            ]);
        }
        write!(f, "{table}")
    }
}

/// Runs the EXT-MULTI experiment on a caller-provided runner: one
/// sharded job per ring length.
///
/// # Errors
///
/// Propagates simulation and entropy-estimation errors.
pub fn run_with(runner: &ExperimentRunner) -> Result<ExtMultiResult, ExperimentError> {
    let bits = runner.effort().size(1_200, 4_000);
    let reference_periods = 4.0;
    // Noisy-corner technology: the entropy transition must be visible
    // at a simulable reference rate (see DESIGN.md §5 on scaling).
    let tech = Technology::cyclone_iii()
        .with_sigma_g_ps(40.0)
        .with_sigma_intra(0.0)
        .with_sigma_inter(0.0);
    let board = Board::new(tech, 0, PAPER_SEED);
    let rows = runner.run_stage("ext_multi", &[8usize, 16, 32], |job, _meter| {
        let l = *job.config;
        let config = StrConfig::new(l, l / 2).expect("valid counts");
        let period = strent_rings::analytic::str_period_ps(&config, &board);
        let trng = MultiphaseTrng::new(config, reference_periods * period, 0.0)?;
        // Both arms sample the same ring run, so they share one seed.
        let multi = trng.generate(&board, job.seed(), bits)?;
        let single = trng.generate_single_phase(&board, job.seed(), bits)?;
        Ok(ExtMultiRow {
            length: l,
            phase_resolution_ps: trng.phase_resolution_ps(&board),
            single_phase_entropy: entropy::markov_entropy(&single)?,
            multiphase_entropy: entropy::markov_entropy(&multi)?,
        })
    })?;
    Ok(ExtMultiResult {
        rows,
        reference_periods,
    })
}

/// Runs the EXT-MULTI experiment.
///
/// # Errors
///
/// Propagates simulation and entropy-estimation errors.
pub fn run(effort: Effort, seed: u64) -> Result<ExtMultiResult, ExperimentError> {
    run_with(&ExperimentRunner::new(effort, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiphase_gains_entropy_at_every_length() {
        let result = run(Effort::Quick, 21).expect("simulates");
        assert_eq!(result.rows.len(), 3);
        for row in &result.rows {
            assert!(
                row.multiphase_entropy > row.single_phase_entropy + 0.05,
                "L={}: multi {} vs single {}",
                row.length,
                row.multiphase_entropy,
                row.single_phase_entropy
            );
        }
        // Longer rings refine the phase resolution.
        assert!(
            result.rows[2].phase_resolution_ps < result.rows[0].phase_resolution_ps,
            "resolution should shrink with L"
        );
        // And the longest ring achieves solid per-bit entropy at a
        // reference only 4 periods long.
        assert!(
            result.rows[2].multiphase_entropy > 0.7,
            "L=32 multi entropy {}",
            result.rows[2].multiphase_entropy
        );
        let text = result.to_string();
        assert!(text.contains("EXT-MULTI"));
    }
}
