//! The experiment layer: one module per table/figure of the paper.
//!
//! Every module exposes a `run(effort, seed) -> Result<...Result>`
//! function whose result type implements `Display`, printing the same
//! rows/series the paper reports. `Effort::Quick` keeps runs small
//! enough for the test suite; `Effort::Full` is what the `repro_*`
//! binaries and `EXPERIMENTS.md` use.

pub mod degradation;
pub mod ext_charlie;
pub mod ext_coherent;
pub mod ext_det;
pub mod ext_entropy;
pub mod ext_flicker;
pub mod ext_method;
pub mod ext_mode;
pub mod ext_multi;
pub mod ext_restart;
pub mod ext_trng;
pub mod fig11;
pub mod fig12;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod obs_a;
pub mod runner;
pub mod table1;
pub mod table2;

use std::error::Error;
use std::fmt;

use strent_analysis::AnalysisError;
use strent_rings::RingError;
use strent_trng::TrngError;

/// How much simulation to spend on an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Effort {
    /// Reduced sizes: seconds-scale, used by tests and smoke runs. The
    /// *shapes* still hold; statistical error bars are wider.
    Quick,
    /// Paper-scale sizes, used by the `repro_*` binaries.
    #[default]
    Full,
}

impl Effort {
    /// Picks a size: `quick` under [`Effort::Quick`], `full` otherwise.
    #[must_use]
    pub fn size(self, quick: usize, full: usize) -> usize {
        match self {
            Effort::Quick => quick,
            Effort::Full => full,
        }
    }
}

/// Errors reported by the experiment layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExperimentError {
    /// A ring simulation failed.
    Ring(RingError),
    /// A statistical computation failed.
    Analysis(AnalysisError),
    /// A TRNG computation failed.
    Trng(TrngError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Ring(e) => write!(f, "ring simulation failed: {e}"),
            ExperimentError::Analysis(e) => write!(f, "analysis failed: {e}"),
            ExperimentError::Trng(e) => write!(f, "trng evaluation failed: {e}"),
        }
    }
}

impl Error for ExperimentError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExperimentError::Ring(e) => Some(e),
            ExperimentError::Analysis(e) => Some(e),
            ExperimentError::Trng(e) => Some(e),
        }
    }
}

impl From<RingError> for ExperimentError {
    fn from(e: RingError) -> Self {
        ExperimentError::Ring(e)
    }
}

impl From<strent_sim::SimError> for ExperimentError {
    /// Engine errors surface through the ring layer's wrapper, so a
    /// `FaultPlan` builder failing inside an experiment job carries the
    /// same shape as one failing inside a ring runner.
    fn from(e: strent_sim::SimError) -> Self {
        ExperimentError::Ring(RingError::Sim(e))
    }
}

impl From<AnalysisError> for ExperimentError {
    fn from(e: AnalysisError) -> Self {
        ExperimentError::Analysis(e)
    }
}

impl From<TrngError> for ExperimentError {
    fn from(e: TrngError) -> Self {
        ExperimentError::Trng(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_sizes() {
        assert_eq!(Effort::Quick.size(10, 1000), 10);
        assert_eq!(Effort::Full.size(10, 1000), 1000);
        assert_eq!(Effort::default(), Effort::Full);
    }

    #[test]
    fn error_conversions_and_display() {
        let e = ExperimentError::from(RingError::InvalidConfig("x".into()));
        assert!(e.to_string().contains("ring"));
        assert!(e.source().is_some());
        let e = ExperimentError::from(AnalysisError::NonFiniteData);
        assert!(e.to_string().contains("analysis"));
        let e = ExperimentError::from(TrngError::NotEnoughBits { needed: 1, got: 0 });
        assert!(e.to_string().contains("trng"));
    }
}
