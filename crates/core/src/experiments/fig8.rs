//! Fig. 8 — normalized frequencies over the 1.0 V..1.4 V core supply
//! sweep, for IRO 5C/80C and STR 4C/96C.

use std::fmt;

use strent_analysis::frequency::{normalize_sweep, NormalizedSweep, SweepPoint};
use strent_device::Supply;
use strent_rings::{measure, IroConfig, StrConfig};

use crate::calibration::{self, NOMINAL_VOLTS, SWEEP_VOLTS};
use crate::report::{fmt_mhz, Table};

use super::{Effort, ExperimentError};

/// One ring's sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct RingSweep {
    /// Display label ("IRO 5C"...).
    pub label: String,
    /// The normalized sweep (`Fn` series and excursion).
    pub sweep: NormalizedSweep,
}

/// The full Fig. 8 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Result {
    /// One sweep per ring, in the paper's order:
    /// IRO 5C, IRO 80C, STR 4C, STR 96C.
    pub rings: Vec<RingSweep>,
    /// The swept voltages.
    pub volts: Vec<f64>,
}

impl Fig8Result {
    /// The `Fn` series of ring `label`, if present.
    #[must_use]
    pub fn normalized_series(&self, label: &str) -> Option<&[(f64, f64)]> {
        self.rings
            .iter()
            .find(|r| r.label == label)
            .map(|r| r.sweep.normalized.as_slice())
    }
}

impl fmt::Display for Fig8Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut headers = vec!["V (V)".to_owned()];
        headers.extend(self.rings.iter().map(|r| format!("Fn {}", r.label)));
        let mut table = Table::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());
        for (i, &v) in self.volts.iter().enumerate() {
            let mut row = vec![format!("{v:.2}")];
            for ring in &self.rings {
                row.push(format!("{:.4}", ring.sweep.normalized[i].1));
            }
            table.row_owned(row);
        }
        writeln!(f, "Fig. 8 — normalized frequency vs core voltage")?;
        write!(f, "{table}")?;
        for ring in &self.rings {
            writeln!(
                f,
                "{}: Fnom = {} MHz, dF = {:.1} %",
                ring.label,
                fmt_mhz(ring.sweep.f_nominal_mhz),
                ring.sweep.excursion * 100.0
            )?;
        }
        Ok(())
    }
}

/// Measures one ring configuration across the sweep.
fn sweep_ring(
    label: &str,
    mut run_at: impl FnMut(f64) -> Result<f64, ExperimentError>,
) -> Result<RingSweep, ExperimentError> {
    let mut points = Vec::with_capacity(SWEEP_VOLTS.len());
    for &v in &SWEEP_VOLTS {
        points.push(SweepPoint {
            voltage: v,
            frequency_mhz: run_at(v)?,
        });
    }
    Ok(RingSweep {
        label: label.to_owned(),
        sweep: normalize_sweep(&points, NOMINAL_VOLTS)?,
    })
}

/// Runs the Fig. 8 experiment.
///
/// # Errors
///
/// Propagates ring simulation and analysis errors.
pub fn run(effort: Effort, seed: u64) -> Result<Fig8Result, ExperimentError> {
    let periods = effort.size(120, 400);
    let base = calibration::default_board();
    let mut rings = Vec::new();

    for &l in &[5usize, 80] {
        let config = IroConfig::new(l).expect("valid length");
        rings.push(sweep_ring(&format!("IRO {l}C"), |v| {
            let mut board = base.clone();
            board.set_supply(Supply::dc(v));
            Ok(measure::run_iro(&config, &board, seed, periods)?.frequency_mhz)
        })?);
    }
    for &l in &[4usize, 96] {
        let config = StrConfig::new(l, l / 2).expect("valid counts");
        rings.push(sweep_ring(&format!("STR {l}C"), |v| {
            let mut board = base.clone();
            board.set_supply(Supply::dc(v));
            Ok(measure::run_str(&config, &board, seed, periods)?.frequency_mhz)
        })?);
    }
    Ok(Fig8Result {
        rings,
        volts: SWEEP_VOLTS.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_shape_matches_paper() {
        let result = run(Effort::Quick, 1).expect("simulates");
        assert_eq!(result.rings.len(), 4);
        assert_eq!(result.volts.len(), 9);

        for ring in &result.rings {
            // Frequency rises monotonically with voltage (Fig. 8 lines).
            let series = &ring.sweep.normalized;
            for w in series.windows(2) {
                assert!(w[1].1 > w[0].1, "{}: non-monotone at {:?}", ring.label, w);
            }
            // Normalized to 1 at the nominal point.
            let nominal = series.iter().find(|p| p.0 == 1.2).expect("nominal point");
            assert!((nominal.1 - 1.0).abs() < 1e-9);
        }

        // The 96-stage STR is the least voltage sensitive; IRO 5C and
        // STR 4C are the most (paper: ~49-50% vs 37%).
        let excursion = |label: &str| {
            result
                .rings
                .iter()
                .find(|r| r.label == label)
                .expect("ring present")
                .sweep
                .excursion
        };
        assert!(excursion("STR 96C") < excursion("IRO 5C") - 0.05);
        assert!(excursion("STR 96C") < excursion("STR 4C") - 0.05);
        assert!((0.30..0.45).contains(&excursion("STR 96C")));
        assert!((0.42..0.58).contains(&excursion("IRO 5C")));

        // Display produces the table and the summary lines.
        let text = result.to_string();
        assert!(text.contains("Fig. 8"));
        assert!(text.contains("STR 96C"));
        assert!(result.normalized_series("IRO 80C").is_some());
        assert!(result.normalized_series("nope").is_none());
    }
}
