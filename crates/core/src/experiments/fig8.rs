//! Fig. 8 — normalized frequencies over the 1.0 V..1.4 V core supply
//! sweep, for IRO 5C/80C and STR 4C/96C.

use std::fmt;

use strent_analysis::frequency::{normalize_sweep, NormalizedSweep, SweepPoint};
use strent_device::Supply;
use strent_rings::{IroConfig, StrConfig};

use crate::calibration::{self, NOMINAL_VOLTS, SWEEP_VOLTS};
use crate::report::{fmt_mhz, Table};

use super::runner::{ExperimentRunner, RingSpec};
use super::{Effort, ExperimentError};

/// One ring's sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct RingSweep {
    /// Display label ("IRO 5C"...).
    pub label: String,
    /// The normalized sweep (`Fn` series and excursion).
    pub sweep: NormalizedSweep,
}

/// The full Fig. 8 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Result {
    /// One sweep per ring, in the paper's order:
    /// IRO 5C, IRO 80C, STR 4C, STR 96C.
    pub rings: Vec<RingSweep>,
    /// The swept voltages.
    pub volts: Vec<f64>,
}

impl Fig8Result {
    /// The `Fn` series of ring `label`, if present.
    #[must_use]
    pub fn normalized_series(&self, label: &str) -> Option<&[(f64, f64)]> {
        self.rings
            .iter()
            .find(|r| r.label == label)
            .map(|r| r.sweep.normalized.as_slice())
    }
}

impl fmt::Display for Fig8Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut headers = vec!["V (V)".to_owned()];
        headers.extend(self.rings.iter().map(|r| format!("Fn {}", r.label)));
        let mut table = Table::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());
        for (i, &v) in self.volts.iter().enumerate() {
            let mut row = vec![format!("{v:.2}")];
            for ring in &self.rings {
                row.push(format!("{:.4}", ring.sweep.normalized[i].1));
            }
            table.row_owned(row);
        }
        writeln!(f, "Fig. 8 — normalized frequency vs core voltage")?;
        write!(f, "{table}")?;
        for ring in &self.rings {
            writeln!(
                f,
                "{}: Fnom = {} MHz, dF = {:.1} %",
                ring.label,
                fmt_mhz(ring.sweep.f_nominal_mhz),
                ring.sweep.excursion * 100.0
            )?;
        }
        Ok(())
    }
}

/// Runs the Fig. 8 experiment on a caller-provided runner.
///
/// The (ring, voltage) grid is flattened into one job per point and
/// sharded across the runner's workers; the results are identical for
/// every thread count.
///
/// # Errors
///
/// Propagates ring simulation and analysis errors.
pub fn run_with(runner: &ExperimentRunner) -> Result<Fig8Result, ExperimentError> {
    let periods = runner.effort().size(120, 400);
    let base = calibration::default_board();

    let specs: Vec<(String, RingSpec)> = [5usize, 80]
        .iter()
        .map(|&l| {
            (
                format!("IRO {l}C"),
                RingSpec::Iro(IroConfig::new(l).expect("valid length")),
            )
        })
        .chain([4usize, 96].iter().map(|&l| {
            (
                format!("STR {l}C"),
                RingSpec::Str(StrConfig::new(l, l / 2).expect("valid counts")),
            )
        }))
        .collect();
    let jobs: Vec<(usize, f64)> = specs
        .iter()
        .enumerate()
        .flat_map(|(ri, _)| SWEEP_VOLTS.iter().map(move |&v| (ri, v)))
        .collect();

    let freqs = runner.run_stage("fig8", &jobs, |job, meter| {
        let (ri, v) = *job.config;
        let mut board = base.clone();
        board.set_supply(Supply::dc(v));
        Ok(specs[ri]
            .1
            .measure(&board, job.seed(), periods, meter)?
            .frequency_mhz)
    })?;

    let mut rings = Vec::with_capacity(specs.len());
    for (ri, (label, _)) in specs.iter().enumerate() {
        let points: Vec<SweepPoint> = SWEEP_VOLTS
            .iter()
            .zip(&freqs[ri * SWEEP_VOLTS.len()..])
            .map(|(&voltage, &frequency_mhz)| SweepPoint {
                voltage,
                frequency_mhz,
            })
            .collect();
        rings.push(RingSweep {
            label: label.clone(),
            sweep: normalize_sweep(&points, NOMINAL_VOLTS)?,
        });
    }
    Ok(Fig8Result {
        rings,
        volts: SWEEP_VOLTS.to_vec(),
    })
}

/// Runs the Fig. 8 experiment.
///
/// # Errors
///
/// Propagates ring simulation and analysis errors.
pub fn run(effort: Effort, seed: u64) -> Result<Fig8Result, ExperimentError> {
    run_with(&ExperimentRunner::new(effort, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_shape_matches_paper() {
        let result = run(Effort::Quick, 1).expect("simulates");
        assert_eq!(result.rings.len(), 4);
        assert_eq!(result.volts.len(), 9);

        for ring in &result.rings {
            // Frequency rises monotonically with voltage (Fig. 8 lines).
            let series = &ring.sweep.normalized;
            for w in series.windows(2) {
                assert!(w[1].1 > w[0].1, "{}: non-monotone at {:?}", ring.label, w);
            }
            // Normalized to 1 at the nominal point.
            let nominal = series.iter().find(|p| p.0 == 1.2).expect("nominal point");
            assert!((nominal.1 - 1.0).abs() < 1e-9);
        }

        // The 96-stage STR is the least voltage sensitive; IRO 5C and
        // STR 4C are the most (paper: ~49-50% vs 37%).
        let excursion = |label: &str| {
            result
                .rings
                .iter()
                .find(|r| r.label == label)
                .expect("ring present")
                .sweep
                .excursion
        };
        assert!(excursion("STR 96C") < excursion("IRO 5C") - 0.05);
        assert!(excursion("STR 96C") < excursion("STR 4C") - 0.05);
        assert!((0.30..0.45).contains(&excursion("STR 96C")));
        assert!((0.42..0.58).contains(&excursion("IRO 5C")));

        // Display produces the table and the summary lines.
        let text = result.to_string();
        assert!(text.contains("Fig. 8"));
        assert!(text.contains("STR 96C"));
        assert!(result.normalized_series("IRO 80C").is_some());
        assert!(result.normalized_series("nope").is_none());
    }
}
