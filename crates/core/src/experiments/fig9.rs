//! Fig. 9 — period jitter histograms for a 96-stage STR and a 5-stage
//! IRO at similar frequencies (~300 MHz), with Gaussian fits and
//! normality verdicts.

use std::fmt;

use strent_analysis::normality::{anderson_darling, chi_square_gof, jarque_bera, TestResult};
use strent_analysis::{jitter, Histogram, Summary};
use strent_rings::{measure, IroConfig, StrConfig};

use crate::calibration;
use crate::report::fmt_ps;

use super::{Effort, ExperimentError};

/// The histogram panel for one ring.
#[derive(Debug, Clone, PartialEq)]
pub struct JitterHistogram {
    /// Display label.
    pub label: String,
    /// Mean frequency, MHz.
    pub frequency_mhz: f64,
    /// Mean period, ps.
    pub mean_period_ps: f64,
    /// Period jitter `sigma_period`, ps.
    pub sigma_period_ps: f64,
    /// The period histogram.
    pub histogram: Histogram,
    /// Chi-square goodness-of-fit against the fitted normal.
    pub chi_square: TestResult,
    /// Jarque–Bera verdict.
    pub jarque_bera: TestResult,
    /// Anderson–Darling verdict.
    pub anderson_darling: TestResult,
}

impl JitterHistogram {
    fn from_periods(label: &str, periods: &[f64]) -> Result<Self, ExperimentError> {
        let summary = Summary::from_slice(periods);
        Ok(JitterHistogram {
            label: label.to_owned(),
            frequency_mhz: 1e6 / summary.mean(),
            mean_period_ps: summary.mean(),
            sigma_period_ps: jitter::period_jitter(periods)?,
            histogram: Histogram::from_data(periods, 40)?,
            chi_square: chi_square_gof(periods, 40)?,
            jarque_bera: jarque_bera(periods)?,
            anderson_darling: anderson_darling(periods)?,
        })
    }

    /// Whether all three normality tests pass at the given significance.
    #[must_use]
    pub fn is_gaussian(&self, alpha: f64) -> bool {
        self.chi_square.passes(alpha)
            && self.jarque_bera.passes(alpha)
            && self.anderson_darling.passes(alpha)
    }
}

/// The two panels of Fig. 9.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Result {
    /// Panel (a): the 96-stage STR.
    pub str_panel: JitterHistogram,
    /// Panel (b): the 5-stage IRO.
    pub iro_panel: JitterHistogram,
}

impl fmt::Display for Fig9Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 9 — period jitter histograms")?;
        for panel in [&self.str_panel, &self.iro_panel] {
            writeln!(
                f,
                "\n({}) F = {:.1} MHz, T = {}, sigma_period = {}",
                panel.label,
                panel.frequency_mhz,
                fmt_ps(panel.mean_period_ps),
                fmt_ps(panel.sigma_period_ps)
            )?;
            writeln!(
                f,
                "normality: chi2 p={:.3}, JB p={:.3}, AD p={:.3} -> {}",
                panel.chi_square.p_value,
                panel.jarque_bera.p_value,
                panel.anderson_darling.p_value,
                if panel.is_gaussian(0.01) {
                    "GAUSSIAN"
                } else {
                    "NOT GAUSSIAN"
                }
            )?;
            write!(f, "{}", panel.histogram.to_ascii(48))?;
        }
        Ok(())
    }
}

/// Runs the Fig. 9 experiment.
///
/// # Errors
///
/// Propagates ring simulation and analysis errors.
pub fn run(effort: Effort, seed: u64) -> Result<Fig9Result, ExperimentError> {
    let periods = effort.size(3_000, 20_000);
    let board = calibration::default_board();
    let str_run = measure::run_str(
        &StrConfig::new(96, 48).expect("valid counts"),
        &board,
        seed,
        periods,
    )?;
    let iro_run = measure::run_iro(
        &IroConfig::new(5).expect("valid length"),
        &board,
        seed,
        periods,
    )?;
    Ok(Fig9Result {
        str_panel: JitterHistogram::from_periods("96-stage STR", &str_run.periods_ps)?,
        iro_panel: JitterHistogram::from_periods("5-stage IRO", &iro_run.periods_ps)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_both_panels_are_gaussian() {
        let result = run(Effort::Quick, 3).expect("simulates");
        // Both rings sit in the ~300-400 MHz region like the paper's.
        assert!((250.0..450.0).contains(&result.str_panel.frequency_mhz));
        assert!((250.0..450.0).contains(&result.iro_panel.frequency_mhz));
        // Jitter magnitudes: STR in the 2-4 ps band, IRO near
        // sqrt(10)*2 ~ 6.3 ps.
        assert!(
            (2.0..4.5).contains(&result.str_panel.sigma_period_ps),
            "STR sigma {}",
            result.str_panel.sigma_period_ps
        );
        assert!(
            (5.0..8.0).contains(&result.iro_panel.sigma_period_ps),
            "IRO sigma {}",
            result.iro_panel.sigma_period_ps
        );
        // The paper's observation: both histograms are Gaussian.
        assert!(result.str_panel.is_gaussian(0.001));
        assert!(result.iro_panel.is_gaussian(0.001));
        // Histograms hold every period.
        assert_eq!(result.str_panel.histogram.total(), 3_000);

        let text = result.to_string();
        assert!(text.contains("GAUSSIAN"));
        assert!(text.contains("96-stage STR"));
    }
}
