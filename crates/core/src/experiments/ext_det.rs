//! EXT-DET — deterministic jitter accumulation (Sec. IV-B of the paper).
//!
//! Ref \[2\] showed that global deterministic jitter accumulates *linearly*
//! through an IRO, while the paper argues the STR strongly attenuates
//! it. Here we modulate the core supply sinusoidally and lock-in detect
//! the deterministic component of the period series as the ring length
//! grows: the IRO's absolute deterministic amplitude scales with its
//! (length-proportional) period, while the STR's stays nearly flat and
//! small — each token's spacing, not the full revolution, carries it.

use std::fmt;

use strent_rings::{IroConfig, StrConfig};
use strent_trng::attack::{probe_response_metered, ModulationResponse};
use strent_trng::elementary::EntropySource;

use crate::calibration;
use crate::report::{fmt_ps, Table};

use super::runner::ExperimentRunner;
use super::{Effort, ExperimentError};

/// The modulation applied in this experiment: ±1% of the nominal 1.2 V.
pub const SUPPLY_AMPLITUDE_V: f64 = 0.012;

/// The modulation frequency, MHz. Slow relative to every probed ring's
/// period (the 80-stage IRO's period is 43.5 ns), so the per-period
/// response is not sinc-filtered away by intra-period averaging.
pub const MODULATION_MHZ: f64 = 5.0;

/// One ring's measured response.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtDetRow {
    /// Display label.
    pub label: String,
    /// Ring length.
    pub length: usize,
    /// The measured response.
    pub response: ModulationResponse,
}

/// The EXT-DET result set.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtDetResult {
    /// IRO rows in increasing length.
    pub iro_rows: Vec<ExtDetRow>,
    /// STR rows in increasing length.
    pub str_rows: Vec<ExtDetRow>,
}

impl fmt::Display for ExtDetResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EXT-DET — deterministic period modulation under a {:.1}% / {} MHz supply attack",
            SUPPLY_AMPLITUDE_V / 1.2 * 100.0,
            MODULATION_MHZ
        )?;
        let mut table = Table::new(&["Ring", "T (ps)", "A_det", "sigma_random", "det/random"]);
        for row in self.iro_rows.iter().chain(&self.str_rows) {
            table.row_owned(vec![
                row.label.clone(),
                format!("{:.0}", row.response.mean_period_ps),
                fmt_ps(row.response.det_amplitude_ps),
                fmt_ps(row.response.sigma_random_ps),
                format!("{:.2}", row.response.det_to_random_ratio()),
            ]);
        }
        write!(f, "{table}")
    }
}

/// Runs the EXT-DET experiment on a caller-provided runner: one sharded
/// job per probed ring (three IRO lengths, three STR lengths).
///
/// # Errors
///
/// Propagates ring simulation and analysis errors.
pub fn run_with(runner: &ExperimentRunner) -> Result<ExtDetResult, ExperimentError> {
    let periods = runner.effort().size(1_200, 4_000);
    let board = calibration::default_board();
    let sources: Vec<(String, usize, EntropySource)> = [5usize, 25, 80]
        .iter()
        .map(|&l| {
            (
                format!("IRO {l}C"),
                l,
                EntropySource::Iro(IroConfig::new(l).expect("valid length")),
            )
        })
        .chain([8usize, 32, 96].iter().map(|&l| {
            (
                format!("STR {l}C"),
                l,
                EntropySource::Str(StrConfig::new(l, l / 2).expect("valid counts")),
            )
        }))
        .collect();
    let mut rows = runner.run_stage("ext_det", &sources, |job, meter| {
        let (label, length, source) = job.config;
        let (response, stats) = probe_response_metered(
            source,
            &board,
            SUPPLY_AMPLITUDE_V,
            MODULATION_MHZ,
            job.seed(),
            periods,
        )?;
        meter.record_sim(stats);
        Ok(ExtDetRow {
            label: label.clone(),
            length: *length,
            response,
        })
    })?;
    let str_rows = rows.split_off(3);
    Ok(ExtDetResult {
        iro_rows: rows,
        str_rows,
    })
}

/// Runs the EXT-DET experiment.
///
/// # Errors
///
/// Propagates ring simulation and analysis errors.
pub fn run(effort: Effort, seed: u64) -> Result<ExtDetResult, ExperimentError> {
    run_with(&ExperimentRunner::new(effort, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_jitter_accumulates_in_iros_not_strs() {
        let result = run(Effort::Quick, 6).expect("simulates");
        // IRO: deterministic amplitude grows strongly with length...
        let iro_first = &result.iro_rows.first().expect("rows").response;
        let iro_last = &result.iro_rows.last().expect("rows").response;
        assert!(
            iro_last.det_amplitude_ps > 4.0 * iro_first.det_amplitude_ps,
            "IRO det: {} -> {}",
            iro_first.det_amplitude_ps,
            iro_last.det_amplitude_ps
        );
        // ...while the STR's stays bounded: the 96-stage STR sees far
        // less deterministic jitter than the 80-stage IRO.
        let str_last = &result.str_rows.last().expect("rows").response;
        assert!(
            str_last.det_amplitude_ps < iro_last.det_amplitude_ps / 4.0,
            "STR 96 det {} vs IRO 80 det {}",
            str_last.det_amplitude_ps,
            iro_last.det_amplitude_ps
        );
        // Figure of merit: at large L the IRO's det/random ratio dwarfs
        // the STR's (the attack surface the paper warns about).
        assert!(
            iro_last.det_to_random_ratio() > 2.0 * str_last.det_to_random_ratio(),
            "IRO ratio {} vs STR ratio {}",
            iro_last.det_to_random_ratio(),
            str_last.det_to_random_ratio()
        );
        let text = result.to_string();
        assert!(text.contains("EXT-DET"));
    }
}
