//! Fig. 7 — the Charlie diagram: the stage delay as a function of the
//! input separation time, plus a hyperbola fit recovering `(Ds,
//! Dcharlie)` and a cross-check against effective delays measured from
//! simulated rings.

use std::fmt;

use strent_analysis::fit::{charlie_hyperbola, CharlieFit};
use strent_device::Technology;
use strent_rings::{measure, CharlieModel, StrConfig};

use crate::calibration;
use crate::report::{fmt_ps, Table};

use super::{Effort, ExperimentError};

/// The reproduced Fig. 7.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Result {
    /// The analytic `(s, charlie(s))` series.
    pub diagram: Vec<(f64, f64)>,
    /// The hyperbola fit recovered from the diagram points.
    pub fit: CharlieFit,
    /// The technology's true parameters, for comparison: `(Ds, Dch)`.
    pub true_params_ps: (f64, f64),
    /// Effective per-stage delays measured from simulated rings at
    /// `NT = NB` (separation 0): `(length, measured Deff, predicted
    /// charlie(0))`.
    pub measured_deff: Vec<(usize, f64, f64)>,
    /// The *measured* Charlie diagram: sweeping `NT` on an unbalanced
    /// ring sets a nonzero steady separation, so simulation alone
    /// traces the curve. Points are `(half-separation delta in ps,
    /// delay from the mean input arrival in ps)` = `(h (NB-NT)/(2L),
    /// h/2)` per the timing-closure identities.
    pub measured_diagram: Vec<(f64, f64)>,
    /// The hyperbola fit of the measured diagram — `(Ds, Dcharlie)`
    /// recovered from simulation with no analytic input.
    pub measured_fit: CharlieFit,
}

impl fmt::Display for Fig7Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 7 — Charlie diagram")?;
        let mut table = Table::new(&["s (ps)", "charlie(s) (ps)"]);
        // Print a readable subset of the curve.
        for chunk in self.diagram.chunks(self.diagram.len().div_ceil(13).max(1)) {
            let (s, d) = chunk[0];
            table.row_owned(vec![format!("{s:.0}"), format!("{d:.1}")]);
        }
        write!(f, "{table}")?;
        writeln!(
            f,
            "hyperbola fit: Ds = {}, Dcharlie = {} (true: Ds = {}, Dcharlie = {})",
            fmt_ps(self.fit.static_delay_ps),
            fmt_ps(self.fit.charlie_delay_ps),
            fmt_ps(self.true_params_ps.0),
            fmt_ps(self.true_params_ps.1),
        )?;
        writeln!(f, "\nmeasured effective stage delay at s = 0 (NT = NB rings):")?;
        let mut table = Table::new(&["L", "Deff measured", "charlie(0) predicted"]);
        for &(l, measured, predicted) in &self.measured_deff {
            table.row_owned(vec![
                l.to_string(),
                fmt_ps(measured),
                fmt_ps(predicted),
            ]);
        }
        write!(f, "{table}")?;
        writeln!(
            f,
            "\nmeasured Charlie diagram (NT sweep on a 32-stage ring):"
        )?;
        let mut table = Table::new(&["delta (ps)", "delay from mean (ps)"]);
        for &(delta, delay) in &self.measured_diagram {
            table.row_owned(vec![format!("{delta:.1}"), format!("{delay:.1}")]);
        }
        write!(f, "{table}")?;
        writeln!(
            f,
            "fit of measured points: Ds = {}, Dcharlie = {} (true: Ds = {}, Dcharlie = {})",
            fmt_ps(self.measured_fit.static_delay_ps),
            fmt_ps(self.measured_fit.charlie_delay_ps),
            fmt_ps(self.true_params_ps.0),
            fmt_ps(self.true_params_ps.1),
        )
    }
}

/// Runs the Fig. 7 experiment.
///
/// # Errors
///
/// Propagates ring simulation and fit errors.
pub fn run(effort: Effort, seed: u64) -> Result<Fig7Result, ExperimentError> {
    let tech = Technology::cyclone_iii();
    let model = CharlieModel::new(tech.lut_delay_ps(), tech.charlie_delay_ps())?;
    let diagram = model.diagram(600.0, effort.size(30, 120));
    let (s, d): (Vec<f64>, Vec<f64>) = diagram.iter().copied().unzip();
    let fit = charlie_hyperbola(&s, &d)?;

    // Cross-check: a noise-free NT = NB ring runs every stage at
    // separation 0, so its period directly measures charlie(0):
    // T = 2 L Deff / NT  =>  Deff = T NT / (2L).
    let board = calibration::ideal_board();
    let periods = effort.size(100, 300);
    let mut measured_deff = Vec::new();
    for &l in &[8usize, 16, 32] {
        let config = StrConfig::new(l, l / 2)
            .expect("valid counts")
            .with_routing_ps(0.0)?;
        let run = measure::run_str(&config, &board, seed, periods)?;
        let t = 1e6 / run.frequency_mhz;
        let deff = t * (l as f64 / 2.0) / (2.0 * l as f64);
        measured_deff.push((l, deff, model.charlie_delay(0.0)));
    }

    // The measured Charlie diagram: sweep NT on a 32-stage ring. In
    // the evenly-spaced steady state every stage fires at interval
    // h = T/2, the enabling inputs arrive with half-difference
    // delta = h (NB - NT) / (2L), and the firing delay measured from
    // the mean arrival is exactly h/2 — so each token count yields one
    // (delta, delay) sample of the Charlie surface, from timestamps
    // alone.
    let l = 32usize;
    let mut measured_diagram = Vec::new();
    for tokens in (4..=28).step_by(2) {
        let config = StrConfig::new(l, tokens)
            .expect("valid counts")
            .with_routing_ps(0.0)?;
        let run = measure::run_str(&config, &board, seed, periods)?;
        let h = (1e6 / run.frequency_mhz) / 2.0;
        let delta = h * (l as f64 - 2.0 * tokens as f64) / (2.0 * l as f64);
        measured_diagram.push((delta, h / 2.0));
    }
    measured_diagram.sort_by(|a, b| a.0.total_cmp(&b.0));
    let (ms, md): (Vec<f64>, Vec<f64>) = measured_diagram.iter().copied().unzip();
    let measured_fit = charlie_hyperbola(&ms, &md)?;

    Ok(Fig7Result {
        diagram,
        fit,
        true_params_ps: (tech.lut_delay_ps(), tech.charlie_delay_ps()),
        measured_deff,
        measured_diagram,
        measured_fit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_fit_recovers_technology_parameters() {
        let result = run(Effort::Quick, 1).expect("simulates");
        // The fit inverts Eq. 3 exactly on analytic points.
        assert!((result.fit.static_delay_ps - result.true_params_ps.0).abs() < 0.01);
        assert!((result.fit.charlie_delay_ps - result.true_params_ps.1).abs() < 0.01);
        // The diagram is symmetric with its minimum at s = 0.
        let min = result
            .diagram
            .iter()
            .cloned()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty");
        assert_eq!(min.0, 0.0);
        // Simulated rings confirm charlie(0) within 2%.
        for &(l, measured, predicted) in &result.measured_deff {
            assert!(
                (measured / predicted - 1.0).abs() < 0.02,
                "L={l}: Deff {measured} vs {predicted}"
            );
        }
        // The measured diagram (pure simulation, NT sweep) recovers the
        // technology parameters through the hyperbola fit.
        assert_eq!(result.measured_diagram.len(), 13);
        assert!(
            (result.measured_fit.static_delay_ps - result.true_params_ps.0).abs() < 3.0,
            "measured Ds {}",
            result.measured_fit.static_delay_ps
        );
        assert!(
            (result.measured_fit.charlie_delay_ps - result.true_params_ps.1).abs() < 3.0,
            "measured Dcharlie {}",
            result.measured_fit.charlie_delay_ps
        );
        // The measured points themselves lie on the Charlie surface:
        // delay(delta) = Ds + sqrt(Dch^2 + delta^2).
        for &(delta, delay) in &result.measured_diagram {
            let expected = result.true_params_ps.0
                + (result.true_params_ps.1.powi(2) + delta * delta).sqrt();
            assert!(
                (delay / expected - 1.0).abs() < 0.02,
                "delta {delta}: {delay} vs {expected}"
            );
        }
        let text = result.to_string();
        assert!(text.contains("Fig. 7"));
        assert!(text.contains("hyperbola fit"));
        assert!(text.contains("measured Charlie diagram"));
    }
}
