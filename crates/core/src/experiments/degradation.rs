//! EXT-DEGRADATION — the fault-injection campaign: online health tests
//! against every fault class, on both ring families.
//!
//! The robustness claim of a ring-based TRNG is not "it never fails"
//! but "its online tests notice when it does" (SP 800-90B §4.4). This
//! experiment drives the STR-32 and IRO-32 pipelines through the four
//! fault classes of `strent_sim::fault` — stuck-at clamps, glitch
//! bursts, delay drift (aging) and supply droop — and measures the
//! **detection latency** of the RCT and APT monitors sampling the ring
//! output, plus the STR's phase re-lock once a transient fault clears.
//!
//! Monitor model: the output trace is sampled mid-tick at one eighth of
//! the healthy period, so a healthy ring yields runs of ~4 identical
//! samples (far below the RCT cutoff of 22 at `H = 1`) and a balanced
//! APT window. The fault onset is aligned to an APT window boundary so
//! "within one window" is a meaningful latency bound.

use std::fmt;

use strent_rings::fault::{self as ring_fault, DegradedRun};
use strent_rings::{analytic, IroConfig, StrConfig};
use strent_sim::{Bit, FaultPlan, Time};
use strent_trng::health::{
    self, AdaptiveProportionTest, RepetitionCountTest, APT_WINDOW,
};
use strent_trng::BitString;

use crate::calibration;
use crate::report::Table;

use super::runner::ExperimentRunner;
use super::{Effort, ExperimentError};

/// The claimed per-bit min-entropy the monitors are configured for.
///
/// Shared with the serving layer ([`crate::pool`]) so the health
/// cutoffs a served source is gated by are exactly the ones this
/// experiment characterizes (see `docs/serving.md`).
pub const CLAIMED_H: f64 = 1.0;

/// Monitor samples per healthy half-period is this over two.
const SAMPLES_PER_PERIOD: f64 = 8.0;

/// The ring under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RingKind {
    /// 32-stage self-timed ring, NT = NB = 16 (evenly-spaced mode).
    Str32,
    /// 32-stage inverter ring.
    Iro32,
}

impl RingKind {
    fn label(self) -> &'static str {
        match self {
            RingKind::Str32 => "STR-32",
            RingKind::Iro32 => "IRO-32",
        }
    }

    /// The name of the watched output net (`StrHandle::output` is stage
    /// 0's net; `IroHandle::output` is the last stage's).
    fn output_net(self) -> &'static str {
        match self {
            RingKind::Str32 => "str0",
            RingKind::Iro32 => "iro31",
        }
    }

    fn stage_count(self) -> usize {
        32
    }
}

/// The injected fault class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultClass {
    StuckAt,
    GlitchBurst,
    DelayDrift,
    SupplyDroop,
}

impl FaultClass {
    fn label(self) -> &'static str {
        match self {
            FaultClass::StuckAt => "stuck-at",
            FaultClass::GlitchBurst => "glitch burst",
            FaultClass::DelayDrift => "delay drift",
            FaultClass::SupplyDroop => "supply droop",
        }
    }
}

/// One (ring, fault) campaign outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationRow {
    /// Ring label (`STR-32` / `IRO-32`).
    pub ring: String,
    /// Fault-class label.
    pub fault: String,
    /// Monitor samples before the fault onset.
    pub pre_onset_samples: usize,
    /// Monitor samples after the fault onset.
    pub post_onset_samples: usize,
    /// Samples from onset to the first RCT alarm, if any.
    pub rct_latency: Option<usize>,
    /// Samples from onset to the first APT alarm, if any.
    pub apt_latency: Option<usize>,
    /// Health-test alarms before the onset (false positives).
    pub pre_onset_alarms: u64,
    /// Rising-interval CV after a transient fault cleared (stuck-at
    /// rows only) — the re-lock figure of merit.
    pub relock_cv: Option<f64>,
    /// Simulator events dispatched for this campaign.
    pub events_dispatched: u64,
}

impl DegradationRow {
    /// Whether the fault class was caught by the monitor that owns it:
    /// persistent/slow faults (stuck-at, drift, droop) by the RCT, the
    /// biased glitch burst by the APT within one window.
    #[must_use]
    pub fn detected(&self) -> bool {
        match self.fault.as_str() {
            "glitch burst" => self
                .apt_latency
                .is_some_and(|l| l < APT_WINDOW as usize),
            _ => self.rct_latency.is_some(),
        }
    }
}

/// The EXT-DEGRADATION result set.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationResult {
    /// One row per (ring, fault class), rings outermost.
    pub rows: Vec<DegradationRow>,
    /// The RCT cutoff the monitors ran with.
    pub rct_cutoff: u32,
    /// The APT cutoff the monitors ran with.
    pub apt_cutoff: u32,
}

impl fmt::Display for DegradationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EXT-DEGRADATION — fault injection vs online health tests"
        )?;
        writeln!(
            f,
            "(RCT cutoff {}, APT cutoff {}/{} at claimed H = 1)",
            self.rct_cutoff, self.apt_cutoff, APT_WINDOW
        )?;
        let mut table = Table::new(&[
            "Ring",
            "Fault",
            "RCT latency",
            "APT latency",
            "pre-onset alarms",
            "re-lock CV",
            "detected",
        ]);
        let fmt_latency =
            |l: Option<usize>| l.map_or_else(|| "-".to_owned(), |v| format!("{v}"));
        for row in &self.rows {
            table.row_owned(vec![
                row.ring.clone(),
                row.fault.clone(),
                fmt_latency(row.rct_latency),
                fmt_latency(row.apt_latency),
                row.pre_onset_alarms.to_string(),
                row.relock_cv
                    .map_or_else(|| "-".to_owned(), |cv| format!("{cv:.4}")),
                if row.detected() { "yes" } else { "NO" }.to_owned(),
            ]);
        }
        write!(f, "{table}")
    }
}

/// The per-campaign geometry, all in monitor ticks (one tick is an
/// eighth of the healthy period).
struct Geometry {
    /// Ticks before the fault onset (a whole number of APT windows, so
    /// the onset lands on a window boundary).
    pre: usize,
    /// Ticks after the onset.
    post: usize,
    /// Tick length, ps.
    tick_ps: f64,
    /// First monitored instant (warm-up skipped), ps.
    t0_ps: f64,
    /// Fault onset, ps.
    onset_ps: f64,
    /// Simulation horizon, ps.
    horizon_ps: f64,
}

impl Geometry {
    fn new(effort: Effort, period_ps: f64) -> Self {
        let window = APT_WINDOW as usize;
        let pre = window;
        let post = effort.size(window + window / 2, 2 * window);
        let tick_ps = period_ps / SAMPLES_PER_PERIOD;
        let t0_ps = 32.0 * period_ps;
        let onset_ps = t0_ps + pre as f64 * tick_ps;
        let horizon_ps = t0_ps + (pre + post + 16) as f64 * tick_ps;
        Geometry {
            pre,
            post,
            tick_ps,
            t0_ps,
            onset_ps,
            horizon_ps,
        }
    }

    /// The instant of monitor tick `i` — mid-tick, so a sample never
    /// sits exactly on a forcing-window edge.
    fn tick_at(&self, i: usize) -> f64 {
        self.t0_ps + (i as f64 + 0.5) * self.tick_ps
    }
}

/// Builds the fault plan for one campaign.
fn plan_for(
    ring: RingKind,
    fault: FaultClass,
    geo: &Geometry,
    seed: u64,
) -> Result<FaultPlan, ExperimentError> {
    let plan = FaultPlan::new(seed);
    let tick = geo.tick_ps;
    let onset = geo.onset_ps;
    let plan = match fault {
        // A clamp held for 256 ticks (32 periods), then released: the
        // transient whose recovery the re-lock check watches.
        FaultClass::StuckAt => plan.with_stuck_at(
            ring.output_net(),
            Bit::Low,
            onset,
            onset + 256.0 * tick,
        )?,
        // Pulses forcing ones on ~75% of the post-onset span: the
        // sampled stream carries ~87.5% ones, far past the APT cutoff.
        FaultClass::GlitchBurst => plan.with_glitch_burst(
            ring.output_net(),
            Bit::High,
            onset,
            geo.post / 2,
            2.0 * tick,
            1.5 * tick,
        )?,
        // Uniform aging: every stage's delays ramp to 8x over 32
        // periods, stretching healthy 4-sample runs to ~32 — past the
        // RCT cutoff of 22.
        FaultClass::DelayDrift => {
            let mut plan = plan;
            for stage in 0..ring.stage_count() {
                plan = plan.with_delay_drift(stage, onset, 8.0, 256.0 * tick)?;
            }
            plan
        }
        // The rail sags 1.2 V -> 0.52 V for the rest of the run; the
        // blended transistor/RC delay model slows the ring ~10x.
        FaultClass::SupplyDroop => {
            plan.with_supply_droop(onset, 0.68, geo.horizon_ps + tick)?
        }
    };
    Ok(plan)
}

/// Samples the output trace on the monitor grid.
fn monitor_bits(run: &DegradedRun, geo: &Geometry) -> BitString {
    (0..geo.pre + geo.post)
        .map(|i| u8::from(run.trace.value_at(Time::from_ps(geo.tick_at(i))) == Bit::High))
        .collect()
}

/// Runs the EXT-DEGRADATION campaign on a caller-provided runner: one
/// job per (ring, fault class).
///
/// # Errors
///
/// Propagates ring-simulation and health-test configuration errors.
pub fn run_with(runner: &ExperimentRunner) -> Result<DegradationResult, ExperimentError> {
    let effort = runner.effort();
    let board = calibration::default_board();
    let str_config = StrConfig::new(32, 16).expect("valid counts");
    let iro_config = IroConfig::new(32).expect("valid length");

    let scenarios: Vec<(RingKind, FaultClass)> = [RingKind::Str32, RingKind::Iro32]
        .into_iter()
        .flat_map(|ring| {
            [
                FaultClass::StuckAt,
                FaultClass::GlitchBurst,
                FaultClass::DelayDrift,
                FaultClass::SupplyDroop,
            ]
            .into_iter()
            .map(move |fault| (ring, fault))
        })
        .collect();

    let rows = runner.run_stage("degradation", &scenarios, |job, meter| {
        let (ring, fault) = *job.config;
        let period_ps = match ring {
            RingKind::Str32 => analytic::str_period_general_ps(&str_config, &board),
            RingKind::Iro32 => analytic::iro_period_ps(&iro_config, &board),
        };
        let geo = Geometry::new(effort, period_ps);
        let plan = plan_for(ring, fault, &geo, job.seed())?;
        let run = match ring {
            RingKind::Str32 => ring_fault::run_str_degraded(
                &str_config,
                &board,
                job.seed(),
                geo.horizon_ps,
                &plan,
            )?,
            RingKind::Iro32 => ring_fault::run_iro_degraded(
                &iro_config,
                &board,
                job.seed(),
                geo.horizon_ps,
                &plan,
            )?,
        };
        meter.record_sim(run.stats);
        let bits = monitor_bits(&run, &geo);
        let latency = health::alarm_latency(&bits, CLAIMED_H, geo.pre)?;
        // Re-lock: once the stuck-at clamp (released after 256 ticks =
        // 32 periods) clears, a healthy ring settles back to a tight
        // rising-interval CV. Judged over the final stretch, leaving
        // 64 periods of recovery slack.
        let relock_cv = if fault == FaultClass::StuckAt {
            ring_fault::rising_interval_cv(
                &run.trace,
                geo.onset_ps + (256.0 + 512.0) * geo.tick_ps,
                geo.horizon_ps,
            )
        } else {
            None
        };
        Ok(DegradationRow {
            ring: ring.label().to_owned(),
            fault: fault.label().to_owned(),
            pre_onset_samples: geo.pre,
            post_onset_samples: geo.post,
            rct_latency: latency.rct_latency,
            apt_latency: latency.apt_latency,
            pre_onset_alarms: latency.rct_before_onset + latency.apt_before_onset,
            relock_cv,
            events_dispatched: run.stats.events_processed,
        })
    })?;

    Ok(DegradationResult {
        rows,
        rct_cutoff: RepetitionCountTest::for_min_entropy(CLAIMED_H)?.cutoff(),
        apt_cutoff: AdaptiveProportionTest::for_min_entropy(CLAIMED_H)?.cutoff(),
    })
}

/// Runs the EXT-DEGRADATION experiment.
///
/// # Errors
///
/// Propagates ring-simulation and health-test configuration errors.
pub fn run(effort: Effort, seed: u64) -> Result<DegradationResult, ExperimentError> {
    run_with(&ExperimentRunner::new(effort, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::PAPER_SEED;

    #[test]
    fn every_fault_class_is_detected() {
        let result = run(Effort::Quick, PAPER_SEED).expect("simulates");
        assert_eq!(result.rows.len(), 8, "2 rings x 4 fault classes");
        assert_eq!(result.rct_cutoff, 22);
        for row in &result.rows {
            assert_eq!(
                row.pre_onset_alarms, 0,
                "{} / {}: no false alarms before the onset",
                row.ring, row.fault
            );
            assert!(row.detected(), "{} / {} undetected", row.ring, row.fault);
            assert!(row.events_dispatched > 0);
        }
        // Latency bounds per fault class.
        for row in &result.rows {
            match row.fault.as_str() {
                "stuck-at" => {
                    let l = row.rct_latency.expect("detected");
                    assert!(
                        l <= result.rct_cutoff as usize,
                        "{}: stuck-at RCT latency {l} within the cutoff",
                        row.ring
                    );
                }
                "glitch burst" => {
                    let l = row.apt_latency.expect("detected");
                    assert!(
                        l < APT_WINDOW as usize,
                        "{}: glitch APT latency {l} within one window",
                        row.ring
                    );
                }
                "delay drift" => {
                    let l = row.rct_latency.expect("detected");
                    assert!(l < 512, "{}: drift RCT latency {l}", row.ring);
                }
                "supply droop" => {
                    let l = row.rct_latency.expect("detected");
                    assert!(l < 128, "{}: droop RCT latency {l}", row.ring);
                }
                other => panic!("unexpected fault label {other}"),
            }
        }
        // The STR re-locks after the stuck-at transient clears.
        let str_stuck = result
            .rows
            .iter()
            .find(|r| r.ring == "STR-32" && r.fault == "stuck-at")
            .expect("present");
        let cv = str_stuck.relock_cv.expect("post-recovery edges");
        assert!(cv < 0.05, "STR-32 re-locks after the clamp, cv = {cv}");
        let text = result.to_string();
        assert!(text.contains("EXT-DEGRADATION"));
        assert!(text.contains("stuck-at"));
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = run(Effort::Quick, 7).expect("simulates");
        let b = run(Effort::Quick, 7).expect("simulates");
        assert_eq!(a, b, "same seed replays bit-identically");
    }
}
