//! Fig. 11 — IRO period jitter vs ring length: the sqrt(2L) law and the
//! extraction of the per-gate jitter `sigma_g`.

use std::fmt;

use strent_analysis::fit::{sqrt_law, SqrtFit};
use strent_analysis::jitter;
use strent_rings::{measure, IroConfig};

use crate::calibration::{self, FIG11_LENGTHS};
use crate::report::{fmt_mhz, fmt_ps, Table};

use super::{Effort, ExperimentError};

/// One measured point of Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig11Point {
    /// Ring length `k`.
    pub length: usize,
    /// Mean frequency, MHz.
    pub frequency_mhz: f64,
    /// Measured period jitter, ps.
    pub sigma_period_ps: f64,
    /// The per-point `sigma_g` back-computed via Eq. 7
    /// (`sigma_g = sigma_p / sqrt(2k)`).
    pub sigma_g_ps: f64,
}

/// The reproduced Fig. 11.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Result {
    /// Measured points in increasing length.
    pub points: Vec<Fig11Point>,
    /// The fitted `sigma_p = c sqrt(k)` law.
    pub fit: SqrtFit,
}

impl Fig11Result {
    /// The `sigma_g` extracted from the global fit
    /// (`c = sqrt(2) sigma_g`).
    #[must_use]
    pub fn fitted_sigma_g_ps(&self) -> f64 {
        self.fit.coefficient / std::f64::consts::SQRT_2
    }
}

impl fmt::Display for Fig11Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 11 — IRO period jitter vs number of stages")?;
        let mut table = Table::new(&["k", "F (MHz)", "sigma_p", "sigma_g (Eq. 7)"]);
        for p in &self.points {
            table.row_owned(vec![
                p.length.to_string(),
                fmt_mhz(p.frequency_mhz),
                fmt_ps(p.sigma_period_ps),
                fmt_ps(p.sigma_g_ps),
            ]);
        }
        write!(f, "{table}")?;
        writeln!(
            f,
            "sqrt-law fit: sigma_p = {:.3} * sqrt(k) (R^2 = {:.4}) -> sigma_g ~ {}",
            self.fit.coefficient,
            self.fit.r_squared,
            fmt_ps(self.fitted_sigma_g_ps())
        )
    }
}

/// Runs the Fig. 11 experiment.
///
/// # Errors
///
/// Propagates ring simulation and analysis errors.
pub fn run(effort: Effort, seed: u64) -> Result<Fig11Result, ExperimentError> {
    let periods = effort.size(1_500, 8_000);
    let board = calibration::default_board();
    let mut points = Vec::new();
    for &l in &FIG11_LENGTHS {
        let config = IroConfig::new(l).expect("valid length");
        let run = measure::run_iro(&config, &board, seed, periods)?;
        let sigma = jitter::period_jitter(&run.periods_ps)?;
        points.push(Fig11Point {
            length: l,
            frequency_mhz: run.frequency_mhz,
            sigma_period_ps: sigma,
            sigma_g_ps: sigma / (2.0 * l as f64).sqrt(),
        });
    }
    let k: Vec<f64> = points.iter().map(|p| p.length as f64).collect();
    let sigma: Vec<f64> = points.iter().map(|p| p.sigma_period_ps).collect();
    Ok(Fig11Result {
        fit: sqrt_law(&k, &sigma)?,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_reproduces_the_sqrt_law() {
        let result = run(Effort::Quick, 5).expect("simulates");
        assert_eq!(result.points.len(), 8);
        // Jitter grows with length...
        assert!(result.points.last().expect("points").sigma_period_ps
            > 3.0 * result.points.first().expect("points").sigma_period_ps);
        // ...following the sqrt law tightly...
        assert!(result.fit.r_squared > 0.98, "R^2 {}", result.fit.r_squared);
        // ...and the extracted sigma_g matches the paper's ~2 ps.
        let sigma_g = result.fitted_sigma_g_ps();
        assert!((sigma_g - 2.0).abs() < 0.3, "sigma_g {sigma_g}");
        // Every per-point back-computation agrees too (Eq. 7).
        for p in &result.points {
            assert!((p.sigma_g_ps - 2.0).abs() < 0.5, "k={}: {}", p.length, p.sigma_g_ps);
        }
        let text = result.to_string();
        assert!(text.contains("Fig. 11"));
        assert!(text.contains("sqrt-law fit"));
    }
}
