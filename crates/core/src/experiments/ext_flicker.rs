//! EXT-FLICKER — what low-frequency (1/f-like) delay noise would do to
//! the paper's measurements.
//!
//! The paper's temporal model (and its ref \[2\]'s accumulation laws)
//! assume *white* per-crossing jitter. Real gates also carry slow delay
//! noise. We enable the Ornstein–Uhlenbeck flicker extension of the
//! device model on an IRO and compare against the white baseline:
//!
//! * the **Allan deviation** of the period series: white noise falls as
//!   `1/sqrt(m)`; flicker bends the curve up toward a bump at averaging
//!   windows comparable to its correlation time — the standard
//!   diagnostic separating the two;
//! * the **Eq. 6 divider method**: with flicker, the `osc_mes`
//!   cycle-to-cycle deviation picks up the slow component, inflating
//!   the `sigma_p` estimate as the divider setting grows — another
//!   hidden failure mode of the method (complementary to the STR
//!   anti-correlation bias of EXT-METHOD).

use std::fmt;

use strent_analysis::{allan, divider, jitter};
use strent_device::{Board, Technology};
use strent_rings::{measure, IroConfig};
use strent_sim::SimStats;

use crate::calibration::PAPER_SEED;
use crate::report::{fmt_ps, Table};

use super::runner::ExperimentRunner;
use super::{Effort, ExperimentError};

/// Flicker magnitude enabled in the "flicker" arm (relative stationary
/// sigma per stage).
pub const FLICKER_REL_SIGMA: f64 = 0.002;

/// Flicker correlation time, ps (1 microsecond).
pub const FLICKER_TAU_PS: f64 = 1.0e6;

/// One arm of the comparison (white or flicker).
#[derive(Debug, Clone, PartialEq)]
pub struct FlickerArm {
    /// Display label.
    pub label: String,
    /// Direct period jitter, ps.
    pub sigma_direct_ps: f64,
    /// `(averaging factor m, Allan deviation in ps)`.
    pub allan_curve: Vec<(usize, f64)>,
    /// `(divider setting n, Eq. 6 sigma_p estimate in ps)`.
    pub divider_estimates: Vec<(usize, f64)>,
}

/// The EXT-FLICKER result set.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtFlickerResult {
    /// The white-noise baseline (the paper's model).
    pub white: FlickerArm,
    /// The flicker-enabled arm.
    pub flicker: FlickerArm,
}

impl ExtFlickerResult {
    /// The Allan deviation of an arm at averaging factor `m`, if probed.
    #[must_use]
    pub fn adev_at(arm: &FlickerArm, m: usize) -> Option<f64> {
        arm.allan_curve
            .iter()
            .find(|&&(mm, _)| mm == m)
            .map(|&(_, adev)| adev)
    }
}

impl fmt::Display for ExtFlickerResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EXT-FLICKER — IRO 9C, white model vs OU flicker \
             (rel sigma {FLICKER_REL_SIGMA}, tau {FLICKER_TAU_PS:.0} ps)"
        )?;
        writeln!(f, "\nAllan deviation of the period series:")?;
        let mut table = Table::new(&["m", "ADEV white", "ADEV flicker"]);
        for (&(m, white), &(_, fl)) in self.white.allan_curve.iter().zip(&self.flicker.allan_curve)
        {
            table.row_owned(vec![m.to_string(), fmt_ps(white), fmt_ps(fl)]);
        }
        write!(f, "{table}")?;
        writeln!(f, "\nEq. 6 divider estimates (direct sigma_p: white = {}, flicker = {}):",
            fmt_ps(self.white.sigma_direct_ps),
            fmt_ps(self.flicker.sigma_direct_ps))?;
        let mut table = Table::new(&["n", "estimate white", "estimate flicker"]);
        for (&(n, white), &(_, fl)) in self
            .white
            .divider_estimates
            .iter()
            .zip(&self.flicker.divider_estimates)
        {
            table.row_owned(vec![n.to_string(), fmt_ps(white), fmt_ps(fl)]);
        }
        write!(f, "{table}")
    }
}

fn measure_arm(
    label: &str,
    tech: &Technology,
    seed: u64,
    periods: usize,
) -> Result<(FlickerArm, SimStats), ExperimentError> {
    let board = Board::new(tech.clone(), 0, PAPER_SEED);
    let config = IroConfig::new(9).expect("valid length");
    let run = measure::run_iro(&config, &board, seed, periods)?;
    let mut allan_curve = Vec::new();
    for m in [1usize, 4, 16, 64, 256] {
        allan_curve.push((m, allan::allan_deviation(&run.periods_ps, m)?));
    }
    let mut divider_estimates = Vec::new();
    for n in [4usize, 64] {
        divider_estimates.push((n, divider::measure(&run.periods_ps, n)?.sigma_p_ps));
    }
    Ok((
        FlickerArm {
            label: label.to_owned(),
            sigma_direct_ps: jitter::period_jitter(&run.periods_ps)?,
            allan_curve,
            divider_estimates,
        },
        run.stats,
    ))
}

/// Runs the EXT-FLICKER experiment on a caller-provided runner: the
/// white and flicker arms are independent jobs.
///
/// # Errors
///
/// Propagates simulation and analysis errors.
pub fn run_with(runner: &ExperimentRunner) -> Result<ExtFlickerResult, ExperimentError> {
    let periods = runner.effort().size(10_000, 20_000);
    let base = Technology::cyclone_iii()
        .with_sigma_intra(0.0)
        .with_sigma_inter(0.0);
    let arms = [
        ("white", base.clone()),
        (
            "flicker",
            base.with_flicker_rel_sigma(FLICKER_REL_SIGMA)
                .with_flicker_tau_ps(FLICKER_TAU_PS),
        ),
    ];
    let mut results = runner.run_stage("ext_flicker", &arms, |job, meter| {
        let (label, tech) = job.config;
        let (arm, stats) = measure_arm(label, tech, job.seed(), periods)?;
        meter.record_sim(stats);
        Ok(arm)
    })?;
    let flicker = results.pop().expect("two arms");
    let white = results.pop().expect("two arms");
    Ok(ExtFlickerResult { white, flicker })
}

/// Runs the EXT-FLICKER experiment.
///
/// # Errors
///
/// Propagates simulation and analysis errors.
pub fn run(effort: Effort, seed: u64) -> Result<ExtFlickerResult, ExperimentError> {
    run_with(&ExperimentRunner::new(effort, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flicker_bends_the_allan_curve_and_biases_eq6() {
        let result = run(Effort::Quick, 17).expect("simulates");

        // White baseline: ADEV falls like 1/sqrt(m) end to end.
        let w1 = ExtFlickerResult::adev_at(&result.white, 1).expect("probed");
        let w256 = ExtFlickerResult::adev_at(&result.white, 256).expect("probed");
        let expected_ratio = 16.0; // sqrt(256)
        assert!(
            (w1 / w256 / expected_ratio - 1.0).abs() < 0.5,
            "white slope: {w1} -> {w256}"
        );

        // Flicker arm: same short-window behaviour, but the long-window
        // deviation sits well above the white floor.
        let f1 = ExtFlickerResult::adev_at(&result.flicker, 1).expect("probed");
        let f256 = ExtFlickerResult::adev_at(&result.flicker, 256).expect("probed");
        assert!((f1 / w1 - 1.0).abs() < 0.3, "short windows match: {f1} vs {w1}");
        assert!(
            f256 > 2.0 * w256,
            "flicker floor must lift the long-window ADEV: {f256} vs {w256}"
        );

        // Eq. 6: accurate for white at any n; inflated by flicker at
        // large n (the slow component leaks into the cycle-to-cycle
        // deviation of the divided clock).
        let white_n64 = result.white.divider_estimates[1].1;
        let flicker_n64 = result.flicker.divider_estimates[1].1;
        // (n = 64 leaves ~78 osc_mes periods at Quick size, so the
        // estimate itself carries ~8% sampling error.)
        assert!(
            (white_n64 / result.white.sigma_direct_ps - 1.0).abs() < 0.25,
            "white n=64 estimate {white_n64}"
        );
        assert!(
            flicker_n64 > 1.5 * result.flicker.sigma_direct_ps,
            "flicker inflates the estimate: {flicker_n64} vs direct {}",
            result.flicker.sigma_direct_ps
        );
        let text = result.to_string();
        assert!(text.contains("EXT-FLICKER"));
    }
}
