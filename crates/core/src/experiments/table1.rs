//! Table I — normalized frequency excursions `dF` over the 0.4 V sweep,
//! for IRO {5, 25, 80}C and STR {4, 24, 48, 64, 96}C.

use std::fmt;

use strent_analysis::frequency::{normalize_sweep, SweepPoint};
use strent_device::Supply;
use strent_rings::{IroConfig, StrConfig};

use crate::calibration::{self, NOMINAL_VOLTS, SWEEP_VOLTS, TABLE1_IRO_LENGTHS, TABLE1_STR_LENGTHS};
use crate::report::{fmt_mhz, fmt_percent, Table};

use super::runner::{ExperimentRunner, RingSpec};
use super::{Effort, ExperimentError};

/// One row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Display label ("IRO 5C"...).
    pub label: String,
    /// Frequency at the nominal voltage, MHz.
    pub f_nominal_mhz: f64,
    /// The normalized excursion `dF` as a fraction.
    pub excursion: f64,
}

/// The reproduced Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Result {
    /// All rows, IROs first then STRs, in increasing length order.
    pub rows: Vec<Table1Row>,
}

impl Table1Result {
    /// Looks up a row by label.
    #[must_use]
    pub fn row(&self, label: &str) -> Option<&Table1Row> {
        self.rows.iter().find(|r| r.label == label)
    }

    /// The STR rows in length order.
    #[must_use]
    pub fn str_rows(&self) -> Vec<&Table1Row> {
        self.rows
            .iter()
            .filter(|r| r.label.starts_with("STR"))
            .collect()
    }

    /// The IRO rows in length order.
    #[must_use]
    pub fn iro_rows(&self) -> Vec<&Table1Row> {
        self.rows
            .iter()
            .filter(|r| r.label.starts_with("IRO"))
            .collect()
    }
}

impl fmt::Display for Table1Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table I — normalized frequency excursions for a 0.4 V sweep"
        )?;
        let mut table = Table::new(&["Ring", "Fn (MHz)", "dF"]);
        for row in &self.rows {
            table.row_owned(vec![
                row.label.clone(),
                fmt_mhz(row.f_nominal_mhz),
                fmt_percent(row.excursion),
            ]);
        }
        write!(f, "{table}")
    }
}

/// Runs the Table I experiment on a caller-provided runner: one sharded
/// job per (ring, voltage) point of the 8x9 grid.
///
/// # Errors
///
/// Propagates ring simulation and analysis errors.
pub fn run_with(runner: &ExperimentRunner) -> Result<Table1Result, ExperimentError> {
    let periods = runner.effort().size(100, 300);
    let base = calibration::default_board();

    let specs: Vec<(String, RingSpec)> = TABLE1_IRO_LENGTHS
        .iter()
        .map(|&l| {
            (
                format!("IRO {l}C"),
                RingSpec::Iro(IroConfig::new(l).expect("valid length")),
            )
        })
        .chain(TABLE1_STR_LENGTHS.iter().map(|&l| {
            (
                format!("STR {l}C"),
                RingSpec::Str(StrConfig::new(l, l / 2).expect("valid counts")),
            )
        }))
        .collect();
    let jobs: Vec<(usize, f64)> = specs
        .iter()
        .enumerate()
        .flat_map(|(ri, _)| SWEEP_VOLTS.iter().map(move |&v| (ri, v)))
        .collect();

    let freqs = runner.run_stage("table1", &jobs, |job, meter| {
        let (ri, v) = *job.config;
        let mut board = base.clone();
        board.set_supply(Supply::dc(v));
        Ok(specs[ri]
            .1
            .measure(&board, job.seed(), periods, meter)?
            .frequency_mhz)
    })?;

    let mut rows = Vec::with_capacity(specs.len());
    for (ri, (label, _)) in specs.iter().enumerate() {
        let points: Vec<SweepPoint> = SWEEP_VOLTS
            .iter()
            .zip(&freqs[ri * SWEEP_VOLTS.len()..])
            .map(|(&voltage, &frequency_mhz)| SweepPoint {
                voltage,
                frequency_mhz,
            })
            .collect();
        let sweep = normalize_sweep(&points, NOMINAL_VOLTS)?;
        rows.push(Table1Row {
            label: label.clone(),
            f_nominal_mhz: sweep.f_nominal_mhz,
            excursion: sweep.excursion,
        });
    }
    Ok(Table1Result { rows })
}

/// Runs the Table I experiment.
///
/// # Errors
///
/// Propagates ring simulation and analysis errors.
pub fn run(effort: Effort, seed: u64) -> Result<Table1Result, ExperimentError> {
    run_with(&ExperimentRunner::new(effort, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_matches_paper() {
        let result = run(Effort::Quick, 1).expect("simulates");
        assert_eq!(result.rows.len(), 8);

        // IRO excursions stay ~flat with length (47-49% in the paper).
        for row in result.iro_rows() {
            assert!(
                (0.42..0.58).contains(&row.excursion),
                "{}: dF {}",
                row.label,
                row.excursion
            );
        }
        // STR excursions improve monotonically with length: 50% -> 37%.
        let strs = result.str_rows();
        for w in strs.windows(2) {
            assert!(
                w[1].excursion <= w[0].excursion + 0.01,
                "dF must not grow with L: {} {} -> {} {}",
                w[0].label,
                w[0].excursion,
                w[1].label,
                w[1].excursion
            );
        }
        let str96 = result.row("STR 96C").expect("present");
        let str4 = result.row("STR 4C").expect("present");
        assert!(str4.excursion - str96.excursion > 0.08, "improvement with L");
        assert!((0.30..0.43).contains(&str96.excursion), "{}", str96.excursion);

        // Nominal frequencies near the paper's Table I column.
        let f = |label: &str| result.row(label).expect("present").f_nominal_mhz;
        assert!((f("IRO 5C") - 376.0).abs() < 20.0, "{}", f("IRO 5C"));
        assert!((f("IRO 25C") - 73.0).abs() < 6.0, "{}", f("IRO 25C"));
        assert!((f("IRO 80C") - 23.0).abs() < 3.0, "{}", f("IRO 80C"));
        assert!((f("STR 4C") - 653.0).abs() < 35.0, "{}", f("STR 4C"));
        assert!((f("STR 96C") - 320.0).abs() < 20.0, "{}", f("STR 96C"));

        let text = result.to_string();
        assert!(text.contains("Table I"));
        assert!(text.lines().count() >= 10);
    }
}
