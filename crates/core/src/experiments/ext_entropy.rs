//! EXT-ENTROPY — entropy estimation: analytic bound vs Markov estimator.
//!
//! The paper's quantitative punchline is that an STR accumulates enough
//! thermal jitter *per short period* to be sampled fast, while an IRO
//! must wait out its long period for the same quality ratio. This
//! experiment turns that into numbers with the new estimation
//! subsystem (`strent_analysis::{entropy, markov}`):
//!
//! 1. measure each pool preset (STR-32, STR-64, IRO-32) on the
//!    calibrated board: mean period `T` and one-period jitter
//!    `sigma_1`;
//! 2. for a sweep of sampling intervals (`m` ring periods per sampled
//!    bit) form the quality ratio `q = sigma_1 sqrt(m) / T` (white
//!    phase diffusion) and evaluate the **analytic min-entropy lower
//!    bound** of the bit-pattern model;
//! 3. sample the same physics through the phase-diffusion bit model
//!    and run the order-`k` **Markov min-entropy estimator** (with its
//!    small-sample confidence haircut) over the resulting stream;
//! 4. cross-check: the estimator must never undercut the bound by more
//!    than the documented agreement band.
//!
//! A second stage runs the differential-pair scenario
//! (`strent_rings::differential`): paired rings under a shared
//! supply-ripple tone, quantifying the common-mode rejection ratio and
//! the deterministic-to-thermal contamination of each family.

use std::fmt;

use strent_analysis::entropy;
use strent_device::noise::GlobalJitterProcess;
use strent_rings::differential::{
    run_differential_iro, run_differential_str, DifferentialOutcome,
};
use strent_rings::{IroConfig, StrConfig};
use strent_trng::entropy::markov_min_entropy;
use strent_trng::phase::PhaseModel;

use crate::calibration;
use crate::pool::RingSpec;
use crate::report::Table;

use super::runner::ExperimentRunner;
use super::{Effort, ExperimentError};

/// Markov order of the cross-checking estimator.
pub const MARKOV_ORDER: usize = 2;

/// The documented agreement band: the Markov estimate may sit above
/// the bound (a bound is conservative by construction; the finite-order
/// chain also overestimates quasi-periodic sources) but must not
/// undercut it by more than this, the estimator's own confidence
/// haircut allowance.
pub const AGREEMENT_BAND: f64 = 0.05;

/// Sampling intervals probed, in ring periods per sampled bit. Spans
/// quality ratios from "deterministic" (`q ~ 0.05`) to "saturated"
/// (`q > 0.5`) for the calibrated technology.
pub const SAMPLE_FACTORS: [f64; 3] = [2_000.0, 20_000.0, 200_000.0];

/// Supply-ripple tone of the differential stage (matches EXT-DET).
pub const SUPPLY_AMPLITUDE_V: f64 = 0.012;

/// Tone frequency of the differential stage, MHz (matches EXT-DET).
pub const MODULATION_MHZ: f64 = 5.0;

/// One (preset, sampling interval) cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtEntropyRow {
    /// Preset label (`str32`, `str64`, `iro32`).
    pub label: &'static str,
    /// Ring periods per sampled bit.
    pub factor: f64,
    /// Measured mean period, ps.
    pub mean_period_ps: f64,
    /// Measured one-period jitter, ps.
    pub sigma_period_ps: f64,
    /// Quality ratio `sigma_acc / T` at this sampling interval.
    pub ratio: f64,
    /// Analytic min-entropy lower bound (bits/bit).
    pub bound: f64,
    /// Analytic Shannon-entropy bound (bits/bit), for reference.
    pub shannon_bound: f64,
    /// Order-[`MARKOV_ORDER`] Markov min-entropy estimate of the
    /// phase-model bitstream (bits/bit).
    pub markov: f64,
}

impl ExtEntropyRow {
    /// Markov minus bound: positive when the estimator confirms the
    /// bound with room to spare, and never allowed below
    /// `-`[`AGREEMENT_BAND`].
    #[must_use]
    pub fn agreement(&self) -> f64 {
        self.markov - self.bound
    }
}

/// The EXT-ENTROPY result set.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtEntropyResult {
    /// Sweep rows, preset-major then increasing sampling interval.
    pub rows: Vec<ExtEntropyRow>,
    /// Differential-pair outcomes (STR-32 pair, IRO-32 pair).
    pub differential: Vec<DifferentialOutcome>,
}

impl fmt::Display for ExtEntropyResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EXT-ENTROPY — analytic min-entropy bound vs order-{MARKOV_ORDER} Markov estimate"
        )?;
        let mut table = Table::new(&[
            "Ring", "m (T/bit)", "T (ps)", "sigma1", "q", "H_bound", "H_shannon", "H_markov",
            "agree",
        ]);
        for row in &self.rows {
            table.row_owned(vec![
                row.label.to_owned(),
                format!("{:.0}", row.factor),
                format!("{:.0}", row.mean_period_ps),
                format!("{:.2}", row.sigma_period_ps),
                format!("{:.4}", row.ratio),
                format!("{:.4}", row.bound),
                format!("{:.4}", row.shannon_bound),
                format!("{:.4}", row.markov),
                format!("{:+.4}", row.agreement()),
            ]);
        }
        write!(f, "{table}")?;
        writeln!(
            f,
            "\n\nDifferential pairs under a {:.1}% / {} MHz supply tone",
            SUPPLY_AMPLITUDE_V / 1.2 * 100.0,
            MODULATION_MHZ
        )?;
        let mut table = Table::new(&[
            "Pair",
            "A_single (ps)",
            "A_diff (ps)",
            "CMRR (dB)",
            "det/thermal",
        ]);
        for out in &self.differential {
            table.row_owned(vec![
                out.label.clone(),
                format!("{:.2}", out.single_tone_ps),
                format!("{:.3}", out.differential_tone_ps),
                format!("{:.1}", out.cmrr_db()),
                format!("{:.2}", out.det_to_thermal()),
            ]);
        }
        write!(f, "{table}")
    }
}

/// Runs EXT-ENTROPY on a caller-provided runner: one job per
/// (preset, sampling factor) sweep cell, then one per differential
/// pair.
///
/// # Errors
///
/// Propagates ring simulation, analysis and phase-model errors.
pub fn run_with(runner: &ExperimentRunner) -> Result<ExtEntropyResult, ExperimentError> {
    let periods = runner.effort().size(1_200, 4_000);
    let markov_bits = runner.effort().size(65_536, 262_144);
    let board = calibration::default_board();
    let presets = [RingSpec::Str32, RingSpec::Str64, RingSpec::Iro32];
    let cells: Vec<(RingSpec, f64)> = presets
        .iter()
        .flat_map(|&p| SAMPLE_FACTORS.iter().map(move |&m| (p, m)))
        .collect();
    let rows = runner.run_stage("ext_entropy_sweep", &cells, |job, meter| {
        let &(preset, factor) = job.config;
        let spec = match preset.stream_config() {
            strent_rings::stream::StreamConfig::Str(c) => super::runner::RingSpec::Str(c),
            strent_rings::stream::StreamConfig::Iro(c) => super::runner::RingSpec::Iro(c),
        };
        let run = spec.measure(&board, job.seed(), periods, meter)?;
        let mean_period_ps =
            run.periods_ps.iter().sum::<f64>() / run.periods_ps.len() as f64;
        let sigma_period_ps = strent_analysis::jitter::period_jitter(&run.periods_ps)?;
        let sigma_acc_ps = sigma_period_ps * factor.sqrt();
        let ratio = entropy::sampling_ratio(sigma_acc_ps, mean_period_ps)?;
        let bound = entropy::min_entropy_bound(ratio)?;
        let shannon_bound = entropy::shannon_entropy_bound(ratio)?;
        // Sample the same physics through the phase-diffusion bit
        // model and let the empirical estimator judge the stream.
        let mut model = PhaseModel::new(mean_period_ps, sigma_acc_ps, job.seed() ^ 0xE57)?;
        let bits = model.generate(markov_bits);
        let markov = markov_min_entropy(&bits, MARKOV_ORDER)?;
        Ok(ExtEntropyRow {
            label: preset.label(),
            factor,
            mean_period_ps,
            sigma_period_ps,
            ratio,
            bound,
            shannon_bound,
            markov,
        })
    })?;
    let process = GlobalJitterProcess::new(SUPPLY_AMPLITUDE_V, MODULATION_MHZ);
    let pairs = [RingSpec::Str32, RingSpec::Iro32];
    let differential = runner.run_stage("ext_entropy_diff", &pairs, |job, _meter| {
        let seeds = (job.seed(), job.seed() ^ 1);
        let out = match job.config {
            RingSpec::Str32 | RingSpec::Str64 => run_differential_str(
                &StrConfig::new(32, 16).expect("preset is valid"),
                &board,
                &process,
                seeds,
                periods,
            )?,
            RingSpec::Iro32 => run_differential_iro(
                &IroConfig::new(32).expect("preset is valid"),
                &board,
                &process,
                seeds,
                periods,
            )?,
        };
        Ok(out)
    })?;
    Ok(ExtEntropyResult { rows, differential })
}

/// Runs the EXT-ENTROPY experiment.
///
/// # Errors
///
/// Propagates ring simulation, analysis and phase-model errors.
pub fn run(effort: Effort, seed: u64) -> Result<ExtEntropyResult, ExperimentError> {
    run_with(&ExperimentRunner::new(effort, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_and_estimator_agree_and_rank_the_families() {
        let result = run(Effort::Quick, 11).expect("simulates");
        assert_eq!(result.rows.len(), 9);
        let by = |label: &str| -> Vec<&ExtEntropyRow> {
            result.rows.iter().filter(|r| r.label == label).collect()
        };
        let (str32, iro32) = (by("str32"), by("iro32"));
        for (s, i) in str32.iter().zip(&iro32) {
            // Equal sampling factor: the STR's short period gives it
            // the higher quality ratio, hence the higher bound.
            assert!(
                s.bound >= i.bound,
                "m={}: STR {} vs IRO {}",
                s.factor,
                s.bound,
                i.bound
            );
        }
        for row in &result.rows {
            // The estimator never undercuts the bound by more than the
            // documented band...
            assert!(
                row.agreement() >= -AGREEMENT_BAND,
                "{} m={}: markov {} vs bound {}",
                row.label,
                row.factor,
                row.markov,
                row.bound
            );
            // ...and both live in the unit interval.
            assert!((0.0..=1.0).contains(&row.bound));
            assert!((0.0..=1.0).contains(&row.markov));
            assert!(row.shannon_bound >= row.bound - 1e-12);
        }
        // The bound saturates as sampling slows (monotone per preset).
        for label in ["str32", "str64", "iro32"] {
            let rows = by(label);
            for pair in rows.windows(2) {
                assert!(
                    pair[1].bound >= pair[0].bound - 1e-12,
                    "{label}: bound not monotone in m"
                );
            }
            // The slowest sampling reaches a usable rate.
            assert!(rows.last().expect("rows").bound > 0.3, "{label}");
        }
        // Differential: both pairs reject the common mode measurably,
        // and the STR's deterministic-to-thermal contamination sits
        // below the IRO's.
        assert_eq!(result.differential.len(), 2);
        let (str_pair, iro_pair) = (&result.differential[0], &result.differential[1]);
        assert!(str_pair.label.starts_with("STR"));
        assert!(iro_pair.label.starts_with("IRO"));
        for out in &result.differential {
            assert!(out.cmrr_db() > 15.0, "{}: CMRR {} dB", out.label, out.cmrr_db());
        }
        assert!(
            str_pair.det_to_thermal() < 0.75 * iro_pair.det_to_thermal(),
            "STR {} vs IRO {}",
            str_pair.det_to_thermal(),
            iro_pair.det_to_thermal()
        );
        let text = result.to_string();
        assert!(text.contains("EXT-ENTROPY"));
        assert!(text.contains("CMRR"));
    }
}
