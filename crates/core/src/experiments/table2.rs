//! Table II — extra-device frequency dispersion: the same "bitstream"
//! loaded into five boards, `sigma_rel = sigma / F_mean` per ring.

use std::fmt;

use strent_analysis::frequency::sigma_rel;
use strent_analysis::stats::std_dev_confidence;
use strent_rings::{IroConfig, StrConfig};

use crate::calibration;
use crate::report::{fmt_mhz, Table};

use super::runner::{ExperimentRunner, RingSpec};
use super::{Effort, ExperimentError};

/// One row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Display label ("IRO 3C"...).
    pub label: String,
    /// Per-board frequencies, MHz (board 1..5).
    pub frequencies_mhz: Vec<f64>,
    /// The relative standard deviation across boards.
    pub sigma_rel: f64,
    /// 95% chi-square confidence interval on the *relative* standard
    /// deviation — five boards leave wide error bars, quantified here.
    pub sigma_rel_ci: (f64, f64),
}

/// The reproduced Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Result {
    /// All rows: IRO 3C, IRO 5C, STR 4C, STR 96C.
    pub rows: Vec<Table2Row>,
}

impl Table2Result {
    /// Looks up a row by label.
    #[must_use]
    pub fn row(&self, label: &str) -> Option<&Table2Row> {
        self.rows.iter().find(|r| r.label == label)
    }
}

impl fmt::Display for Table2Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table II — relative standard deviation of frequencies over {} devices",
            self.rows.first().map_or(0, |r| r.frequencies_mhz.len())
        )?;
        let mut table = Table::new(&[
            "Ring", "board 1", "board 2", "board 3", "board 4", "board 5", "sigma_rel",
            "95% CI",
        ]);
        for row in &self.rows {
            let mut cells = vec![row.label.clone()];
            cells.extend(row.frequencies_mhz.iter().map(|&f| fmt_mhz(f)));
            cells.push(format!("{:.2} %", row.sigma_rel * 100.0));
            cells.push(format!(
                "{:.2}..{:.2} %",
                row.sigma_rel_ci.0 * 100.0,
                row.sigma_rel_ci.1 * 100.0
            ));
            table.row_owned(cells);
        }
        write!(f, "{table}")
    }
}

/// Runs the Table II experiment on a caller-provided runner: one
/// sharded job per (ring, board) cell of the 4x5 grid.
///
/// # Errors
///
/// Propagates ring simulation and analysis errors.
pub fn run_with(runner: &ExperimentRunner) -> Result<Table2Result, ExperimentError> {
    let periods = runner.effort().size(150, 400);
    let farm = calibration::paper_boards();
    let boards: Vec<_> = farm.iter().collect();

    // Each Table II design is its own bitstream: the four rings occupy
    // disjoint silicon regions, so each samples fresh intra-die process
    // draws (previously all four overlapped at cell 0, making IRO 5C
    // reuse IRO 3C's exact cells).
    let mut specs: Vec<(String, RingSpec)> = Vec::new();
    for &(l, base) in &[(3usize, 0u64), (5, 100)] {
        let mut config = IroConfig::new(l)
            .expect("valid length")
            .with_placement_base(base);
        if l == 5 {
            // Table II's IRO 5C uses the paper's spread placement
            // (~305 MHz, vs 376 MHz in Table I) — see calibration docs.
            let routing = config.routing_ps(calibration::paper_boards().board(0));
            config = config
                .with_routing_ps(routing + calibration::TABLE2_IRO5_EXTRA_ROUTING_PS)
                .expect("calibrated routing is non-negative");
        }
        specs.push((format!("IRO {l}C"), RingSpec::Iro(config)));
    }
    for &(l, base) in &[(4usize, 200u64), (96, 300)] {
        specs.push((
            format!("STR {l}C"),
            RingSpec::Str(
                StrConfig::new(l, l / 2)
                    .expect("valid counts")
                    .with_placement_base(base),
            ),
        ));
    }

    // Table II loads the *same* bitstream into every board: the only
    // thing that differs between boards is the silicon. Mirror that by
    // giving all five boards of a ring one shared measurement seed
    // (keyed by ring index), so the across-board spread isolates
    // process variation instead of also sampling independent
    // measurement noise per cell.
    let ring_rng = runner.stage_rng("table2:rings");
    let ring_seeds: Vec<u64> = (0..specs.len())
        .map(|ri| ring_rng.fork(ri as u64).master_seed())
        .collect();

    let jobs: Vec<(usize, usize)> = specs
        .iter()
        .enumerate()
        .flat_map(|(ri, _)| (0..boards.len()).map(move |bi| (ri, bi)))
        .collect();
    let freqs = runner.run_stage("table2", &jobs, |job, meter| {
        let (ri, bi) = *job.config;
        Ok(specs[ri]
            .1
            .measure(boards[bi], ring_seeds[ri], periods, meter)?
            .frequency_mhz)
    })?;

    let mut rows = Vec::with_capacity(specs.len());
    for (ri, (label, _)) in specs.iter().enumerate() {
        let freqs = freqs[ri * boards.len()..(ri + 1) * boards.len()].to_vec();
        let mean = freqs.iter().sum::<f64>() / freqs.len() as f64;
        let ci = std_dev_confidence(&freqs, 0.95)?;
        rows.push(Table2Row {
            label: label.clone(),
            sigma_rel: sigma_rel(&freqs)?,
            sigma_rel_ci: (ci.0 / mean, ci.1 / mean),
            frequencies_mhz: freqs,
        });
    }
    Ok(Table2Result { rows })
}

/// Runs the Table II experiment.
///
/// # Errors
///
/// Propagates ring simulation and analysis errors.
pub fn run(effort: Effort, seed: u64) -> Result<Table2Result, ExperimentError> {
    run_with(&ExperimentRunner::new(effort, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape_matches_paper() {
        let result = run(Effort::Quick, 1).expect("simulates");
        assert_eq!(result.rows.len(), 4);
        for row in &result.rows {
            assert_eq!(row.frequencies_mhz.len(), 5);
        }

        let sig = |label: &str| result.row(label).expect("present").sigma_rel;
        // The headline claim: the 96-stage STR's dispersion is far
        // narrower than every short ring's (paper: 0.15% vs 0.6-0.8%).
        assert!(sig("STR 96C") < sig("IRO 3C") / 2.0);
        assert!(sig("STR 96C") < sig("IRO 5C") / 2.0);
        assert!(sig("STR 96C") < sig("STR 4C") / 2.0);
        assert!(sig("STR 96C") < 0.006, "sigma_rel {}", sig("STR 96C"));
        // Short rings land in the percent-level band the paper reports.
        for label in ["IRO 3C", "IRO 5C", "STR 4C"] {
            assert!(
                (0.001..0.03).contains(&sig(label)),
                "{label}: sigma_rel {}",
                sig(label)
            );
        }
        // ...while staying fast: the STR 96C keeps a high frequency.
        let str96 = result.row("STR 96C").expect("present");
        assert!(str96.frequencies_mhz.iter().all(|&f| f > 250.0));
        // The IRO 5C row runs at the paper's Table II operating point
        // (~305 MHz), not Table I's compact placement (~376 MHz).
        let iro5 = result.row("IRO 5C").expect("present");
        let mean5 =
            iro5.frequencies_mhz.iter().sum::<f64>() / iro5.frequencies_mhz.len() as f64;
        assert!((mean5 - 305.0).abs() < 15.0, "IRO 5C mean {mean5}");

        let text = result.to_string();
        assert!(text.contains("Table II"));
        assert!(text.contains("board 5"));
    }
}
