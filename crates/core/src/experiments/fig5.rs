//! Fig. 5 — burst vs evenly-spaced propagation modes, rendered as token
//! occupancy films.
//!
//! The FPGA profile (strong Charlie effect) locks into the evenly-spaced
//! mode even from a clustered start; an ASIC-like profile (weak Charlie,
//! strong drafting) keeps a cluster together — the burst mode.

use std::fmt;

use strent_device::{Board, Technology};
use strent_rings::mode::{
    burst_cluster_size, classify_half_periods, occupancy_film, spacing_cv, OscillationMode,
};
use strent_rings::str_ring::TokenLayout;
use strent_rings::{measure, StrConfig};
use strent_sim::{SimStats, Time};

use crate::calibration::PAPER_SEED;

use super::runner::ExperimentRunner;
use super::{Effort, ExperimentError};

/// One mode demonstration.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeDemo {
    /// Display label.
    pub label: String,
    /// The detected mode.
    pub mode: OscillationMode,
    /// The spacing coefficient of variation.
    pub spacing_cv: f64,
    /// Mean output frequency, MHz.
    pub frequency_mhz: f64,
    /// Estimated burst cluster size (None in the evenly-spaced mode).
    pub cluster_size: Option<usize>,
    /// Steady-state token occupancy frames (`T` = token, `.` = bubble).
    pub film: Vec<String>,
}

/// The reproduced Fig. 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Result {
    /// The evenly-spaced demonstration (FPGA profile).
    pub evenly_spaced: ModeDemo,
    /// The burst demonstration (ASIC-like profile).
    pub burst: ModeDemo,
}

impl fmt::Display for Fig5Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 5 — propagation modes in a 16-stage STR (NT = 6)")?;
        for demo in [&self.evenly_spaced, &self.burst] {
            writeln!(
                f,
                "\n{} -> {} (spacing CV = {:.3}, F = {:.0} MHz{})",
                demo.label,
                demo.mode,
                demo.spacing_cv,
                demo.frequency_mhz,
                demo.cluster_size
                    .map_or(String::new(), |c| format!(", cluster of ~{c} passages"))
            )?;
            for frame in &demo.film {
                writeln!(f, "  {frame}")?;
            }
        }
        Ok(())
    }
}

fn demo(
    label: &str,
    tech: &Technology,
    layout: TokenLayout,
    periods: usize,
    seed: u64,
) -> Result<(ModeDemo, SimStats), ExperimentError> {
    let board = Board::new(tech.clone(), 0, PAPER_SEED);
    let config = StrConfig::new(16, 6)
        .expect("valid counts")
        .with_layout(layout);
    let full = measure::run_str_full(&config, &board, seed, periods)?;
    let halves = &full.run.half_periods_ps;
    // Film over the last ~3 revolutions of the steady regime.
    let window = full
        .run
        .periods_ps
        .iter()
        .take(24)
        .sum::<f64>()
        .max(1.0);
    let start = Time::from_ps((full.end_time.as_ps() - window).max(0.0));
    Ok((
        ModeDemo {
            label: label.to_owned(),
            mode: classify_half_periods(halves),
            spacing_cv: spacing_cv(halves).unwrap_or(f64::NAN),
            frequency_mhz: full.run.frequency_mhz,
            cluster_size: burst_cluster_size(halves),
            film: occupancy_film(&full.stage_traces, start, full.end_time, 24),
        },
        full.run.stats,
    ))
}

/// Runs the Fig. 5 experiment on a caller-provided runner: the two
/// technology profiles are independent jobs.
///
/// # Errors
///
/// Propagates ring simulation errors.
pub fn run_with(runner: &ExperimentRunner) -> Result<Fig5Result, ExperimentError> {
    let periods = runner.effort().size(300, 1_000);
    let profiles = [
        (
            "FPGA profile (strong Charlie), clustered start",
            Technology::cyclone_iii(),
        ),
        (
            "ASIC-like profile (weak Charlie + drafting), clustered start",
            Technology::asic_like(),
        ),
    ];
    let mut demos = runner.run_stage("fig5", &profiles, |job, meter| {
        let (label, tech) = job.config;
        let (demo, stats) = demo(label, tech, TokenLayout::Clustered, periods, job.seed())?;
        meter.record_sim(stats);
        Ok(demo)
    })?;
    let burst = demos.pop().expect("two profiles");
    let evenly_spaced = demos.pop().expect("two profiles");
    Ok(Fig5Result {
        evenly_spaced,
        burst,
    })
}

/// Runs the Fig. 5 experiment.
///
/// # Errors
///
/// Propagates ring simulation errors.
pub fn run(effort: Effort, seed: u64) -> Result<Fig5Result, ExperimentError> {
    run_with(&ExperimentRunner::new(effort, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_reproduces_both_modes() {
        let result = run(Effort::Quick, 2).expect("simulates");
        assert_eq!(result.evenly_spaced.mode, OscillationMode::EvenlySpaced);
        assert_eq!(result.burst.mode, OscillationMode::Burst);
        assert!(result.evenly_spaced.spacing_cv < 0.1);
        assert!(result.burst.spacing_cv > 0.3);
        // The evenly-spaced ring shows no cluster; the burst ring's
        // cluster is a handful of back-to-back passages (up to NT = 6).
        assert_eq!(result.evenly_spaced.cluster_size, None);
        let cluster = result.burst.cluster_size.expect("burst has clusters");
        assert!((2..=6).contains(&cluster), "cluster {cluster}");
        // Films show 16-stage occupancy with 6 tokens conserved.
        for demo in [&result.evenly_spaced, &result.burst] {
            assert_eq!(demo.film.len(), 24);
            for frame in &demo.film {
                assert_eq!(frame.len(), 16);
                assert_eq!(
                    frame.chars().filter(|&c| c == 'T').count(),
                    6,
                    "token conservation in '{frame}'"
                );
            }
        }
        let text = result.to_string();
        assert!(text.contains("Fig. 5"));
        assert!(text.contains("burst"));
    }
}
