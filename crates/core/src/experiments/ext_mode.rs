//! EXT-MODE — a map of the oscillation mode over the (Charlie magnitude,
//! drafting magnitude) plane, connecting the paper's Sec. II-D narrative
//! to its references \[3\] (Winstanley: drafting drives bursts) and \[4\]
//! (Hamon: the Charlie effect locks the evenly-spaced mode).

use std::fmt;

use strent_device::{Board, Technology};
use strent_rings::mode::{classify_half_periods, OscillationMode};
use strent_rings::str_ring::TokenLayout;
use strent_rings::{measure, StrConfig};

use crate::calibration::PAPER_SEED;

use super::runner::ExperimentRunner;
use super::{Effort, ExperimentError};

/// The probed Charlie magnitudes, ps.
pub const CHARLIE_GRID_PS: [f64; 5] = [0.0, 2.0, 5.0, 15.0, 40.0];

/// The probed drafting magnitudes, ps.
pub const DRAFTING_GRID_PS: [f64; 5] = [0.0, 5.0, 10.0, 20.0, 40.0];

/// The mode map.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtModeResult {
    /// `cells[i][j]` is the mode at `CHARLIE_GRID_PS[i]`,
    /// `DRAFTING_GRID_PS[j]`.
    pub cells: Vec<Vec<OscillationMode>>,
}

impl ExtModeResult {
    /// The mode at grid position `(charlie_index, drafting_index)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn mode_at(&self, charlie_index: usize, drafting_index: usize) -> OscillationMode {
        self.cells[charlie_index][drafting_index]
    }

    /// Number of burst cells in the map.
    #[must_use]
    pub fn burst_count(&self) -> usize {
        self.cells
            .iter()
            .flatten()
            .filter(|&&m| m == OscillationMode::Burst)
            .count()
    }
}

impl fmt::Display for ExtModeResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EXT-MODE — oscillation mode of a 16-stage STR (NT = 6, clustered start)"
        )?;
        writeln!(f, "rows: Dcharlie (ps); columns: drafting (ps)")?;
        write!(f, "{:>10}", "")?;
        for d in DRAFTING_GRID_PS {
            write!(f, "{d:>8.0}")?;
        }
        writeln!(f)?;
        for (i, &c) in CHARLIE_GRID_PS.iter().enumerate() {
            write!(f, "{c:>10.0}")?;
            for cell in &self.cells[i] {
                let symbol = match cell {
                    OscillationMode::EvenlySpaced => "even",
                    OscillationMode::Burst => "BURST",
                    OscillationMode::Dead => "dead",
                };
                write!(f, "{symbol:>8}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Runs the EXT-MODE experiment on a caller-provided runner: the 5x5
/// (Charlie, drafting) grid is flattened into one job per cell.
///
/// # Errors
///
/// Propagates ring simulation errors.
pub fn run_with(runner: &ExperimentRunner) -> Result<ExtModeResult, ExperimentError> {
    let periods = runner.effort().size(250, 800);
    let base = Technology::asic_like()
        .with_sigma_intra(0.0)
        .with_sigma_inter(0.0);
    let grid: Vec<(f64, f64)> = CHARLIE_GRID_PS
        .iter()
        .flat_map(|&c| DRAFTING_GRID_PS.iter().map(move |&d| (c, d)))
        .collect();
    let modes = runner.run_stage("ext_mode", &grid, |job, meter| {
        let (charlie, drafting) = *job.config;
        let tech = base
            .clone()
            .with_charlie_delay_ps(charlie)
            .with_drafting_delay_ps(drafting);
        let board = Board::new(tech, 0, PAPER_SEED);
        let config = StrConfig::new(16, 6)
            .expect("valid counts")
            .with_layout(TokenLayout::Clustered);
        Ok(match measure::run_str_full(&config, &board, job.seed(), periods) {
            Ok(full) => {
                meter.record_sim(full.run.stats);
                classify_half_periods(&full.run.half_periods_ps)
            }
            Err(_) => OscillationMode::Dead,
        })
    })?;
    let cells = modes
        .chunks(DRAFTING_GRID_PS.len())
        .map(<[OscillationMode]>::to_vec)
        .collect();
    Ok(ExtModeResult { cells })
}

/// Runs the EXT-MODE experiment.
///
/// # Errors
///
/// Propagates ring simulation errors.
pub fn run(effort: Effort, seed: u64) -> Result<ExtModeResult, ExperimentError> {
    run_with(&ExperimentRunner::new(effort, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_map_matches_the_literature() {
        let result = run(Effort::Quick, 3).expect("simulates");
        assert_eq!(result.cells.len(), 5);
        // No drafting -> the Charlie mean-referencing always locks the
        // evenly-spaced mode (Hamon), whatever the Charlie magnitude.
        for (i, &dch) in CHARLIE_GRID_PS.iter().enumerate() {
            assert_eq!(
                result.mode_at(i, 0),
                OscillationMode::EvenlySpaced,
                "Dch={dch} with no drafting"
            );
        }
        // Strong drafting with a weak Charlie effect -> burst
        // (Winstanley's mechanism).
        assert_eq!(result.mode_at(0, 4), OscillationMode::Burst);
        // A strong Charlie effect suppresses bursts even under strong
        // drafting.
        assert_eq!(result.mode_at(4, 1), OscillationMode::EvenlySpaced);
        // The map contains both regimes.
        assert!(result.burst_count() >= 2);
        assert!(result.burst_count() <= 15);
        let text = result.to_string();
        assert!(text.contains("BURST"));
        assert!(text.contains("even"));
    }
}
