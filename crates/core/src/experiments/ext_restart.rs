//! EXT-RESTART — restart-based evidence that the harvested randomness
//! is *true* randomness (the evaluation technique of the authors'
//! follow-up work).
//!
//! Two campaigns:
//!
//! * **edge dispersion** (calibrated technology): the standard deviation
//!   across restarts of the `k`-th output edge time grows as `sqrt(k)` —
//!   phase diffusion from a known origin. Pseudo-randomness would give
//!   zero dispersion at every `k`.
//! * **entropy onset** (noisy-corner technology, `sigma_g` boosted so
//!   the transition fits in an affordable horizon): the output sampled
//!   at a fixed delay after restart is deterministic early and
//!   approaches a fair coin once the accumulated jitter spans the
//!   period.

use std::fmt;

use strent_analysis::fit::sqrt_law;
use strent_device::{Board, Technology};
use strent_rings::{IroConfig, StrConfig};
use strent_trng::elementary::EntropySource;
use strent_trng::restart;

use crate::calibration::{self, PAPER_SEED};
use crate::report::{fmt_ps, Table};

use super::runner::ExperimentRunner;
use super::{Effort, ExperimentError};

/// Edge-dispersion results for one source.
#[derive(Debug, Clone, PartialEq)]
pub struct DispersionRow {
    /// Display label.
    pub label: String,
    /// Probed edge indices.
    pub edge_indices: Vec<usize>,
    /// Dispersion across restarts at each index, ps.
    pub sigma_ps: Vec<f64>,
    /// R^2 of the `sigma = c sqrt(k)` fit.
    pub sqrt_fit_r2: f64,
}

/// The EXT-RESTART result set.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtRestartResult {
    /// Edge dispersion for IRO 5C and STR 16C.
    pub dispersion: Vec<DispersionRow>,
    /// Entropy-onset curve: `(delay in ring periods, across-restart
    /// bit entropy)` for the noisy-corner STR.
    pub entropy_onset: Vec<(f64, f64)>,
}

impl fmt::Display for ExtRestartResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "EXT-RESTART — restarts from an identical state")?;
        writeln!(f, "\nedge-time dispersion across restarts:")?;
        let mut table = Table::new(&["Ring", "k", "sigma(k)", "sqrt-fit R^2"]);
        for row in &self.dispersion {
            for (i, &k) in row.edge_indices.iter().enumerate() {
                table.row_owned(vec![
                    if i == 0 { row.label.clone() } else { String::new() },
                    k.to_string(),
                    fmt_ps(row.sigma_ps[i]),
                    if i == 0 {
                        format!("{:.4}", row.sqrt_fit_r2)
                    } else {
                        String::new()
                    },
                ]);
            }
        }
        write!(f, "{table}")?;
        writeln!(f, "\nentropy onset after restart (noisy-corner STR 8C):")?;
        let mut table = Table::new(&["delay (periods)", "H(bit) across restarts"]);
        for &(delay, h) in &self.entropy_onset {
            table.row_owned(vec![format!("{delay:.0}"), format!("{h:.3}")]);
        }
        write!(f, "{table}")
    }
}

/// Runs the EXT-RESTART experiment on a caller-provided runner: the two
/// dispersion campaigns and the entropy-onset campaign are three
/// independent jobs within one stage.
///
/// # Errors
///
/// Propagates simulation and fit errors.
pub fn run_with(runner: &ExperimentRunner) -> Result<ExtRestartResult, ExperimentError> {
    let restarts = runner.effort().size(48, 160);
    let board = calibration::default_board();
    let edge_indices = [4usize, 8, 16, 32, 64];

    // Entropy onset: noisy corner so the coin-flip transition is
    // reachable within a few hundred periods.
    let noisy = Board::new(
        Technology::cyclone_iii()
            .with_sigma_g_ps(60.0)
            .with_sigma_intra(0.0)
            .with_sigma_inter(0.0),
        0,
        PAPER_SEED,
    );
    let onset_source = EntropySource::Str(StrConfig::new(8, 4).expect("valid counts"));
    let period = onset_source.predicted_period_ps(&noisy);
    let delay_periods = [2.0, 8.0, 24.0, 60.0, 120.0, 240.0];
    let delays: Vec<f64> = delay_periods.iter().map(|&m| m * period).collect();

    enum Campaign {
        Dispersion(&'static str, EntropySource),
        Onset(EntropySource),
    }
    enum CampaignResult {
        Dispersion(DispersionRow),
        Onset(Vec<(f64, f64)>),
    }
    let campaigns = [
        Campaign::Dispersion(
            "IRO 5C",
            EntropySource::Iro(IroConfig::new(5).expect("valid length")),
        ),
        Campaign::Dispersion(
            "STR 16C",
            EntropySource::Str(StrConfig::new(16, 8).expect("valid counts")),
        ),
        Campaign::Onset(onset_source),
    ];
    let results = runner.run_stage("ext_restart", &campaigns, |job, _meter| {
        match job.config {
            Campaign::Dispersion(label, source) => {
                let outcome = restart::run(
                    source,
                    &board,
                    job.seed(),
                    restarts,
                    &[1_000.0],
                    &edge_indices,
                )?;
                let k: Vec<f64> = edge_indices.iter().map(|&k| k as f64).collect();
                let fit = sqrt_law(&k, &outcome.edge_sigma_ps)?;
                Ok(CampaignResult::Dispersion(DispersionRow {
                    label: (*label).to_owned(),
                    edge_indices: edge_indices.to_vec(),
                    sigma_ps: outcome.edge_sigma_ps,
                    sqrt_fit_r2: fit.r_squared,
                }))
            }
            Campaign::Onset(source) => {
                let outcome =
                    restart::run(source, &noisy, job.seed(), restarts, &delays, &[1])?;
                Ok(CampaignResult::Onset(
                    delay_periods
                        .iter()
                        .copied()
                        .zip(outcome.entropy_per_delay())
                        .collect(),
                ))
            }
        }
    })?;

    let mut dispersion = Vec::new();
    let mut entropy_onset = Vec::new();
    for result in results {
        match result {
            CampaignResult::Dispersion(row) => dispersion.push(row),
            CampaignResult::Onset(curve) => entropy_onset = curve,
        }
    }
    Ok(ExtRestartResult {
        dispersion,
        entropy_onset,
    })
}

/// Runs the EXT-RESTART experiment.
///
/// # Errors
///
/// Propagates simulation and fit errors.
pub fn run(effort: Effort, seed: u64) -> Result<ExtRestartResult, ExperimentError> {
    run_with(&ExperimentRunner::new(effort, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restarts_show_true_randomness() {
        let result = run(Effort::Quick, 13).expect("simulates");
        // Edge dispersion follows the sqrt law for both sources.
        for row in &result.dispersion {
            assert!(row.sqrt_fit_r2 > 0.85, "{}: R^2 {}", row.label, row.sqrt_fit_r2);
            assert!(
                row.sigma_ps.last().expect("points") > &(2.0 * row.sigma_ps[0]),
                "{}: dispersion must grow",
                row.label
            );
        }
        // Entropy onset: deterministic early, cointoss-like late.
        let first = result.entropy_onset.first().expect("points").1;
        let last = result.entropy_onset.last().expect("points").1;
        assert!(first < 0.5, "early entropy {first}");
        assert!(last > 0.8, "late entropy {last}");
        // Monotone-ish growth (allowing small sampling wiggles).
        let hs: Vec<f64> = result.entropy_onset.iter().map(|&(_, h)| h).collect();
        assert!(hs.windows(2).filter(|w| w[1] + 0.15 < w[0]).count() <= 1);
        let text = result.to_string();
        assert!(text.contains("EXT-RESTART"));
    }
}
