//! EXT-COHERENT — why Table II matters: coherent-sampling calibration
//! across devices.
//!
//! The paper's conclusion singles out coherent-sampling TRNGs (its ref
//! \[7\]) as the design where STR process robustness pays off: the
//! designer must "guarantee that the ring oscillator frequencies will
//! remain in a required interval for all devices of the same family".
//! Here we build the ref-\[7\] architecture from two same-design,
//! differently-placed rings — once from IROs, once from STRs — on each
//! board of a farm, with the pair detuned by the same relative amount
//! (4 % of the period) in both families. The figure of merit is the
//! dispersion across devices of the **beat length** (the quantity the
//! bit extractor is calibrated around): it inherits the per-ring
//! frequency dispersion `sigma_rel` of Table II amplified by the beat's
//! `1/delta` sensitivity, so short IROs drift far more than long STRs.
//!
//! A secondary (simulation-only) finding folded into the dispersion:
//! with process variation the STR's stages no longer all run at zero
//! separation, so its period exceeds the homogeneous-ring prediction by
//! an instance-dependent amount — extra pair dispersion the naive
//! i.i.d. delay-sum model misses.

use std::fmt;

use strent_analysis::stats::Summary;
use strent_device::{BoardFarm, Technology};
use strent_rings::{measure, IroConfig, StrConfig};
use strent_trng::coherent::CoherentSampler;

use crate::calibration::PAPER_SEED;
use crate::report::Table;

use super::runner::ExperimentRunner;
use super::{Effort, ExperimentError};

/// The common relative detune of each pair (fraction of the period).
pub const RELATIVE_DETUNE: f64 = 0.04;

/// Per-family calibration-drift summary.
#[derive(Debug, Clone, PartialEq)]
pub struct CoherentRow {
    /// Display label of the ring pair.
    pub label: String,
    /// Beat length on every board of the farm, in samples.
    pub beats: Vec<f64>,
    /// Mean beat length.
    pub mean_beat: f64,
    /// Relative dispersion (CV) of the beat across devices.
    pub beat_cv: f64,
}

/// The EXT-COHERENT result set.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtCoherentResult {
    /// IRO-pair and STR-pair rows.
    pub rows: Vec<CoherentRow>,
    /// Number of boards in the farm.
    pub boards: usize,
}

impl fmt::Display for ExtCoherentResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EXT-COHERENT — coherent-sampling beat length over {} devices \
             (pairs detuned by {:.0} % of the period)",
            self.boards,
            RELATIVE_DETUNE * 100.0
        )?;
        let mut table = Table::new(&["Pair", "mean beat", "beat CV", "min..max"]);
        for row in &self.rows {
            let min = row.beats.iter().copied().fold(f64::MAX, f64::min);
            let max = row.beats.iter().copied().fold(f64::MIN, f64::max);
            table.row_owned(vec![
                row.label.clone(),
                format!("{:.1}", row.mean_beat),
                format!("{:.1} %", row.beat_cv * 100.0),
                format!("{min:.1} .. {max:.1}"),
            ]);
        }
        write!(f, "{table}")
    }
}

/// Runs the EXT-COHERENT experiment on a caller-provided runner: one
/// sharded job per (family, board) cell; each job measures the pair on
/// its board with two seeds forked from the job's subtree.
///
/// # Errors
///
/// Propagates ring simulation and construction errors.
pub fn run_with(runner: &ExperimentRunner) -> Result<ExtCoherentResult, ExperimentError> {
    let periods = runner.effort().size(120, 250);
    let boards = runner.effort().size(8, 24);
    let farm = BoardFarm::new(Technology::cyclone_iii(), boards, PAPER_SEED);
    let farm_boards: Vec<_> = farm.iter().collect();

    let jobs: Vec<(usize, usize)> = (0..2)
        .flat_map(|family| (0..farm_boards.len()).map(move |bi| (family, bi)))
        .collect();
    let beats = runner.run_stage("ext_coherent", &jobs, |job, _meter| {
        let (family, bi) = *job.config;
        let board = farm_boards[bi];
        let seed_a = job.rng.fork(0).master_seed();
        let seed_b = job.rng.fork(1).master_seed();
        let (ta, tb) = if family == 0 {
            // IRO pair (5 stages each, ~376 MHz); dT/dr = 2L.
            let a = IroConfig::new(5).expect("valid length");
            let t_nominal = strent_rings::analytic::iro_period_ps(&a, board);
            let detune = RELATIVE_DETUNE * t_nominal / (2.0 * 5.0);
            let b = IroConfig::new(5)
                .expect("valid length")
                .with_placement_base(100)
                .with_routing_ps(a.routing_ps(board) + detune)?;
            (
                1e6 / measure::run_iro(&a, board, seed_a, periods)?.frequency_mhz,
                1e6 / measure::run_iro(&b, board, seed_b, periods)?.frequency_mhz,
            )
        } else {
            // STR pair (96 stages each, ~318 MHz); dT/dr = 2L/NT = 4.
            let a = StrConfig::new(96, 48).expect("valid counts");
            let t_nominal = strent_rings::analytic::str_period_ps(&a, board);
            let detune = RELATIVE_DETUNE * t_nominal * 48.0 / (2.0 * 96.0);
            let b = StrConfig::new(96, 48)
                .expect("valid counts")
                .with_placement_base(1000)
                .with_routing_ps(a.routing_ps(board) + detune)?;
            (
                1e6 / measure::run_str(&a, board, seed_a, periods)?.frequency_mhz,
                1e6 / measure::run_str(&b, board, seed_b, periods)?.frequency_mhz,
            )
        };
        Ok(CoherentSampler::new(ta, tb, 0.0, 1)?.beat_samples())
    })?;

    let rows = vec![
        make_row("IRO 5C pair", beats[..farm_boards.len()].to_vec()),
        make_row("STR 96C pair", beats[farm_boards.len()..].to_vec()),
    ];
    Ok(ExtCoherentResult { rows, boards })
}

/// Runs the EXT-COHERENT experiment.
///
/// # Errors
///
/// Propagates ring simulation and construction errors.
pub fn run(effort: Effort, seed: u64) -> Result<ExtCoherentResult, ExperimentError> {
    run_with(&ExperimentRunner::new(effort, seed))
}

fn make_row(label: &str, beats: Vec<f64>) -> CoherentRow {
    let summary = Summary::from_slice(&beats);
    CoherentRow {
        label: label.to_owned(),
        mean_beat: summary.mean(),
        beat_cv: summary.std_dev() / summary.mean(),
        beats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn str_pairs_hold_their_calibration_better() {
        let result = run(Effort::Quick, 31).expect("simulates");
        assert_eq!(result.rows.len(), 2);
        let iro = &result.rows[0];
        let strr = &result.rows[1];
        assert_eq!(iro.beats.len(), result.boards);
        // Both pairs produce a usable design beat (~25 samples at 4%).
        assert!((10.0..60.0).contains(&iro.mean_beat), "{}", iro.mean_beat);
        assert!((10.0..60.0).contains(&strr.mean_beat), "{}", strr.mean_beat);
        // The STR pair's beat disperses less across devices than the
        // IRO pair's — Table II's sigma_rel gap at the architecture
        // level.
        assert!(
            strr.beat_cv < iro.beat_cv,
            "STR CV {} vs IRO CV {}",
            strr.beat_cv,
            iro.beat_cv
        );
        let text = result.to_string();
        assert!(text.contains("EXT-COHERENT"));
    }
}
