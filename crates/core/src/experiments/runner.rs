//! The shared parallel harness behind every experiment module.
//!
//! [`ExperimentRunner`] wraps [`SweepRunner`] with the three things the
//! experiment layer needs on top of raw sharding:
//!
//! * **stage-scoped seeding** — every call to
//!   [`ExperimentRunner::run_stage`] derives its sweep master seed from
//!   `(experiment seed, stage label)`, and each job inside the stage is
//!   forked by index ([`RngTree::fork`]). Results therefore depend only
//!   on `(effort, seed)`, never on thread count or scheduling;
//! * **Effort-aware batching** — `Quick` jobs are short, so workers
//!   claim them in chunks to amortize traffic on the shared job cursor;
//!   `Full` jobs run long enough that per-job claiming (the best load
//!   balance) wins;
//! * **stage statistics** — every stage's [`SweepStats`] (wall clock,
//!   per-shard busy time and dispatched simulator events) is retained
//!   and can be drained with [`ExperimentRunner::take_stages`], which is
//!   how `strent-bench` builds `BENCH_sweep.json`.

use std::sync::Mutex;

use strent_device::Board;
use strent_rings::measure::{self, RingRun};
use strent_rings::stream::StreamConfig;
use strent_rings::surrogate::{self, Calibrator, SourceBackend, SurrogateStream};
use strent_rings::{IroConfig, StrConfig};
use strent_sim::{JobMeter, RngTree, SweepJob, SweepRunner, SweepStats};

use super::{Effort, ExperimentError};

/// FNV-1a over the stage label — a stable, platform-independent key for
/// deriving the stage's seed subtree.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One executed stage: its label and the sweep's execution statistics.
///
/// `stats` carries the full kernel counters (dispatched, cancelled and
/// suppressed events) alongside wall/busy time, so per-experiment
/// dispatch throughput is visible in every bench report.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// The stage label passed to [`ExperimentRunner::run_stage`].
    pub label: String,
    /// Execution statistics of the stage's sweep.
    pub stats: SweepStats,
}

impl StageReport {
    /// Dispatch throughput of this stage, events per second of sweep
    /// wall time.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        self.stats.events_per_sec()
    }
}

/// A parallel, deterministically seeded executor for experiment stages.
///
/// # Examples
///
/// ```
/// use strentropy::experiments::runner::ExperimentRunner;
/// use strentropy::experiments::Effort;
///
/// let runner = ExperimentRunner::new(Effort::Quick, 2012).with_threads(2);
/// let squares = runner
///     .run_stage("demo", &[1u64, 2, 3], |job, _meter| Ok(job.config * job.config))
///     .expect("no job fails");
/// assert_eq!(squares, vec![1, 4, 9]);
/// let report = runner.take_stages();
/// assert_eq!(report[0].label, "demo");
/// assert_eq!(report[0].stats.jobs, 3);
/// ```
#[derive(Debug)]
pub struct ExperimentRunner {
    effort: Effort,
    seed: u64,
    threads: usize,
    stages: Mutex<Vec<StageReport>>,
}

impl ExperimentRunner {
    /// Creates a runner for the given effort and master seed, with one
    /// worker per available CPU.
    #[must_use]
    pub fn new(effort: Effort, seed: u64) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        ExperimentRunner {
            effort,
            seed,
            threads,
            stages: Mutex::new(Vec::new()),
        }
    }

    /// Overrides the worker count (clamped to at least 1). Results are
    /// identical for every value — this only changes wall-clock time.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured effort.
    #[must_use]
    pub fn effort(&self) -> Effort {
        self.effort
    }

    /// The experiment master seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The Effort-aware batching policy: how many jobs a worker claims
    /// per cursor grab for a stage of `jobs` jobs.
    fn chunk_for(&self, jobs: usize) -> usize {
        match self.effort {
            // Quick jobs are small: batch so each worker expects ~4
            // grabs, amortizing cursor contention.
            Effort::Quick => (jobs / (self.threads * 4)).max(1),
            // Full jobs dominate any claiming overhead: claim singly
            // for the best load balance.
            Effort::Full => 1,
        }
    }

    /// Runs `f` over every config in parallel and records the stage's
    /// statistics under `label`.
    ///
    /// The stage's sweep seed is derived from `(seed, label)`, so two
    /// stages of the same experiment draw independent randomness, and
    /// re-running a stage with the same label replays it exactly.
    ///
    /// # Errors
    ///
    /// Propagates the error of the lowest-indexed failing job.
    pub fn run_stage<C, R, F>(
        &self,
        label: &str,
        configs: &[C],
        f: F,
    ) -> Result<Vec<R>, ExperimentError>
    where
        C: Sync,
        R: Send,
        F: Fn(SweepJob<'_, C>, &mut JobMeter) -> Result<R, ExperimentError> + Sync,
    {
        let stage_seed = self.stage_rng(label).master_seed();
        let sweep = SweepRunner::new(stage_seed)
            .with_threads(self.threads)
            .with_chunk_size(self.chunk_for(configs.len()));
        let outcome = sweep.run_metered(configs, f)?;
        self.stages
            .lock()
            .expect("no poisoned stage log")
            .push(StageReport {
                label: label.to_owned(),
                stats: outcome.stats,
            });
        Ok(outcome.results)
    }

    /// Derives the deterministic seed subtree keyed by `label` — the
    /// same derivation [`ExperimentRunner::run_stage`] uses for its
    /// sweep seed. Experiments use this for auxiliary seed streams that
    /// must be *shared across jobs* (e.g. Table II loads the same
    /// "bitstream" into every board, so all boards of a ring share one
    /// measurement seed) while staying independent of other stages.
    #[must_use]
    pub fn stage_rng(&self, label: &str) -> RngTree {
        RngTree::new(self.seed).subtree(fnv1a(label.as_bytes()))
    }

    /// Drains the per-stage execution reports accumulated so far, in
    /// execution order.
    #[must_use]
    pub fn take_stages(&self) -> Vec<StageReport> {
        std::mem::take(&mut *self.stages.lock().expect("no poisoned stage log"))
    }
}

/// A ring to measure — the flattened config unit of frequency sweeps.
#[derive(Debug, Clone, PartialEq)]
pub enum RingSpec {
    /// An inverter ring oscillator.
    Iro(IroConfig),
    /// A self-timed ring.
    Str(StrConfig),
}

impl RingSpec {
    /// Runs the ring on `board` and reports its full kernel statistics
    /// (dispatched, cancelled, suppressed events) into `meter`.
    ///
    /// # Errors
    ///
    /// Propagates ring simulation errors.
    pub fn measure(
        &self,
        board: &Board,
        seed: u64,
        periods: usize,
        meter: &mut JobMeter,
    ) -> Result<RingRun, ExperimentError> {
        let run = match self {
            RingSpec::Iro(config) => measure::run_iro(config, board, seed, periods)?,
            RingSpec::Str(config) => measure::run_str(config, board, seed, periods)?,
        };
        meter.record_sim(run.stats);
        Ok(run)
    }

    /// This spec as a stream configuration (the vocabulary the
    /// surrogate tier and the serving layer share).
    #[must_use]
    pub fn stream_config(&self) -> StreamConfig {
        match self {
            RingSpec::Iro(config) => StreamConfig::Iro(config.clone()),
            RingSpec::Str(config) => StreamConfig::Str(config.clone()),
        }
    }

    /// Like [`measure`](RingSpec::measure), but honoring a waveform
    /// backend request: with [`SourceBackend::Surrogate`] an eligible
    /// ring is calibrated once and replayed at O(1) per period, while
    /// boundary configurations silently fall back to the event-driven
    /// run. Surrogate workloads meter their emitted transitions as
    /// events, so sweep stages stay comparable in the perf reports.
    ///
    /// # Errors
    ///
    /// Propagates ring simulation and calibration errors.
    pub fn measure_with(
        &self,
        backend: SourceBackend,
        board: &Board,
        seed: u64,
        periods: usize,
        meter: &mut JobMeter,
    ) -> Result<RingRun, ExperimentError> {
        let config = self.stream_config();
        if backend == SourceBackend::FullSim
            || !surrogate::surrogate_eligible(&config, board, false)
        {
            return self.measure(board, seed, periods, meter);
        }
        let model = Calibrator::default().fit(&config, board, seed)?;
        let mut stream = SurrogateStream::new(model, seed);
        // The AR(1) flicker starts at rest; discard the same warm-up
        // span the event-driven runners do so the retained window is
        // stationary.
        let warmup = measure::WARMUP_PERIODS;
        stream.next_periods(warmup);
        stream.prune_before(stream.now());
        let periods_ps = stream.next_periods(periods);
        let stats = stream.stats();
        meter.record_sim(stats);
        let mean = periods_ps.iter().sum::<f64>() / periods_ps.len().max(1) as f64;
        Ok(RingRun {
            half_periods_ps: stream.trace().half_periods(),
            frequency_mhz: 1e6 / mean,
            periods_ps,
            events_dispatched: stats.events_processed,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration;

    #[test]
    fn stage_results_do_not_depend_on_thread_count() {
        let configs: Vec<u64> = (0..17).collect();
        let reference = ExperimentRunner::new(Effort::Quick, 42)
            .with_threads(1)
            .run_stage("t", &configs, |job, _| Ok(job.seed() ^ job.config))
            .expect("runs");
        for threads in [2, 5] {
            let out = ExperimentRunner::new(Effort::Quick, 42)
                .with_threads(threads)
                .run_stage("t", &configs, |job, _| Ok(job.seed() ^ job.config))
                .expect("runs");
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn stages_draw_independent_seeds() {
        let runner = ExperimentRunner::new(Effort::Quick, 7);
        let a = runner
            .run_stage("alpha", &[0u8], |job, _| Ok(job.seed()))
            .expect("runs");
        let b = runner
            .run_stage("beta", &[0u8], |job, _| Ok(job.seed()))
            .expect("runs");
        assert_ne!(a, b, "stage labels key the seed subtree");
        // Same label replays the same seed.
        let a2 = runner
            .run_stage("alpha", &[0u8], |job, _| Ok(job.seed()))
            .expect("runs");
        assert_eq!(a, a2);
    }

    #[test]
    fn batching_policy_scales_with_effort() {
        let quick = ExperimentRunner::new(Effort::Quick, 1).with_threads(2);
        assert_eq!(quick.chunk_for(80), 10);
        assert_eq!(quick.chunk_for(3), 1);
        let full = ExperimentRunner::new(Effort::Full, 1).with_threads(2);
        assert_eq!(full.chunk_for(80), 1);
    }

    #[test]
    fn stage_reports_accumulate_and_drain() {
        let runner = ExperimentRunner::new(Effort::Quick, 3);
        let _ = runner.run_stage("one", &[1u8, 2], |_, m| {
            m.record_events(5);
            Ok(())
        });
        let _ = runner.run_stage("two", &[1u8], |_, _| Ok(()));
        let stages = runner.take_stages();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].label, "one");
        assert_eq!(stages[0].stats.events(), 10);
        assert_eq!(stages[1].stats.jobs, 1);
        assert!(runner.take_stages().is_empty(), "drained");
    }

    #[test]
    fn ring_spec_measures_and_meters() {
        let board = calibration::default_board();
        let spec = RingSpec::Iro(IroConfig::new(5).expect("valid"));
        let runner = ExperimentRunner::new(Effort::Quick, 11);
        let runs = runner
            .run_stage("spec", &[spec], |job, meter| {
                job.config.measure(&board, job.seed(), 50, meter)
            })
            .expect("oscillates");
        assert_eq!(runs[0].periods_ps.len(), 50);
        let stages = runner.take_stages();
        assert!(stages[0].stats.events() > 0, "events metered");
    }

    #[test]
    fn ring_spec_measures_through_the_surrogate_backend() {
        let board = calibration::default_board();
        let spec = RingSpec::Str(StrConfig::new(32, 16).expect("valid"));
        let runner = ExperimentRunner::new(Effort::Quick, 13);
        let runs = runner
            .run_stage("surrogate", std::slice::from_ref(&spec), |job, meter| {
                job.config
                    .measure_with(SourceBackend::Surrogate, &board, job.seed(), 400, meter)
            })
            .expect("calibrates");
        assert_eq!(runs[0].periods_ps.len(), 400);
        let stages = runner.take_stages();
        assert!(stages[0].stats.events() > 0, "surrogate transitions metered");
        // Statistical agreement with the event-driven run: mean within
        // 2%, jitter within a factor 2 on a short window.
        let full = runner
            .run_stage("full", &[spec], |job, meter| {
                job.config
                    .measure_with(SourceBackend::FullSim, &board, job.seed(), 400, meter)
            })
            .expect("oscillates");
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        let sigma = |xs: &[f64]| {
            let m = mean(xs);
            (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
        };
        let (ms, mf) = (mean(&runs[0].periods_ps), mean(&full[0].periods_ps));
        assert!((ms / mf - 1.0).abs() < 0.02, "means {ms} vs {mf}");
        let (ss, sf) = (sigma(&runs[0].periods_ps), sigma(&full[0].periods_ps));
        assert!(ss / sf < 2.0 && sf / ss < 2.0, "sigmas {ss} vs {sf}");
    }
}
