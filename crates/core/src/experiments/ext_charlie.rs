//! EXT-CHARLIE — ablation of the Charlie-effect magnitude.
//!
//! The Charlie effect is the paper's central mechanism: it locks the
//! evenly-spaced mode and regulates the token spacing. This ablation
//! sweeps `Dcharlie` on a 32-stage STR (everything else fixed) and
//! measures what the mechanism actually buys:
//!
//! * the **period** grows with `Dcharlie` (the spacing servo's price:
//!   `T = 4 (Ds + Dcharlie)` at `NT = NB`);
//! * the **period jitter** *falls* as `Dcharlie` grows: near `s = 0` the
//!   Charlie curve's flat bottom absorbs separation fluctuations, while
//!   at `Dcharlie = 0` the kinked `Ds + |s|` characteristic rectifies
//!   them into extra jitter — the paper's "variations are smoothed"
//!   argument (Sec. III-B), quantified;
//! * the evenly-spaced mode survives at every magnitude (the
//!   mean-referenced firing rule alone disperses clusters; cf. EXT-MODE
//!   where only *drafting* creates bursts).

use std::fmt;

use strent_analysis::jitter;
use strent_rings::mode::{classify_half_periods, OscillationMode};
use strent_rings::{measure, StrConfig};

use crate::calibration;
use crate::report::{fmt_mhz, fmt_ps, Table};

use super::runner::ExperimentRunner;
use super::{Effort, ExperimentError};

/// The swept Charlie magnitudes, ps.
pub const CHARLIE_SWEEP_PS: [f64; 5] = [0.0, 16.0, 64.0, 128.0, 256.0];

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtCharliePoint {
    /// The Charlie magnitude, ps.
    pub charlie_ps: f64,
    /// Mean frequency, MHz.
    pub frequency_mhz: f64,
    /// Period jitter, ps.
    pub sigma_period_ps: f64,
    /// Detected oscillation mode.
    pub mode: OscillationMode,
}

/// The EXT-CHARLIE result set.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtCharlieResult {
    /// One point per swept magnitude.
    pub points: Vec<ExtCharliePoint>,
}

impl fmt::Display for ExtCharlieResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "EXT-CHARLIE — Charlie-magnitude ablation on a 32-stage STR (NT = NB = 16)"
        )?;
        let mut table = Table::new(&["Dcharlie", "F (MHz)", "sigma_p", "mode"]);
        for p in &self.points {
            table.row_owned(vec![
                fmt_ps(p.charlie_ps),
                fmt_mhz(p.frequency_mhz),
                fmt_ps(p.sigma_period_ps),
                p.mode.to_string(),
            ]);
        }
        write!(f, "{table}")
    }
}

/// Runs the EXT-CHARLIE ablation on a caller-provided runner: one
/// sharded job per swept Charlie magnitude.
///
/// # Errors
///
/// Propagates ring simulation and analysis errors.
pub fn run_with(runner: &ExperimentRunner) -> Result<ExtCharlieResult, ExperimentError> {
    let periods = runner.effort().size(2_000, 8_000);
    let board = calibration::default_board();
    let points = runner.run_stage("ext_charlie", &CHARLIE_SWEEP_PS, |job, meter| {
        let charlie = *job.config;
        let config = StrConfig::new(32, 16)
            .expect("valid counts")
            .with_charlie_ps(charlie)?;
        let run = measure::run_str(&config, &board, job.seed(), periods)?;
        meter.record_sim(run.stats);
        Ok(ExtCharliePoint {
            charlie_ps: charlie,
            frequency_mhz: run.frequency_mhz,
            sigma_period_ps: jitter::period_jitter(&run.periods_ps)?,
            mode: classify_half_periods(&run.half_periods_ps),
        })
    })?;
    Ok(ExtCharlieResult { points })
}

/// Runs the EXT-CHARLIE ablation.
///
/// # Errors
///
/// Propagates ring simulation and analysis errors.
pub fn run(effort: Effort, seed: u64) -> Result<ExtCharlieResult, ExperimentError> {
    run_with(&ExperimentRunner::new(effort, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charlie_magnitude_trades_speed_for_jitter_smoothing() {
        let result = run(Effort::Quick, 23).expect("simulates");
        assert_eq!(result.points.len(), 5);
        // Frequency falls monotonically with Dcharlie (spacing price).
        for w in result.points.windows(2) {
            assert!(
                w[1].frequency_mhz < w[0].frequency_mhz,
                "frequency must fall: {} -> {}",
                w[0].frequency_mhz,
                w[1].frequency_mhz
            );
        }
        // Jitter at zero Charlie exceeds jitter at the calibrated 128 ps
        // (the rectified |s| kink vs the smooth bottom).
        let sigma_at = |c: f64| {
            result
                .points
                .iter()
                .find(|p| p.charlie_ps == c)
                .expect("swept")
                .sigma_period_ps
        };
        assert!(
            sigma_at(0.0) > 1.15 * sigma_at(128.0),
            "smoothing: sigma(0) {} vs sigma(128) {}",
            sigma_at(0.0),
            sigma_at(128.0)
        );
        // The evenly-spaced mode survives at every magnitude.
        for p in &result.points {
            assert_eq!(p.mode, OscillationMode::EvenlySpaced, "Dch = {}", p.charlie_ps);
        }
        let text = result.to_string();
        assert!(text.contains("EXT-CHARLIE"));
    }
}
