//! EXT-METHOD — validation of the paper's on-chip jitter measurement
//! method (Sec. V-D.2, Eq. 6).
//!
//! The paper could not check its divider method against ground truth —
//! the whole point of the method is that the scope cannot resolve the
//! raw jitter. The simulator can: we compute the period jitter directly
//! from the edge timestamps and compare it with the Eq. 6 estimate for
//! several divider settings.
//!
//! **Finding.** For the IRO the method is accurate: successive periods
//! use disjoint sets of stage-crossing noises, so they are independent
//! and Eq. 6's variance bookkeeping holds. For the STR it
//! *underestimates*: the Charlie effect mean-reverts the token spacing,
//! anti-correlating successive periods, so the jitter accumulated over
//! `2n` periods grows slower than `sqrt(2n)` — the independence
//! hypothesis behind Eq. 6 is violated (while the method's own normality
//! check still passes, so the violation is invisible on silicon). The
//! estimate decreases with the divider setting `n` toward the ring's
//! common-mode phase-diffusion floor. This plausibly explains why the
//! paper's divider-measured STR values (~2.5 ps at high `L`) sit *below*
//! `sqrt(2) sigma_g = 2.83 ps`.

use std::fmt;

use strent_analysis::divider::{measure as divider_measure, DividerMeasurement};
use strent_analysis::jitter;
use strent_rings::{IroConfig, StrConfig};

use crate::calibration;
use crate::report::{fmt_ps, Table};

use super::runner::{ExperimentRunner, RingSpec};
use super::{Effort, ExperimentError};

/// One divider-setting comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodPoint {
    /// The divider measurement (setting `n`, estimate, hypothesis
    /// check).
    pub measurement: DividerMeasurement,
    /// The ground-truth period jitter, ps.
    pub direct_sigma_ps: f64,
}

impl MethodPoint {
    /// Relative error of the Eq. 6 estimate vs ground truth.
    #[must_use]
    pub fn relative_error(&self) -> f64 {
        (self.measurement.sigma_p_ps - self.direct_sigma_ps).abs() / self.direct_sigma_ps
    }
}

/// The EXT-METHOD result for one ring.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodValidation {
    /// Display label.
    pub label: String,
    /// One point per divider setting.
    pub points: Vec<MethodPoint>,
    /// Lag-1 autocorrelation of the raw period series — the mechanism
    /// behind the STR bias (near 0 for IRO, negative for STR).
    pub lag1_autocorrelation: f64,
}

/// The full EXT-METHOD result set.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtMethodResult {
    /// Validation on the 96-stage STR and the 5-stage IRO.
    pub rings: Vec<MethodValidation>,
}

impl fmt::Display for ExtMethodResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "EXT-METHOD — Eq. 6 divider method vs ground truth")?;
        let mut table = Table::new(&[
            "Ring",
            "n",
            "sigma_cc(mes)",
            "sigma_p est.",
            "sigma_p direct",
            "rel. err.",
            "hypothesis",
        ]);
        for ring in &self.rings {
            writeln!(
                f,
                "{}: lag-1 period autocorrelation = {:+.3}",
                ring.label, ring.lag1_autocorrelation
            )?;
        }
        for ring in &self.rings {
            for p in &ring.points {
                table.row_owned(vec![
                    ring.label.clone(),
                    p.measurement.n.to_string(),
                    fmt_ps(p.measurement.sigma_cc_mes_ps),
                    fmt_ps(p.measurement.sigma_p_ps),
                    fmt_ps(p.direct_sigma_ps),
                    format!("{:.1} %", p.relative_error() * 100.0),
                    if p.measurement.normality.passes(0.01) {
                        "normal OK".to_owned()
                    } else {
                        "VIOLATED".to_owned()
                    },
                ]);
            }
        }
        write!(f, "{table}")
    }
}

/// Runs the EXT-METHOD experiment on a caller-provided runner: the two
/// long ring runs (the expensive part) are independent jobs, each
/// analyzed in place.
///
/// # Errors
///
/// Propagates ring simulation and analysis errors.
pub fn run_with(runner: &ExperimentRunner) -> Result<ExtMethodResult, ExperimentError> {
    let periods = runner.effort().size(16_000, 64_000);
    let settings = [4usize, 16, 64];
    let board = calibration::default_board();

    let specs = [
        (
            "STR 96C",
            RingSpec::Str(StrConfig::new(96, 48).expect("valid counts")),
        ),
        (
            "IRO 5C",
            RingSpec::Iro(IroConfig::new(5).expect("valid length")),
        ),
    ];
    let rings = runner.run_stage("ext_method", &specs, |job, meter| {
        let (label, spec) = job.config;
        let run = spec.measure(&board, job.seed(), periods, meter)?;
        let direct = jitter::period_jitter(&run.periods_ps)?;
        let mut points = Vec::new();
        for &n in &settings {
            points.push(MethodPoint {
                measurement: divider_measure(&run.periods_ps, n)?,
                direct_sigma_ps: direct,
            });
        }
        Ok(MethodValidation {
            label: (*label).to_owned(),
            points,
            lag1_autocorrelation: jitter::period_autocorrelation(&run.periods_ps, 1)?,
        })
    })?;
    Ok(ExtMethodResult { rings })
}

/// Runs the EXT-METHOD experiment.
///
/// # Errors
///
/// Propagates ring simulation and analysis errors.
pub fn run(effort: Effort, seed: u64) -> Result<ExtMethodResult, ExperimentError> {
    run_with(&ExperimentRunner::new(effort, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divider_method_is_exact_for_iros_and_biased_low_for_strs() {
        let result = run(Effort::Quick, 8).expect("simulates");
        assert_eq!(result.rings.len(), 2);
        let ring = |label: &str| {
            result
                .rings
                .iter()
                .find(|r| r.label == label)
                .expect("ring present")
        };

        // IRO periods are independent: Eq. 6 recovers the direct jitter
        // within sampling error for every divider setting.
        for p in &ring("IRO 5C").points {
            assert!(
                p.relative_error() < 0.15,
                "IRO n={}: est {} vs direct {}",
                p.measurement.n,
                p.measurement.sigma_p_ps,
                p.direct_sigma_ps
            );
        }

        // STR periods are anti-correlated by the Charlie servo: the
        // estimate sits below ground truth and falls further as `n`
        // grows (toward the common-mode diffusion floor).
        let points = &ring("STR 96C").points;
        for p in points {
            assert!(
                p.measurement.sigma_p_ps < p.direct_sigma_ps,
                "STR n={}: est {} should undershoot direct {}",
                p.measurement.n,
                p.measurement.sigma_p_ps,
                p.direct_sigma_ps
            );
        }
        assert!(
            points.last().expect("points").measurement.sigma_p_ps
                < points.first().expect("points").measurement.sigma_p_ps,
            "estimate decreases with n"
        );
        // Yet n = 4 stays in the right ballpark (the paper's numbers).
        assert!(points[0].relative_error() < 0.5);

        // The method's own validity hypothesis (normality) passes in
        // every case — the bias is undetectable on silicon.
        for ring in &result.rings {
            for p in &ring.points {
                assert!(p.measurement.normality.passes(0.001));
            }
        }

        // The mechanism: IRO periods are uncorrelated; the STR's
        // Charlie servo anti-correlates successive periods.
        assert!(
            ring("IRO 5C").lag1_autocorrelation.abs() < 0.05,
            "IRO lag-1 {}",
            ring("IRO 5C").lag1_autocorrelation
        );
        assert!(
            ring("STR 96C").lag1_autocorrelation < -0.1,
            "STR lag-1 {}",
            ring("STR 96C").lag1_autocorrelation
        );

        let text = result.to_string();
        assert!(text.contains("EXT-METHOD"));
        assert!(text.contains("normal OK"));
    }
}
