//! EXT-TRNG — the conclusion's claim at the bit level: elementary TRNGs
//! built on the two sources, evaluated clean and under a supply attack.
//!
//! Two configurations per source (IRO 5C and STR 96C, both ~300 MHz):
//!
//! * **quality** — a slow reference clock giving a healthy accumulated
//!   jitter ratio: the battery should pass (the TRNG works);
//! * **attacked** — a fast reference (weak entropy per bit, the regime
//!   where attacks bite) plus sinusoidal supply modulation. The induced
//!   deterministic structure is lock-in detected on the *bit stream* at
//!   the modulation frequency.
//!
//! **Finding.** At *matched output frequency* (IRO 5C vs STR 96C, both
//! ~300-380 MHz) the bit-level damage is comparable: the attack's phase
//! displacement integrates to `epsilon / omega` regardless of the ring
//! architecture, and the STR's smaller voltage sensitivity (Table I) is
//! partially offset by its lower per-sample noise, which keeps the
//! injected structure coherent for longer. The STR's robustness
//! advantage lives at the *source* level — EXT-DET shows its
//! deterministic jitter staying flat with length while the IRO's grows
//! linearly — and becomes decisive at matched logic footprint or in the
//! multi-phase STR samplers of the authors' follow-up work. The paper's
//! conclusion ("STR-based TRNGs *should* be more robust") is a
//! conjecture this experiment refines rather than blindly confirms.

use std::fmt;

use strent_rings::{IroConfig, StrConfig};
use strent_trng::attack::{attacked_phase_model, probe_response};
use strent_trng::battery;
use strent_trng::elementary::{ElementaryTrng, EntropySource};
use strent_trng::entropy;
use strent_trng::BitString;

use crate::calibration;
use crate::report::Table;

use super::runner::ExperimentRunner;
use super::{Effort, ExperimentError};

/// Supply attack amplitude, volts (±0.33% of nominal — small enough
/// that the induced phase displacement stays below half a ring period
/// for both sources; larger attacks wrap the phase and smear their own
/// fundamental, hiding the structure from a lock-in at the modulation
/// frequency).
pub const ATTACK_AMPLITUDE_V: f64 = 0.004;

/// Supply attack frequency, MHz.
pub const ATTACK_MHZ: f64 = 2.25;

/// Segmented (incoherent) lock-in amplitude of a bit stream at a known
/// per-sample period: the mean over fixed-length segments of the
/// segment's coherent lock-in magnitude.
///
/// Why segmented: the bit response to a phase modulation has *opposite
/// signs* at the stream's two decision thresholds (pushing the phase up
/// flips a bit low near 0.5 but high near the 1.0 wrap), so a
/// whole-stream coherent sum cancels over many phase-mixing times. Each
/// segment is short enough to stay sign-coherent; taking magnitudes
/// before averaging keeps the structure visible.
fn segmented_bit_lockin(bits: &BitString, period_samples: f64, segment: usize) -> f64 {
    let omega = std::f64::consts::TAU / period_samples;
    let b = bits.as_slice();
    let mut total = 0.0;
    let mut segments = 0usize;
    for chunk in b.chunks_exact(segment) {
        let (mut i_sum, mut q_sum) = (0.0, 0.0);
        for (k, &bit) in chunk.iter().enumerate() {
            let x = 2.0 * f64::from(bit) - 1.0;
            i_sum += x * (omega * k as f64).sin();
            q_sum += x * (omega * k as f64).cos();
        }
        total += 2.0 * (i_sum * i_sum + q_sum * q_sum).sqrt() / segment as f64;
        segments += 1;
    }
    if segments == 0 {
        0.0
    } else {
        total / segments as f64
    }
}

/// Segment length for [`segmented_bit_lockin`]: a fraction of the weak
/// stream's phase-mixing time `(T / sigma_acc)^2 ~ 30k samples`.
const LOCKIN_SEGMENT: usize = 16_384;

/// Evaluation of one source in the quality configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityRow {
    /// Display label.
    pub label: String,
    /// `sigma_acc / T` at the slow reference.
    pub quality_factor: f64,
    /// Shannon entropy per raw bit.
    pub shannon_entropy: f64,
    /// Battery tests passed at alpha = 0.01.
    pub battery_passed: usize,
    /// Battery tests run (the matrix-rank test joins for long streams).
    pub battery_total: usize,
}

/// Evaluation of one source under attack.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackRow {
    /// Display label.
    pub label: String,
    /// Measured deterministic period amplitude, ps.
    pub det_amplitude_ps: f64,
    /// Lock-in amplitude on the clean bit stream.
    pub clean_structure: f64,
    /// Lock-in amplitude on the attacked bit stream.
    pub attacked_structure: f64,
}

/// The EXT-TRNG result set.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtTrngResult {
    /// Quality configuration rows (IRO 5C, STR 96C).
    pub quality: Vec<QualityRow>,
    /// Attack configuration rows (IRO 5C, STR 96C).
    pub attack: Vec<AttackRow>,
}

impl fmt::Display for ExtTrngResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "EXT-TRNG — elementary TRNGs on both sources")?;
        writeln!(f, "\nquality configuration (slow reference clock):")?;
        let mut table = Table::new(&["Source", "q = sigma_acc/T", "H_shannon", "battery"]);
        for row in &self.quality {
            table.row_owned(vec![
                row.label.clone(),
                format!("{:.3}", row.quality_factor),
                format!("{:.4}", row.shannon_entropy),
                format!("{}/{}", row.battery_passed, row.battery_total),
            ]);
        }
        write!(f, "{table}")?;
        writeln!(
            f,
            "\nattack configuration (fast reference, {:.2} MHz / ±{:.1}% supply sine):",
            ATTACK_MHZ,
            ATTACK_AMPLITUDE_V / 1.2 * 100.0
        )?;
        let mut table = Table::new(&["Source", "A_det (ps)", "structure clean", "structure attacked"]);
        for row in &self.attack {
            table.row_owned(vec![
                row.label.clone(),
                format!("{:.1}", row.det_amplitude_ps),
                format!("{:.4}", row.clean_structure),
                format!("{:.4}", row.attacked_structure),
            ]);
        }
        write!(f, "{table}")
    }
}

/// Runs the EXT-TRNG experiment on a caller-provided runner: one
/// sharded job per source, each evaluating both the quality and the
/// attack configuration with seeds forked from its job subtree.
///
/// # Errors
///
/// Propagates ring simulation, TRNG and analysis errors.
pub fn run_with(runner: &ExperimentRunner) -> Result<ExtTrngResult, ExperimentError> {
    let calibration_periods = runner.effort().size(1_500, 4_000);
    let bits_quality = runner.effort().size(30_000, 200_000);
    // The weak-source phase walk mixes over ~(T/sigma_acc)^2 ~ 30k
    // samples; the attack stream must be several mixing times long or
    // the lock-in depends on where the phase lingered.
    let bits_attack = runner.effort().size(400_000, 2_000_000);
    let board = calibration::default_board();

    let sources = [
        (
            "IRO 5C",
            EntropySource::Iro(IroConfig::new(5).expect("valid length")),
        ),
        (
            "STR 96C",
            EntropySource::Str(StrConfig::new(96, 48).expect("valid counts")),
        ),
    ];

    let rows = runner.run_stage("ext_trng", &sources, |job, _meter| {
        let (label, source) = job.config;
        let seed = job.seed();
        let period = source.predicted_period_ps(&board);

        // Quality configuration: a reference slow enough for q = 0.5.
        // Calibrate the accumulated jitter at a measurable reference,
        // then scale by the white-noise sqrt law to the q = 0.5 point
        // (the required reference period is milliseconds — cheap in the
        // phase model, intractable event-by-event).
        let t_ref_probe = period * 20.0;
        let trng = ElementaryTrng::new(source.clone(), t_ref_probe, 0.0)?;
        let probe_model = trng.calibrated_phase_model(&board, seed, calibration_periods)?;
        let mut model = strent_trng::phase::PhaseModel::new(
            probe_model.period_ps(),
            0.5 * probe_model.period_ps(),
            job.rng.fork(1).master_seed(),
        )?;
        let bits = model.generate(bits_quality);
        let report = battery::run_all(&bits)?;
        let quality = QualityRow {
            label: (*label).to_owned(),
            quality_factor: model.quality_factor(),
            shannon_entropy: entropy::shannon_bit_entropy(&bits)?,
            battery_passed: report.passed(0.01),
            battery_total: report.outcomes.len(),
        };

        // Attack configuration: fast reference (weak per-bit entropy).
        let t_ref_attack = period * 18.0;
        let trng = ElementaryTrng::new(source.clone(), t_ref_attack, 0.0)?;
        let weak_model = trng.calibrated_phase_model(&board, seed, calibration_periods)?;
        let response = probe_response(
            source,
            &board,
            ATTACK_AMPLITUDE_V,
            ATTACK_MHZ,
            seed,
            calibration_periods,
        )?;
        let mod_period_samples = (1e6 / ATTACK_MHZ) / t_ref_attack;
        let clean_bits = weak_model.clone().generate(bits_attack);
        let mut attacked = attacked_phase_model(
            &response,
            weak_model.sigma_acc_ps(),
            t_ref_attack,
            job.rng.fork(2).master_seed(),
        )?;
        let attacked_bits = attacked.generate(bits_attack);
        let attack = AttackRow {
            label: (*label).to_owned(),
            det_amplitude_ps: response.det_amplitude_ps,
            clean_structure: segmented_bit_lockin(
                &clean_bits,
                mod_period_samples,
                LOCKIN_SEGMENT,
            ),
            attacked_structure: segmented_bit_lockin(
                &attacked_bits,
                mod_period_samples,
                LOCKIN_SEGMENT,
            ),
        };
        Ok((quality, attack))
    })?;

    let (quality, attack) = rows.into_iter().unzip();
    Ok(ExtTrngResult { quality, attack })
}

/// Runs the EXT-TRNG experiment.
///
/// # Errors
///
/// Propagates ring simulation, TRNG and analysis errors.
pub fn run(effort: Effort, seed: u64) -> Result<ExtTrngResult, ExperimentError> {
    run_with(&ExperimentRunner::new(effort, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trng_quality_and_attack_contrast() {
        let result = run(Effort::Quick, 9).expect("simulates");
        assert_eq!(result.quality.len(), 2);
        assert_eq!(result.attack.len(), 2);

        // Quality configuration: both sources make working TRNGs.
        for row in &result.quality {
            assert!(row.quality_factor > 0.3, "{}: q {}", row.label, row.quality_factor);
            assert!(row.shannon_entropy > 0.99, "{}: H {}", row.label, row.shannon_entropy);
            assert!(row.battery_passed >= 6, "{}: {}/8", row.label, row.battery_passed);
        }

        // Attack: the modulation injects detectable structure into both
        // weak streams (the refs [1]/[2] attack works on either source).
        for row in &result.attack {
            assert!(
                row.attacked_structure > 3.0 * row.clean_structure,
                "{}: clean {} vs attacked {}",
                row.label,
                row.clean_structure,
                row.attacked_structure
            );
        }
        // At matched output frequency the damage is comparable (within
        // 5x either way): the displacement epsilon/omega is
        // architecture-independent. See the module docs — the STR's
        // decisive advantage is at the source level (EXT-DET).
        let iro = &result.attack[0];
        let strr = &result.attack[1];
        let ratio = strr.attacked_structure / iro.attacked_structure;
        assert!(
            (0.2..5.0).contains(&ratio),
            "unexpected asymmetry: STR {} vs IRO {}",
            strr.attacked_structure,
            iro.attacked_structure
        );
        // The STR's source-level deterministic response is no worse than
        // the IRO's at matched frequency (its better RVV compensates its
        // slightly longer period).
        assert!(
            strr.det_amplitude_ps < 1.3 * iro.det_amplitude_ps,
            "STR A_det {} vs IRO A_det {}",
            strr.det_amplitude_ps,
            iro.det_amplitude_ps
        );
        let text = result.to_string();
        assert!(text.contains("EXT-TRNG"));
    }
}
