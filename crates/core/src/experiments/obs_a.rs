//! Sec. V-A observation — the evenly-spaced locking range of a 32-stage
//! STR: the paper reports the mode for `NT in {10, 12, ..., 20}` and
//! attributes the wide range to a strong Charlie effect in the device.

use std::fmt;

use strent_analysis::jitter;
use strent_rings::mode::{classify_half_periods, spacing_cv, OscillationMode};
use strent_rings::{analytic, measure, StrConfig};

use crate::calibration;
use crate::report::{fmt_mhz, Table};

use super::runner::ExperimentRunner;
use super::{Effort, ExperimentError};

/// One token-count probe of the 32-stage ring.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsAPoint {
    /// Token count `NT` (with `NB = 32 - NT`).
    pub tokens: usize,
    /// The detected mode.
    pub mode: OscillationMode,
    /// Spacing coefficient of variation.
    pub spacing_cv: f64,
    /// Mean frequency, MHz.
    pub frequency_mhz: f64,
    /// The timing-closure prediction
    /// ([`analytic::str_period_general_ps`]), MHz.
    pub predicted_mhz: f64,
    /// Period jitter, ps — the curve the paper never measured: the
    /// entropy source is best exactly at the design rule (NT = NB) and
    /// degrades as the scarce species stops averaging.
    pub sigma_period_ps: f64,
}

/// The reproduced Sec. V-A observation.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsAResult {
    /// One point per even token count probed.
    pub points: Vec<ObsAPoint>,
}

impl ObsAResult {
    /// The token counts that locked into the evenly-spaced mode.
    #[must_use]
    pub fn evenly_spaced_range(&self) -> Vec<usize> {
        self.points
            .iter()
            .filter(|p| p.mode == OscillationMode::EvenlySpaced)
            .map(|p| p.tokens)
            .collect()
    }
}

impl fmt::Display for ObsAResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Sec. V-A — oscillation mode of a 32-stage STR vs token count"
        )?;
        let mut table = Table::new(&[
            "NT", "NB", "mode", "spacing CV", "F (MHz)", "predicted (MHz)", "sigma_p",
        ]);
        for p in &self.points {
            table.row_owned(vec![
                p.tokens.to_string(),
                (32 - p.tokens).to_string(),
                p.mode.to_string(),
                format!("{:.3}", p.spacing_cv),
                fmt_mhz(p.frequency_mhz),
                fmt_mhz(p.predicted_mhz),
                format!("{:.2} ps", p.sigma_period_ps),
            ]);
        }
        write!(f, "{table}")?;
        writeln!(
            f,
            "evenly-spaced for NT in {:?} (paper: 10..=20)",
            self.evenly_spaced_range()
        )
    }
}

/// Runs the Sec. V-A experiment on a caller-provided runner: one
/// sharded job per probed token count.
///
/// # Errors
///
/// Propagates ring simulation errors.
pub fn run_with(runner: &ExperimentRunner) -> Result<ObsAResult, ExperimentError> {
    let periods = runner.effort().size(200, 600);
    let board = calibration::default_board();
    let tokens: Vec<usize> = (4..=28).step_by(2).collect();
    let points = runner.run_stage("obs_a", &tokens, |job, meter| {
        let tokens = *job.config;
        let config = StrConfig::new(32, tokens).expect("valid counts");
        let run = measure::run_str(&config, &board, job.seed(), periods)?;
        meter.record_sim(run.stats);
        Ok(ObsAPoint {
            tokens,
            mode: classify_half_periods(&run.half_periods_ps),
            spacing_cv: spacing_cv(&run.half_periods_ps).unwrap_or(f64::NAN),
            frequency_mhz: run.frequency_mhz,
            predicted_mhz: 1e6 / analytic::str_period_general_ps(&config, &board),
            sigma_period_ps: jitter::period_jitter(&run.periods_ps)?,
        })
    })?;
    Ok(ObsAResult { points })
}

/// Runs the Sec. V-A experiment: every even `NT` from 4 to 28.
///
/// # Errors
///
/// Propagates ring simulation errors.
pub fn run(effort: Effort, seed: u64) -> Result<ObsAResult, ExperimentError> {
    run_with(&ExperimentRunner::new(effort, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_a_locking_range_covers_the_papers() {
        let result = run(Effort::Quick, 4).expect("simulates");
        assert_eq!(result.points.len(), 13);
        let range = result.evenly_spaced_range();
        // The paper observed evenly-spaced behaviour for NT 10..=20 and
        // explains it by a strong Charlie effect; our calibrated Charlie
        // magnitude locks at least that range.
        for nt in [10usize, 12, 14, 16, 18, 20] {
            assert!(range.contains(&nt), "NT={nt} missing from {range:?}");
        }
        // Frequency peaks near NT = NB = 16 and falls toward the ends.
        let f = |nt: usize| {
            result
                .points
                .iter()
                .find(|p| p.tokens == nt)
                .expect("probed")
                .frequency_mhz
        };
        assert!(f(16) > f(4));
        assert!(f(16) > f(28));
        // The timing-closure prediction tracks the simulation across
        // the whole token range.
        for p in &result.points {
            assert!(
                (p.frequency_mhz / p.predicted_mhz - 1.0).abs() < 0.03,
                "NT={}: sim {} vs predicted {}",
                p.tokens,
                p.frequency_mhz,
                p.predicted_mhz
            );
        }
        // Jitter is minimized at (or adjacent to) the balanced design
        // point and grows toward both starved ends — why the paper's
        // Eq. 2 design rule also optimizes the entropy source.
        let sigma = |nt: usize| {
            result
                .points
                .iter()
                .find(|p| p.tokens == nt)
                .expect("probed")
                .sigma_period_ps
        };
        assert!(sigma(16) < sigma(4), "balanced {} vs starved {}", sigma(16), sigma(4));
        assert!(sigma(16) < sigma(28));
        assert!((2.0..5.0).contains(&sigma(16)), "balanced sigma {}", sigma(16));
        let text = result.to_string();
        assert!(text.contains("32-stage"));
    }
}
