//! Table/CSV rendering for experiment results.

use std::fmt;

/// A simple column-aligned text table (what the repro binaries print).
///
/// # Examples
///
/// ```
/// use strentropy::report::Table;
///
/// let mut t = Table::new(&["Ring", "Fn (MHz)", "dF"]);
/// t.row(&["IRO 5C", "376", "49 %"]);
/// t.row(&["STR 96C", "320", "37 %"]);
/// let text = t.to_string();
/// assert!(text.contains("IRO 5C"));
/// assert!(text.lines().count() >= 4); // header + rule + 2 rows
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|&h| h.to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn row(&mut self, cells: &[&str]) {
        self.rows.push(cells.iter().map(|&c| c.to_owned()).collect());
    }

    /// Appends a row of already-owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as comma-separated values (header row included).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            (0..cols)
                .map(|i| {
                    let cell = cells.get(i).map_or("", String::as_str);
                    format!("{cell:<width$}", width = widths[i])
                })
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_owned()
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|&w| "-".repeat(w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Formats a frequency in MHz with a sensible precision.
#[must_use]
pub fn fmt_mhz(f: f64) -> String {
    if f >= 100.0 {
        format!("{f:.1}")
    } else {
        format!("{f:.2}")
    }
}

/// Formats a fraction as a percentage (`0.49 -> "49.0 %"`).
#[must_use]
pub fn fmt_percent(x: f64) -> String {
    format!("{:.1} %", x * 100.0)
}

/// Formats picoseconds with two decimals.
#[must_use]
pub fn fmt_ps(x: f64) -> String {
    format!("{x:.2} ps")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_content() {
        let mut t = Table::new(&["A", "Blong"]);
        t.row(&["x", "1"]);
        t.row_owned(vec!["yy".to_owned(), "2".to_owned(), "extra".to_owned()]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("A "));
        assert!(lines[1].starts_with("-"));
        assert!(text.contains("extra"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_mhz(376.04), "376.0");
        assert_eq!(fmt_mhz(23.456), "23.46");
        assert_eq!(fmt_percent(0.49), "49.0 %");
        assert_eq!(fmt_ps(2.5), "2.50 ps");
    }
}
