//! Calibrated defaults shared by all experiments.
//!
//! Every constant here traces back to a number in the paper; see
//! `DESIGN.md` §5 for the derivations.

use strent_device::{Board, BoardFarm, Technology};

/// The master seed all paper-reproduction runs derive from (the paper's
/// publication year — any value works, this one makes reruns citable).
pub const PAPER_SEED: u64 = 2012;

/// Number of evaluation boards the paper used.
pub const BOARD_COUNT: usize = 5;

/// The voltage sweep of Fig. 8 / Table I: 1.0 V to 1.4 V.
pub const SWEEP_VOLTS: [f64; 9] = [1.0, 1.05, 1.1, 1.15, 1.2, 1.25, 1.3, 1.35, 1.4];

/// Nominal core voltage.
pub const NOMINAL_VOLTS: f64 = 1.2;

/// IRO lengths measured in Fig. 11.
pub const FIG11_LENGTHS: [usize; 8] = [3, 5, 9, 15, 25, 41, 60, 80];

/// STR lengths measured in Fig. 12 (all with `NT = NB = L/2`).
pub const FIG12_LENGTHS: [usize; 8] = [4, 8, 16, 24, 32, 48, 64, 96];

/// IRO lengths of Table I.
pub const TABLE1_IRO_LENGTHS: [usize; 3] = [5, 25, 80];

/// STR lengths of Table I.
pub const TABLE1_STR_LENGTHS: [usize; 5] = [4, 24, 48, 64, 96];

/// The paper's Table I reference excursions, for EXPERIMENTS.md
/// comparisons: `(ring label, dF as a fraction)`.
pub const TABLE1_PAPER_DF: [(&str, f64); 8] = [
    ("IRO 5C", 0.49),
    ("IRO 25C", 0.48),
    ("IRO 80C", 0.47),
    ("STR 4C", 0.50),
    ("STR 24C", 0.44),
    ("STR 48C", 0.39),
    ("STR 64C", 0.39),
    ("STR 96C", 0.37),
];

/// The paper's Table II reference `sigma_rel` values.
pub const TABLE2_PAPER_SIGMA_REL: [(&str, f64); 4] = [
    ("IRO 3C", 0.0079),
    ("IRO 5C", 0.0062),
    ("STR 4C", 0.0076),
    ("STR 96C", 0.0015),
];

/// Extra per-stage routing of the *Table II* IRO 5C placement.
///
/// The paper's own numbers disagree between tables: IRO 5C runs at
/// 376 MHz in Table I but ~305 MHz in Table II and Fig. 9 — two
/// different placements on real silicon. 305 MHz needs a per-stage
/// delay of `1e6 / (2*5*305) ~ 328 ps`, i.e. ~62 ps more interconnect
/// than the compact Table-I placement; Table II reproductions add this.
pub const TABLE2_IRO5_EXTRA_ROUTING_PS: f64 = 62.0;

/// The five evaluation boards, freshly drawn from the default
/// technology with the paper seed.
#[must_use]
pub fn paper_boards() -> BoardFarm {
    BoardFarm::new(Technology::cyclone_iii(), BOARD_COUNT, PAPER_SEED)
}

/// Board 1 of the farm — the default single-board bench.
#[must_use]
pub fn default_board() -> Board {
    paper_boards().board(0).clone()
}

/// A noise- and variation-free board for deterministic shape checks.
#[must_use]
pub fn ideal_board() -> Board {
    Board::new(
        Technology::cyclone_iii()
            .with_sigma_g_ps(0.0)
            .with_sigma_intra(0.0)
            .with_sigma_inter(0.0),
        0,
        PAPER_SEED,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boards_are_reproducible() {
        let a = paper_boards();
        let b = paper_boards();
        assert_eq!(a.len(), 5);
        for i in 0..5 {
            assert_eq!(
                a.board(i).lut(0).transistor_ps(),
                b.board(i).lut(0).transistor_ps()
            );
        }
        assert_eq!(default_board().id(), 0);
    }

    #[test]
    fn sweep_contains_nominal() {
        assert!(SWEEP_VOLTS.contains(&NOMINAL_VOLTS));
        assert_eq!(SWEEP_VOLTS.len(), 9);
        assert!(SWEEP_VOLTS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn ideal_board_is_noise_free() {
        let b = ideal_board();
        assert_eq!(b.technology().sigma_g_ps(), 0.0);
        assert_eq!(b.technology().sigma_intra(), 0.0);
    }
}
