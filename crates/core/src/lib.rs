//! # strentropy — STR vs IRO entropy sources in FPGAs
//!
//! A from-scratch reproduction of **"Comparison of Self-Timed Ring and
//! Inverter Ring Oscillators as Entropy Sources in FPGAs"** (Cherkaoui,
//! Fischer, Aubert, Fesquet — DATE 2012), built on a discrete-event
//! timing simulator instead of Cyclone III silicon.
//!
//! This crate is the facade: it re-exports the substrate crates and adds
//! the **experiment layer** — one module per table/figure of the paper,
//! each of which regenerates the corresponding result:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`experiments::fig5`]  | Fig. 5 — burst vs evenly-spaced modes |
//! | [`experiments::fig7`]  | Fig. 7 — the Charlie diagram |
//! | [`experiments::fig8`]  | Fig. 8 — normalized frequency vs voltage |
//! | [`experiments::table1`]| Table I — normalized frequency excursions |
//! | [`experiments::table2`]| Table II — extra-device `sigma_rel` |
//! | [`experiments::fig9`]  | Fig. 9 — period jitter histograms |
//! | [`experiments::fig11`] | Fig. 11 — IRO jitter vs ring length |
//! | [`experiments::fig12`] | Fig. 12 — STR jitter vs ring length |
//! | [`experiments::obs_a`] | Sec. V-A — evenly-spaced locking range |
//! | [`experiments::ext_det`] | Sec. IV-B — deterministic jitter accumulation |
//! | [`experiments::ext_method`] | Sec. V-D.2 — divider method validation |
//! | [`experiments::ext_trng`] | Conclusion — TRNG robustness under attack |
//! | [`experiments::ext_mode`] | refs \[3\],\[4\] — mode map over (Charlie, drafting) |
//! | [`experiments::ext_charlie`] | Sec. III-B ablation — Charlie magnitude sweep |
//! | [`experiments::ext_flicker`] | model extension — 1/f-like delay noise |
//! | [`experiments::ext_restart`] | restart-based true-randomness certification |
//! | [`experiments::ext_multi`] | future work — the multi-phase STR TRNG |
//! | [`experiments::ext_coherent`] | ref \[7\] — coherent sampling across devices |
//! | [`experiments::degradation`] | SP 800-90B §4.4 — fault injection vs online health tests |
//!
//! ## Quickstart
//!
//! ```
//! use strentropy::prelude::*;
//!
//! // One simulated Cyclone III board...
//! let board = Board::new(Technology::cyclone_iii(), 0, 42);
//! // ...carrying a 96-stage self-timed ring with NT = NB = 48.
//! let config = StrConfig::new(96, 48)?;
//! let run = measure::run_str(&config, &board, 7, 200)?;
//! // The paper's Table II reports ~320-328 MHz for this ring.
//! assert!((300.0..350.0).contains(&run.frequency_mhz));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod experiments;
pub mod pool;
pub mod report;

pub use strent_analysis as analysis;
pub use strent_device as device;
pub use strent_rings as rings;
pub use strent_sim as sim;
pub use strent_trng as trng;

pub use experiments::{Effort, ExperimentError};

/// The convenient single import for experiment code.
pub mod prelude {
    pub use strent_analysis::{frequency, jitter, stats, Histogram, Summary};
    pub use strent_device::{Board, BoardFarm, Supply, Technology};
    pub use strent_rings::{
        analytic, measure, mode, IroConfig, OscillationMode, StrConfig, StrState,
    };
    pub use strent_sim::{Bit, Simulator, Time};
    pub use strent_trng::{battery, entropy, postprocess, BitString};

    pub use crate::calibration;
    pub use crate::experiments::{self, Effort};
    pub use crate::pool::{PoolConfig, RingSpec, SourceSpec, SourceState};
    pub use crate::report::Table;
}
