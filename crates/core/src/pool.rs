//! Pool configuration for the entropy service.
//!
//! `strent-serve` owns a pool of long-running ring-backed TRNG sources;
//! *what* those sources are — ring presets, seeds, per-source process
//! variation, sampling and conditioning parameters, health and re-lock
//! thresholds — is experiment-layer vocabulary and lives here, next to
//! the experiments that calibrated it:
//!
//! * the health cutoffs reuse [`degradation::CLAIMED_H`], the claim the
//!   EXT-DEGRADATION experiment characterizes detection latency for;
//! * the re-lock threshold mirrors the `rising_interval_cv < 0.05`
//!   criterion the fault experiments use to call an STR phase-locked;
//! * the ring presets are the paper's configurations (STR-32 and
//!   STR-64 with `NT = NB = L/2`, IRO-32).
//!
//! The serving crate consumes a validated [`PoolConfig`] and never
//! invents physics parameters of its own; see `docs/serving.md`.

use strent_device::{Board, Technology};
use strent_rings::stream::StreamConfig;
use strent_rings::surrogate::SourceBackend;
use strent_rings::{IroConfig, StrConfig};
use strent_sim::FaultPlan;
use strent_trng::postprocess::ConditionerKind;
use strent_trng::TrngError;

use crate::experiments::degradation;
use crate::experiments::ExperimentError;

/// Ring presets the pool can instantiate — the paper's configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingSpec {
    /// 32-stage self-timed ring, `NT = NB = 16` (evenly-spaced mode).
    Str32,
    /// 64-stage self-timed ring, `NT = NB = 32`.
    Str64,
    /// 32-stage inverter ring oscillator.
    Iro32,
}

/// Smallest analytic min-entropy bound the pool will adopt as its
/// claimed rate. Below this the derived claim would drag the SP 800-90B
/// cutoffs into never-fire territory (an RCT cutoff of hundreds of
/// identical bits detects nothing in a 256-bit batch), so the pool
/// falls back to the EXT-DEGRADATION claim the health tests were
/// characterized against. The honest bound remains available from
/// [`RingSpec::analytic_entropy_bound`] for reporting.
pub const DERIVED_CLAIM_FLOOR: f64 = 0.05;

impl RingSpec {
    /// A short stable label (used in reports and JSON).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            RingSpec::Str32 => "str32",
            RingSpec::Str64 => "str64",
            RingSpec::Iro32 => "iro32",
        }
    }

    /// The analytic per-bit min-entropy lower bound of this preset on
    /// the given board at the given sampling period (a multiple of the
    /// ring period): accumulated jitter over the sampling interval is
    /// `sigma_period * sqrt(factor)` (white phase diffusion), the
    /// quality ratio is that over the ring period, and the bound is the
    /// bit-pattern model's (`strent_analysis::entropy`).
    ///
    /// Returns `None` instead of an error when the inputs leave the
    /// model's domain (non-finite or sub-unity factor, degenerate
    /// board) — callers fall back to the characterized claim.
    #[must_use]
    pub fn analytic_entropy_bound(
        &self,
        board: &Board,
        sample_period_factor: f64,
    ) -> Option<f64> {
        if !(sample_period_factor.is_finite() && sample_period_factor >= 1.0) {
            return None;
        }
        use strent_rings::analytic;
        let (period_ps, sigma_period_ps) = match self {
            RingSpec::Str32 | RingSpec::Str64 => {
                let StreamConfig::Str(config) = self.stream_config() else {
                    return None;
                };
                (
                    analytic::str_period_ps(&config, board),
                    analytic::str_sigma_period_ps(board),
                )
            }
            RingSpec::Iro32 => {
                let StreamConfig::Iro(config) = self.stream_config() else {
                    return None;
                };
                (
                    analytic::iro_period_ps(&config, board),
                    analytic::iro_sigma_period_ps(&config, board),
                )
            }
        };
        let sigma_acc_ps = sigma_period_ps * sample_period_factor.sqrt();
        let q = strent_analysis::entropy::sampling_ratio(sigma_acc_ps, period_ps).ok()?;
        strent_analysis::entropy::min_entropy_bound(q).ok()
    }

    /// The claimed per-bit min-entropy the pool gates this preset with:
    /// the analytic bound when it clears [`DERIVED_CLAIM_FLOOR`],
    /// otherwise the EXT-DEGRADATION claim ([`degradation::CLAIMED_H`])
    /// whose detection latency the health tests were calibrated
    /// against.
    #[must_use]
    pub fn claimed_entropy(&self, board: &Board, sample_period_factor: f64) -> f64 {
        match self.analytic_entropy_bound(board, sample_period_factor) {
            Some(bound) if bound >= DERIVED_CLAIM_FLOOR => bound,
            _ => degradation::CLAIMED_H,
        }
    }

    /// The stream configuration this preset builds.
    #[must_use]
    pub fn stream_config(&self) -> StreamConfig {
        match self {
            RingSpec::Str32 => {
                StreamConfig::Str(StrConfig::new(32, 16).expect("preset is valid"))
            }
            RingSpec::Str64 => {
                StreamConfig::Str(StrConfig::new(64, 32).expect("preset is valid"))
            }
            RingSpec::Iro32 => {
                StreamConfig::Iro(IroConfig::new(32).expect("preset is valid"))
            }
        }
    }
}

/// One entropy source in the pool: a ring preset placed on its own
/// simulated device, with a dedicated noise seed and an optional fault
/// plan (for drills and degradation-aware serving tests).
#[derive(Debug, Clone, PartialEq)]
pub struct SourceSpec {
    /// Which ring this source runs.
    pub ring: RingSpec,
    /// The simulator noise seed — the source's entire output stream is
    /// a pure function of `(ring, seed, board_seed, fault)`.
    pub seed: u64,
    /// The process-variation seed of the board this source is placed
    /// on (distinct boards model distinct FPGA placements).
    pub board_seed: u64,
    /// Fault plan to arm at build time, if any.
    pub fault: Option<FaultPlan>,
    /// Requested waveform backend. [`SourceBackend::FullSim`] (the
    /// default) always simulates; [`SourceBackend::Surrogate`] opts
    /// into the calibrated fast path, which still falls back to the
    /// full simulation near mode boundaries or when `fault` is armed
    /// (`strent_rings::surrogate::surrogate_eligible`).
    pub backend: SourceBackend,
    /// Chaos-drill hook: the producing worker panics once after this
    /// source has delivered exactly this many batches. `None` (the
    /// default) disables the trigger; it exists so the supervision
    /// layer's recovery path can be exercised deterministically, and
    /// has no effect on the bytes the source produces (streams are
    /// rebuilt and fast-forwarded on restart).
    pub panic_after_batches: Option<u64>,
}

impl SourceSpec {
    /// A healthy source of the given preset and noise seed, placed on a
    /// board whose process seed is derived from the noise seed.
    #[must_use]
    pub fn new(ring: RingSpec, seed: u64) -> Self {
        SourceSpec {
            ring,
            seed,
            board_seed: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
            fault: None,
            backend: SourceBackend::FullSim,
            panic_after_batches: None,
        }
    }

    /// Places the source on a specific board process seed.
    #[must_use]
    pub fn with_board_seed(mut self, board_seed: u64) -> Self {
        self.board_seed = board_seed;
        self
    }

    /// Arms a fault plan on this source.
    #[must_use]
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Requests a waveform backend (subject to the surrogate fallback
    /// rules at build time).
    #[must_use]
    pub fn with_backend(mut self, backend: SourceBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Arms the chaos-drill worker panic after `batches` delivered
    /// batches (must be ≥ 1; validation rejects 0 because "panic
    /// before the first batch" would make delivered-count fast-forward
    /// on restart degenerate).
    #[must_use]
    pub fn with_panic_after(mut self, batches: u64) -> Self {
        self.panic_after_batches = Some(batches);
        self
    }

    /// The board this source is placed on (`index` becomes the board
    /// id, purely cosmetic).
    #[must_use]
    pub fn board(&self, index: usize) -> Board {
        Board::new(Technology::cyclone_iii(), index, self.board_seed)
    }
}

/// Full configuration of a source pool: the sources plus every sampling,
/// conditioning, health and re-lock parameter the service needs.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolConfig {
    /// The sources, in pool order (pool order is the deterministic
    /// interleave order of the served stream).
    pub sources: Vec<SourceSpec>,
    /// Claimed per-bit min-entropy for the SP 800-90B cutoffs. Defaults
    /// to [`degradation::CLAIMED_H`] so serving is gated by exactly the
    /// thresholds EXT-DEGRADATION characterizes.
    pub claimed_min_entropy: f64,
    /// Conditioning applied to health-passed raw bits.
    pub conditioner: ConditionerKind,
    /// Reference sampling period as a multiple of the ring's expected
    /// period. Large factors accumulate more jitter per sample (better
    /// entropy, slower). Keep it away from integers: a near-commensurate
    /// ratio freezes the sampling phase and a perfectly healthy ring
    /// would read as stuck (long identical-bit runs tripping the RCT).
    pub sample_period_factor: f64,
    /// Flip-flop metastability window, ps.
    pub meta_window_ps: f64,
    /// Raw bits produced per batch per source (health gating is
    /// all-or-nothing at this granularity).
    pub batch_raw_bits: usize,
    /// Expected ring periods to discard at startup and after a
    /// quarantine before sampling resumes (the lock transient).
    pub warmup_periods: f64,
    /// Re-admission threshold on [`rising_interval_cv`]
    /// (`strent_rings::fault::rising_interval_cv`): a quarantined
    /// source rejoins only once its CV over the re-lock window drops
    /// below this. The fault experiments use 0.05 for "phase-locked".
    pub relock_cv_threshold: f64,
    /// Length of the re-lock measurement window, in expected periods.
    pub relock_window_periods: f64,
    /// Re-lock windows a quarantined source may fail before it is
    /// declared unrecoverable and replaced by a fresh ring.
    pub max_relock_windows: usize,
    /// Markov order of the online per-source entropy-rate estimator
    /// (`strent_analysis::markov` over the delivered conditioned bits).
    pub entropy_order: usize,
    /// Sliding-window length, in delivered bits, the online estimator
    /// re-estimates over. Must hold the `(4 << order).max(64)`
    /// transitions a verdict requires *plus* the `order` priming bits.
    pub entropy_window_bits: usize,
    /// Demotion threshold as a fraction of the claimed min-entropy:
    /// a source whose online estimate drops below
    /// `demote_fraction * claimed_min_entropy` is weighted down by
    /// entropy-aware consumption (it keeps producing and keeps being
    /// health-tested; demotion only slows how fast the pool drains it).
    pub demote_fraction: f64,
}

impl PoolConfig {
    /// A pool of `n` healthy sources cycling through the three presets
    /// (STR-32, STR-64, IRO-32), with noise seeds derived from `seed`.
    #[must_use]
    pub fn mixed_default(n: usize, seed: u64) -> Self {
        const PRESETS: [RingSpec; 3] = [RingSpec::Str32, RingSpec::Str64, RingSpec::Iro32];
        let sources = (0..n)
            .map(|i| {
                SourceSpec::new(
                    PRESETS[i % PRESETS.len()],
                    seed.wrapping_add(1 + i as u64),
                )
            })
            .collect();
        PoolConfig {
            sources,
            claimed_min_entropy: degradation::CLAIMED_H,
            conditioner: ConditionerKind::XorDecimate(2),
            sample_period_factor: 8.37,
            meta_window_ps: 10.0,
            batch_raw_bits: 256,
            warmup_periods: 64.0,
            relock_cv_threshold: 0.05,
            relock_window_periods: 64.0,
            max_relock_windows: 256,
            entropy_order: 2,
            entropy_window_bits: 4096,
            demote_fraction: 0.5,
        }
    }

    /// Requests the same waveform backend for every source in the pool
    /// (each source still falls back per the surrogate eligibility
    /// rules at build time). Lets a preset pool opt into
    /// [`SourceBackend::Surrogate`] wholesale for load runs.
    #[must_use]
    pub fn with_backend(mut self, backend: SourceBackend) -> Self {
        for spec in &mut self.sources {
            spec.backend = backend;
        }
        self
    }

    /// Checks every parameter; the serving layer calls this before
    /// spawning any worker so a bad config fails fast and typed.
    ///
    /// # Errors
    ///
    /// Returns [`TrngError::InvalidParameter`] (wrapped in
    /// [`ExperimentError::Trng`]) naming the offending field.
    pub fn validate(&self) -> Result<(), ExperimentError> {
        fn bad(name: &'static str, constraint: &'static str) -> ExperimentError {
            ExperimentError::Trng(TrngError::InvalidParameter { name, constraint })
        }
        if self.sources.is_empty() {
            return Err(bad("sources", "at least one source"));
        }
        if self.sources.iter().any(|s| s.panic_after_batches == Some(0)) {
            return Err(bad(
                "panic_after_batches",
                "chaos trigger needs at least one delivered batch",
            ));
        }
        let h = self.claimed_min_entropy;
        if !(h.is_finite() && h > 0.0 && h <= 1.0) {
            return Err(bad("claimed_min_entropy", "in (0, 1]"));
        }
        if let ConditionerKind::XorDecimate(0) = self.conditioner {
            return Err(bad("conditioner", "decimation factor must be positive"));
        }
        if !(self.sample_period_factor.is_finite() && self.sample_period_factor >= 1.0) {
            return Err(bad("sample_period_factor", "finite and >= 1"));
        }
        if !(self.meta_window_ps.is_finite() && self.meta_window_ps >= 0.0) {
            return Err(bad("meta_window_ps", "finite and non-negative"));
        }
        if self.batch_raw_bits == 0 {
            return Err(bad("batch_raw_bits", "at least one bit per batch"));
        }
        if !(self.warmup_periods.is_finite() && self.warmup_periods >= 0.0) {
            return Err(bad("warmup_periods", "finite and non-negative"));
        }
        if !(self.relock_cv_threshold.is_finite() && self.relock_cv_threshold > 0.0) {
            return Err(bad("relock_cv_threshold", "finite and positive"));
        }
        if !(self.relock_window_periods.is_finite() && self.relock_window_periods >= 4.0)
        {
            return Err(bad(
                "relock_window_periods",
                "finite and >= 4 (need interval statistics)",
            ));
        }
        if self.max_relock_windows == 0 {
            return Err(bad("max_relock_windows", "at least one re-lock attempt"));
        }
        if !(1..=strent_analysis::markov::MAX_ORDER).contains(&self.entropy_order) {
            return Err(bad(
                "entropy_order",
                "between 1 and the supported Markov order",
            ));
        }
        // `required` transitions for a verdict, plus the `order` bits
        // that prime the context (and so record no transition): a
        // window any smaller could never produce an estimate.
        let required = (4u64 << self.entropy_order).max(64) as usize + self.entropy_order;
        if self.entropy_window_bits < required {
            return Err(bad(
                "entropy_window_bits",
                "window must hold the required transitions plus the priming bits",
            ));
        }
        if !(self.demote_fraction.is_finite()
            && self.demote_fraction > 0.0
            && self.demote_fraction <= 1.0)
        {
            return Err(bad("demote_fraction", "in (0, 1]"));
        }
        Ok(())
    }

    /// The online-estimate level below which a source is demoted:
    /// `demote_fraction * claimed_min_entropy`, as an
    /// [`EntropyEstimate`] so the serving layer compares in the same
    /// fixed-point domain it publishes.
    #[must_use]
    pub fn demotion_threshold(&self) -> EntropyEstimate {
        EntropyEstimate::from_bits_per_bit(self.demote_fraction * self.claimed_min_entropy)
    }

    /// Conditioned bits a full healthy batch yields (before byte
    /// packing): `batch_raw_bits / raw_bits_per_output`, except von
    /// Neumann where the rate is variable and this is the worst-case
    /// floor of 0 — callers treat it as an estimate only.
    #[must_use]
    pub fn batch_conditioned_bits_estimate(&self) -> usize {
        match self.conditioner {
            ConditionerKind::Raw => self.batch_raw_bits,
            // ~1/4 for fair input; an estimate, not a guarantee.
            ConditionerKind::VonNeumann => self.batch_raw_bits / 4,
            ConditionerKind::XorDecimate(f) => self.batch_raw_bits / f as usize,
        }
    }
}

/// A per-bit min-entropy estimate in fixed-point **millibits**
/// (thousandths of a bit per bit, 0..=1000) — the unit the serving
/// layer publishes online estimates in. Fixed point keeps the type
/// `Copy + Eq + Ord` so estimates can live in stats structs, be
/// compared against thresholds, and cross thread boundaries without
/// float-equality traps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntropyEstimate(u16);

impl EntropyEstimate {
    /// Converts a bits-per-bit rate (clamped to `[0, 1]`; NaN maps to
    /// 0) into millibits.
    #[must_use]
    pub fn from_bits_per_bit(h: f64) -> Self {
        let h = if h.is_finite() { h.clamp(0.0, 1.0) } else { 0.0 };
        // Round-to-nearest keeps 1.0 -> 1000 exact.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        EntropyEstimate((h * 1000.0).round() as u16)
    }

    /// The raw millibit value (0..=1000).
    #[must_use]
    pub fn millibits(&self) -> u16 {
        self.0
    }

    /// Back to bits per bit.
    #[must_use]
    pub fn bits_per_bit(&self) -> f64 {
        f64::from(self.0) / 1000.0
    }
}

impl std::fmt::Display for EntropyEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}", self.bits_per_bit())
    }
}

/// Lifecycle state of a pooled source — shared vocabulary between the
/// serving crate and the bench reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceState {
    /// Producing health-passed batches.
    Healthy,
    /// A health alarm fired; output is discarded while the ring drains.
    Quarantined,
    /// Quarantine over; waiting for the re-lock CV to pass.
    Relocking,
}

impl SourceState {
    /// A short stable label (used in reports and JSON).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            SourceState::Healthy => "healthy",
            SourceState::Quarantined => "quarantined",
            SourceState::Relocking => "relocking",
        }
    }
}

/// Per-source lifetime counters, as reported by the serving layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceStats {
    /// Health-passed batches delivered to the pool.
    pub batches_delivered: u64,
    /// Batches discarded because a health test alarmed inside them.
    pub batches_discarded: u64,
    /// Lifetime health alarms (monotone over quarantine cycles, the
    /// denominator of bytes-per-alarm).
    pub alarms: u64,
    /// Completed quarantine → re-lock → readmission cycles.
    pub requarantines: u64,
    /// Unrecoverable rings swapped out for a fresh replacement.
    pub replacements: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build_valid_stream_configs() {
        for spec in [RingSpec::Str32, RingSpec::Str64, RingSpec::Iro32] {
            let config = spec.stream_config();
            let board = SourceSpec::new(spec, 1).board(0);
            assert!(
                config.predicted_period_ps(&board) > 0.0,
                "{} has a positive predicted period",
                spec.label()
            );
        }
        assert_eq!(RingSpec::Str64.label(), "str64");
    }

    #[test]
    fn mixed_default_validates_and_cycles_presets() {
        let pool = PoolConfig::mixed_default(7, 42);
        pool.validate().expect("default config is valid");
        assert_eq!(pool.sources.len(), 7);
        assert_eq!(pool.sources[0].ring, RingSpec::Str32);
        assert_eq!(pool.sources[1].ring, RingSpec::Str64);
        assert_eq!(pool.sources[2].ring, RingSpec::Iro32);
        assert_eq!(pool.sources[3].ring, RingSpec::Str32);
        // Claim matches the degradation experiment's.
        assert!((pool.claimed_min_entropy - degradation::CLAIMED_H).abs() < f64::EPSILON);
        // Seeds are pairwise distinct (streams must be independent).
        for (i, a) in pool.sources.iter().enumerate() {
            for b in &pool.sources[i + 1..] {
                assert_ne!(a.seed, b.seed);
                assert_ne!(a.board_seed, b.board_seed);
            }
        }
    }

    #[test]
    fn validation_rejects_each_bad_field() {
        let good = PoolConfig::mixed_default(3, 1);
        let cases: Vec<(&str, PoolConfig)> = vec![
            ("sources", PoolConfig {
                sources: vec![],
                ..good.clone()
            }),
            ("claimed_min_entropy", PoolConfig {
                claimed_min_entropy: 1.5,
                ..good.clone()
            }),
            ("conditioner", PoolConfig {
                conditioner: ConditionerKind::XorDecimate(0),
                ..good.clone()
            }),
            ("sample_period_factor", PoolConfig {
                sample_period_factor: 0.5,
                ..good.clone()
            }),
            ("meta_window_ps", PoolConfig {
                meta_window_ps: -1.0,
                ..good.clone()
            }),
            ("batch_raw_bits", PoolConfig {
                batch_raw_bits: 0,
                ..good.clone()
            }),
            ("warmup_periods", PoolConfig {
                warmup_periods: f64::NAN,
                ..good.clone()
            }),
            ("relock_cv_threshold", PoolConfig {
                relock_cv_threshold: 0.0,
                ..good.clone()
            }),
            ("relock_window_periods", PoolConfig {
                relock_window_periods: 1.0,
                ..good.clone()
            }),
            ("max_relock_windows", PoolConfig {
                max_relock_windows: 0,
                ..good.clone()
            }),
            ("panic_after_batches", PoolConfig {
                sources: vec![SourceSpec::new(RingSpec::Str32, 1).with_panic_after(0)],
                ..good.clone()
            }),
        ];
        for (field, config) in cases {
            let err = config.validate().expect_err(field);
            assert!(err.to_string().contains(field), "{field}: {err}");
        }
        good.validate().expect("baseline stays valid");
    }

    #[test]
    fn validation_rejects_bad_estimator_fields() {
        let good = PoolConfig::mixed_default(3, 1);
        for (field, config) in [
            ("entropy_order", PoolConfig {
                entropy_order: 0,
                ..good.clone()
            }),
            ("entropy_order", PoolConfig {
                entropy_order: strent_analysis::markov::MAX_ORDER + 1,
                ..good.clone()
            }),
            ("entropy_window_bits", PoolConfig {
                entropy_window_bits: 8,
                ..good.clone()
            }),
            // One bit short of required transitions + priming bits at
            // the default order 2: 64 + 2 = 66.
            ("entropy_window_bits", PoolConfig {
                entropy_window_bits: 65,
                ..good.clone()
            }),
            ("demote_fraction", PoolConfig {
                demote_fraction: 0.0,
                ..good.clone()
            }),
            ("demote_fraction", PoolConfig {
                demote_fraction: 1.5,
                ..good.clone()
            }),
        ] {
            let err = config.validate().expect_err(field);
            assert!(err.to_string().contains(field), "{field}: {err}");
        }
        // The minimal viable window is accepted.
        PoolConfig {
            entropy_window_bits: 66,
            ..good
        }
        .validate()
        .expect("minimal window validates");
    }

    #[test]
    fn entropy_estimate_fixed_point_round_trips() {
        assert_eq!(EntropyEstimate::from_bits_per_bit(1.0).millibits(), 1000);
        assert_eq!(EntropyEstimate::from_bits_per_bit(0.0).millibits(), 0);
        assert_eq!(EntropyEstimate::from_bits_per_bit(f64::NAN).millibits(), 0);
        assert_eq!(EntropyEstimate::from_bits_per_bit(7.0).millibits(), 1000);
        let h = EntropyEstimate::from_bits_per_bit(0.8575);
        assert_eq!(h.millibits(), 858);
        assert!((h.bits_per_bit() - 0.858).abs() < 1e-12);
        assert_eq!(h.to_string(), "0.858");
        // Ordered like the underlying rate.
        assert!(EntropyEstimate::from_bits_per_bit(0.4) < EntropyEstimate::from_bits_per_bit(0.5));
    }

    #[test]
    fn derived_claim_falls_back_below_the_floor() {
        let pool = PoolConfig::mixed_default(3, 42);
        let board = pool.sources[0].board(0);
        // At the default sampling factor the accumulated jitter is a few
        // ps against a multi-ns period: the honest bound is tiny...
        let bound = RingSpec::Str32
            .analytic_entropy_bound(&board, pool.sample_period_factor)
            .expect("bound computes");
        assert!(bound > 0.0 && bound < DERIVED_CLAIM_FLOOR, "bound {bound}");
        // ...so the gating claim falls back to the characterized one and
        // the default pool behaves exactly as before this tier existed.
        let claimed = RingSpec::Str32.claimed_entropy(&board, pool.sample_period_factor);
        assert!((claimed - degradation::CLAIMED_H).abs() < f64::EPSILON);
        // Out-of-domain factors also fall back instead of erroring.
        assert!(RingSpec::Iro32.analytic_entropy_bound(&board, 0.5).is_none());
        assert!(
            (RingSpec::Iro32.claimed_entropy(&board, f64::NAN) - degradation::CLAIMED_H).abs()
                < f64::EPSILON
        );
    }

    #[test]
    fn derived_claim_engages_at_slow_sampling() {
        // Crank the sampling interval until accumulated jitter is a
        // meaningful fraction of the period: q grows as sqrt(factor), so
        // a factor of ~400k takes STR-32's q from ~3.5e-3 to ~2.2 and
        // the bound saturates near 1 — now the derived claim is adopted.
        let board = SourceSpec::new(RingSpec::Str32, 1).board(0);
        let factor = 400_000.0;
        let bound = RingSpec::Str32
            .analytic_entropy_bound(&board, factor)
            .expect("bound computes");
        assert!(bound > 0.9, "bound {bound}");
        let claimed = RingSpec::Str32.claimed_entropy(&board, factor);
        assert!((claimed - bound).abs() < f64::EPSILON);
        // Bound grows monotonically with the sampling factor.
        let slower = RingSpec::Str32
            .analytic_entropy_bound(&board, 4.0 * factor)
            .expect("bound computes");
        assert!(slower >= bound);
    }

    #[test]
    fn str_bound_beats_iro_at_equal_factor() {
        // Same board, same sampling factor: the STR's L-independent
        // jitter against its short period yields a higher q — the
        // paper's entropy-rate advantage, visible straight from the
        // presets.
        let board = SourceSpec::new(RingSpec::Str32, 1).board(0);
        for factor in [100.0, 10_000.0, 100_000.0] {
            let str_bound = RingSpec::Str32
                .analytic_entropy_bound(&board, factor)
                .expect("bound computes");
            let iro_bound = RingSpec::Iro32
                .analytic_entropy_bound(&board, factor)
                .expect("bound computes");
            assert!(
                str_bound >= iro_bound,
                "factor {factor}: STR {str_bound} vs IRO {iro_bound}"
            );
        }
    }

    #[test]
    fn demotion_threshold_scales_with_claim() {
        let mut pool = PoolConfig::mixed_default(1, 1);
        pool.claimed_min_entropy = 0.8;
        pool.demote_fraction = 0.5;
        assert_eq!(pool.demotion_threshold().millibits(), 400);
    }

    #[test]
    fn conditioned_bit_estimates() {
        let mut pool = PoolConfig::mixed_default(1, 1);
        pool.batch_raw_bits = 240;
        pool.conditioner = ConditionerKind::Raw;
        assert_eq!(pool.batch_conditioned_bits_estimate(), 240);
        pool.conditioner = ConditionerKind::XorDecimate(3);
        assert_eq!(pool.batch_conditioned_bits_estimate(), 80);
        pool.conditioner = ConditionerKind::VonNeumann;
        assert_eq!(pool.batch_conditioned_bits_estimate(), 60);
    }

    #[test]
    fn source_state_labels() {
        assert_eq!(SourceState::Healthy.label(), "healthy");
        assert_eq!(SourceState::Quarantined.label(), "quarantined");
        assert_eq!(SourceState::Relocking.label(), "relocking");
        assert_eq!(SourceStats::default().alarms, 0);
    }

    #[test]
    fn fault_armed_spec_round_trips() {
        let plan = strent_sim::FaultPlan::new(3);
        let spec = SourceSpec::new(RingSpec::Str32, 9)
            .with_board_seed(77)
            .with_fault(plan.clone());
        assert_eq!(spec.board_seed, 77);
        assert_eq!(spec.fault, Some(plan));
        assert_eq!(spec.board(4).id(), 4);
    }

    #[test]
    fn panic_trigger_defaults_off_and_round_trips() {
        let spec = SourceSpec::new(RingSpec::Iro32, 5);
        assert_eq!(spec.panic_after_batches, None);
        let spec = spec.with_panic_after(3);
        assert_eq!(spec.panic_after_batches, Some(3));
        // Arming the trigger never perturbs the stream-defining fields.
        let base = SourceSpec::new(RingSpec::Iro32, 5);
        assert_eq!(spec.ring, base.ring);
        assert_eq!(spec.seed, base.seed);
        assert_eq!(spec.board_seed, base.board_seed);
    }

    #[test]
    fn backend_defaults_to_full_sim_and_round_trips() {
        let spec = SourceSpec::new(RingSpec::Str32, 9);
        assert_eq!(spec.backend, SourceBackend::FullSim);
        let spec = spec.with_backend(SourceBackend::Surrogate);
        assert_eq!(spec.backend, SourceBackend::Surrogate);
        // The default pool stays on the full simulator, so existing
        // reproduction output is untouched by the surrogate tier.
        let pool = PoolConfig::mixed_default(3, 1);
        assert!(pool
            .sources
            .iter()
            .all(|s| s.backend == SourceBackend::FullSim));
    }

    #[test]
    fn pool_with_backend_switches_every_source() {
        let pool = PoolConfig::mixed_default(5, 7).with_backend(SourceBackend::Surrogate);
        assert!(pool
            .sources
            .iter()
            .all(|s| s.backend == SourceBackend::Surrogate));
        pool.validate().expect("backend choice stays valid");
        // Ring/seed layout is untouched — only the backend flips.
        let full = PoolConfig::mixed_default(5, 7);
        for (a, b) in pool.sources.iter().zip(&full.sources) {
            assert_eq!(a.ring, b.ring);
            assert_eq!(a.seed, b.seed);
        }
    }
}
