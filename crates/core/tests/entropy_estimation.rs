//! Property-based battery for the entropy-estimation subsystem: the
//! analytic bit-pattern bound, the order-`k` Markov estimator, and the
//! calibrated surrogate tier reproducing the bound's inputs.
//!
//! Three claims, stressed across random geometry and corruption:
//!
//! 1. the Markov estimate never undercuts the analytic bound by more
//!    than the documented agreement band when both see the same
//!    phase-diffusion physics;
//! 2. the estimator is a pure function of the bit stream — chunked and
//!    whole feeding agree exactly, and short streams are a typed
//!    refusal, not a zero;
//! 3. corrupted streams (biased, periodic, stuck) score far below any
//!    claimed rate, which is what makes online demotion meaningful.

use proptest::prelude::*;

use strent_analysis::entropy::{min_entropy_bound, sampling_ratio};
use strent_analysis::jitter::period_jitter;
use strent_analysis::markov::MarkovCounts;
use strent_analysis::AnalysisError;
use strent_rings::measure;
use strent_rings::stream::StreamConfig;
use strent_rings::surrogate::Calibrator;
use strent_trng::bits::BitString;
use strent_trng::entropy::markov_min_entropy;
use strent_trng::error::TrngError;
use strent_trng::phase::PhaseModel;
use strentropy::calibration;
use strentropy::experiments::ext_entropy::{AGREEMENT_BAND, MARKOV_ORDER};
use strentropy::pool::{RingSpec, SourceSpec};

/// Bits per Markov judgement — enough that the estimator's
/// small-sample confidence haircut stays inside [`AGREEMENT_BAND`].
const JUDGE_BITS: usize = 65_536;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Across the whole quality-ratio range the Markov estimate of the
    /// phase-diffusion stream confirms the analytic bound: it may sit
    /// above (the bound is conservative) but never undercuts it by
    /// more than the band.
    #[test]
    fn markov_estimate_never_undercuts_the_bound(
        q in 0.02_f64..0.9,
        period_ps in 500.0_f64..5_000.0,
        seed in 0_u64..1_000,
    ) {
        let sigma_acc_ps = q * period_ps;
        let mut model = PhaseModel::new(period_ps, sigma_acc_ps, seed)
            .expect("valid phase model");
        let bits = model.generate(JUDGE_BITS);
        let markov = markov_min_entropy(&bits, MARKOV_ORDER).expect("judged");
        let ratio = sampling_ratio(sigma_acc_ps, period_ps).expect("valid ratio");
        let bound = min_entropy_bound(ratio).expect("valid bound");
        prop_assert!(
            markov - bound >= -AGREEMENT_BAND,
            "q={q:.3}: markov {markov:.4} undercuts bound {bound:.4}"
        );
    }

    /// The Markov counter is a pure fold over the stream: feeding one
    /// whole slice and feeding arbitrary chunkings of it yield exactly
    /// the same verdict.
    #[test]
    fn chunked_and_whole_feeding_agree_exactly(
        bits in prop::collection::vec(0_u8..2, 600..2_000),
        chunk in 1_usize..97,
        order in 1_usize..4,
    ) {
        let mut whole = MarkovCounts::new(order).expect("valid order");
        whole.feed(&bits);
        let mut chunked = MarkovCounts::new(order).expect("valid order");
        for piece in bits.chunks(chunk) {
            chunked.feed(piece);
        }
        let (a, b) = (whole.min_entropy(), chunked.min_entropy());
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x.to_bits(), y.to_bits()),
            (Err(AnalysisError::InsufficientData { .. }),
             Err(AnalysisError::InsufficientData { .. })) => {}
            other => prop_assert!(false, "verdicts diverged: {:?}", other),
        }
    }

    /// A stream too short for the requested order is a typed
    /// [`InsufficientData`] refusal — never a zero-entropy verdict.
    #[test]
    fn short_streams_refuse_with_a_typed_error(
        len in 0_usize..48,
        order in 2_usize..8,
    ) {
        let mut bits = BitString::new();
        for i in 0..len {
            bits.push((i % 2) as u8);
        }
        let err = markov_min_entropy(&bits, order).expect_err("underfed");
        prop_assert!(
            matches!(
                err,
                TrngError::Analysis(AnalysisError::InsufficientData { .. })
            ),
            "expected the typed refusal, got: {err}"
        );
    }

    /// Heavily biased streams score no better than their ideal
    /// single-bit min-entropy (plus the estimation band), far below a
    /// balanced source's claim.
    #[test]
    fn biased_streams_score_at_most_their_bias_entropy(
        p_one in 0.05_f64..0.25,
        seed in 0_u64..1_000,
    ) {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut bits = BitString::with_capacity(JUDGE_BITS);
        for _ in 0..JUDGE_BITS {
            // xorshift64* keeps the battery free of ambient RNG.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let u = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64
                / (1_u64 << 53) as f64;
            bits.push(u8::from(u < p_one));
        }
        let markov = markov_min_entropy(&bits, MARKOV_ORDER).expect("judged");
        let ideal = -(1.0 - p_one).log2();
        prop_assert!(
            markov <= ideal + AGREEMENT_BAND,
            "p={p_one:.3}: markov {markov:.4} above ideal {ideal:.4}"
        );
        prop_assert!(markov < 0.5, "biased stream must sit below a healthy claim");
    }

    /// Periodic and stuck streams — the classic failure modes an
    /// online estimator exists to catch — collapse to (near) zero.
    #[test]
    fn periodic_and_stuck_streams_collapse(period in 1_usize..8) {
        let mut periodic = BitString::with_capacity(JUDGE_BITS);
        for i in 0..JUDGE_BITS {
            periodic.push(u8::from(i % (2 * period) < period));
        }
        // A context of `period` bits pins the phase of a square wave
        // of half-period `period`, so an order >= period chain sees
        // every transition as deterministic.
        let order = period.max(MARKOV_ORDER);
        let h = markov_min_entropy(&periodic, order).expect("judged");
        prop_assert!(h < 0.05, "period {period}: scored {h:.4}");
        let mut stuck = BitString::with_capacity(JUDGE_BITS);
        for _ in 0..JUDGE_BITS {
            stuck.push(0);
        }
        let h = markov_min_entropy(&stuck, MARKOV_ORDER).expect("judged");
        prop_assert!(h < 0.01, "stuck stream scored {h:.4}");
    }
}

/// The calibrated surrogate's golden moments (mean period, per-period
/// jitter — the quantities the calibration protocol fits) reproduce
/// the full-sim sampling bound for every serving preset: feeding
/// either side's moments through the analytic chain lands on the same
/// min-entropy claim.
#[test]
fn surrogate_golden_moments_reproduce_the_full_sim_bound() {
    let seed = calibration::PAPER_SEED;
    let periods = 3_000;
    // EXT-ENTROPY's middle sampling interval: the steep part of the
    // bound curve, where a drifted sigma shows up hardest.
    let decimation = 20_000.0_f64;
    for preset in [RingSpec::Str32, RingSpec::Str64, RingSpec::Iro32] {
        let spec = SourceSpec::new(preset, seed);
        let board = spec.board(0);
        let config = preset.stream_config();
        let run = match &config {
            StreamConfig::Iro(c) => measure::run_iro(c, &board, seed, periods),
            StreamConfig::Str(c) => measure::run_str(c, &board, seed, periods),
        }
        .expect("full sim runs");
        let mean = run.periods_ps.iter().sum::<f64>() / run.periods_ps.len() as f64;
        let sigma1 = period_jitter(&run.periods_ps).expect("jitter measures");
        let full_ratio =
            sampling_ratio(sigma1 * decimation.sqrt(), mean).expect("valid ratio");
        let full_bound = min_entropy_bound(full_ratio).expect("valid bound");

        let model = Calibrator::default()
            .fit(&config, &board, seed)
            .expect("calibrates");
        let surr_ratio = sampling_ratio(
            model.sigma_period_ps() * decimation.sqrt(),
            model.period_mean_ps,
        )
        .expect("valid ratio");
        let surr_bound = min_entropy_bound(surr_ratio).expect("valid bound");

        let label = preset.label();
        assert!(
            (model.period_mean_ps - mean).abs() / mean < 0.01,
            "{label}: period drifted ({} vs {mean})",
            model.period_mean_ps
        );
        assert!(
            surr_ratio / full_ratio > 0.7 && surr_ratio / full_ratio < 1.4,
            "{label}: quality ratio drifted ({surr_ratio} vs {full_ratio})"
        );
        assert!(
            (surr_bound - full_bound).abs() < 0.15,
            "{label}: bound drifted ({surr_bound} vs {full_bound})"
        );
        assert!(full_bound > 0.2, "{label}: test sits on a degenerate bound");
    }
}
