//! Property-based tests for the TRNG crate.

use proptest::prelude::*;

use strent_trng::battery;
use strent_trng::coherent::CoherentSampler;
use strent_trng::entropy;
use strent_trng::health::{
    self, AdaptiveProportionTest, RepetitionCountTest, APT_WINDOW,
};
use strent_trng::phase::PhaseModel;
use strent_trng::postprocess;
use strent_trng::BitString;

fn bit_vec(min_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..=1, min_len..2000)
}

proptest! {
    /// Packing is MSB-first and length-consistent for any bit pattern.
    #[test]
    fn bitstring_packing_roundtrip(bits in bit_vec(0)) {
        let bs: BitString = bits.iter().copied().collect();
        let packed = bs.pack();
        prop_assert_eq!(packed.len(), bits.len().div_ceil(8));
        for (i, &b) in bits.iter().enumerate() {
            let byte = packed[i / 8];
            let extracted = (byte >> (7 - (i % 8))) & 1;
            prop_assert_eq!(extracted, b, "bit {}", i);
        }
        prop_assert_eq!(bs.count_ones() + bs.count_zeros(), bits.len());
    }

    /// Von Neumann output length is at most half the input and its bits
    /// are exactly the first elements of the 01/10 pairs.
    #[test]
    fn von_neumann_definition(bits in bit_vec(2)) {
        let bs: BitString = bits.iter().copied().collect();
        let out = postprocess::von_neumann(&bs);
        prop_assert!(out.len() <= bs.len() / 2);
        let expected: Vec<u8> = bits
            .chunks_exact(2)
            .filter(|p| p[0] != p[1])
            .map(|p| p[0])
            .collect();
        prop_assert_eq!(out.as_slice(), expected.as_slice());
    }

    /// XOR decimation length bookkeeping and parity correctness.
    #[test]
    fn xor_decimation_definition(bits in bit_vec(4), factor in 1usize..8) {
        let bs: BitString = bits.iter().copied().collect();
        let out = postprocess::xor_decimate(&bs, factor);
        prop_assert_eq!(out.len(), bits.len() / factor);
        for (i, chunk) in bits.chunks_exact(factor).enumerate() {
            let parity = chunk.iter().fold(0u8, |acc, &b| acc ^ b);
            prop_assert_eq!(out.as_slice()[i], parity);
        }
    }

    /// The piling-up bound is monotone in the factor and bounded by the
    /// input bias.
    #[test]
    fn piling_up_bound_shape(bias in 0.0_f64..0.5, factor in 1u32..16) {
        let b1 = postprocess::xor_bias_bound(bias, factor);
        let b2 = postprocess::xor_bias_bound(bias, factor + 1);
        prop_assert!(b1 >= b2 - 1e-15, "monotone: {b1} vs {b2}");
        prop_assert!(b1 <= bias + 1e-15, "never exceeds input bias");
        prop_assert!(b1 >= 0.0);
    }

    /// The phase model is deterministic per seed and its bits are
    /// always 0/1.
    #[test]
    fn phase_model_determinism(
        period in 100.0_f64..10_000.0,
        sigma in 0.0_f64..5_000.0,
        seed in any::<u64>(),
    ) {
        let mut a = PhaseModel::new(period, sigma, seed).expect("valid");
        let mut b = PhaseModel::new(period, sigma, seed).expect("valid");
        let bits_a = a.generate(200);
        let bits_b = b.generate(200);
        prop_assert_eq!(&bits_a, &bits_b);
        prop_assert!(bits_a.iter().all(|bit| bit <= 1));
    }

    /// Binary entropy is concave-shaped: symmetric, 1 at 1/2, 0 at the
    /// edges, monotone on each side.
    #[test]
    fn binary_entropy_shape(p in 0.0_f64..=1.0, q in 0.0_f64..0.5) {
        let h = entropy::binary_entropy(p);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&h));
        prop_assert!((h - entropy::binary_entropy(1.0 - p)).abs() < 1e-12);
        // Monotone on [0, 1/2].
        let h_q = entropy::binary_entropy(q);
        let h_q2 = entropy::binary_entropy(q / 2.0);
        prop_assert!(h_q >= h_q2 - 1e-12);
    }

    /// Min-entropy never exceeds Shannon entropy (both per bit).
    #[test]
    fn min_entropy_below_shannon(bits in prop::collection::vec(0u8..=1, 200..1000)) {
        let bs: BitString = bits.iter().copied().collect();
        let h = entropy::shannon_bit_entropy(&bs).expect("enough bits");
        let hmin = entropy::min_entropy(&bs).expect("enough bits");
        prop_assert!(hmin <= h + 1e-12, "min {hmin} vs shannon {h}");
    }

    /// Battery p-values are probabilities for arbitrary input.
    #[test]
    fn battery_p_values_are_probabilities(seed in any::<u64>(), p_one in 0.05_f64..0.95) {
        let mut rng = strent_sim::RngTree::new(seed).stream(0);
        let bits: BitString = (0..4096).map(|_| u8::from(rng.bernoulli(p_one))).collect();
        let report = battery::run_all(&bits).expect("long enough");
        for outcome in &report.outcomes {
            prop_assert!(
                (0.0..=1.0).contains(&outcome.p_value),
                "{}: p = {}",
                outcome.name,
                outcome.p_value
            );
            prop_assert!(outcome.statistic.is_finite() || outcome.statistic.is_infinite());
        }
    }

    /// The coherent sampler's beat length follows its definition.
    #[test]
    fn coherent_beat_definition(t1 in 500.0_f64..2000.0, delta in 1.0_f64..50.0) {
        let t2 = t1 + delta;
        let gen = CoherentSampler::new(t1, t2, 0.0, 1).expect("valid");
        prop_assert!((gen.beat_samples() - t2 / delta).abs() < 1e-9);
    }

    /// A stream that goes stuck-at after a healthy prefix trips the RCT
    /// within `C_RCT` samples of the onset, for any seed, onset length
    /// and stuck polarity.
    #[test]
    fn stuck_stream_trips_rct_within_cutoff(
        seed in any::<u64>(),
        onset in 64usize..2048,
        stuck in 0u8..=1,
    ) {
        let mut rng = strent_sim::RngTree::new(seed).stream(0);
        let mut bits: BitString =
            (0..onset).map(|_| u8::from(rng.bernoulli(0.5))).collect();
        let cutoff = RepetitionCountTest::for_min_entropy(1.0)
            .expect("valid")
            .cutoff() as usize;
        bits.extend(std::iter::repeat_n(stuck, cutoff + 8));
        let lat = health::alarm_latency(&bits, 1.0, onset).expect("valid");
        let rct = lat.rct_latency.expect("stuck tail must alarm");
        // A run in flight at the onset can only shorten the latency.
        prop_assert!(rct < cutoff, "latency {} vs cutoff {}", rct, cutoff);
    }

    /// A glitch-biased stream (87.5% forced ones) trips the APT within
    /// one 1024-sample window of the onset when the fault lands on a
    /// window boundary.
    #[test]
    fn biased_glitch_stream_trips_apt_within_one_window(
        seed in any::<u64>(),
        windows_before in 0usize..4,
    ) {
        let onset = windows_before * APT_WINDOW as usize;
        let mut rng = strent_sim::RngTree::new(seed).stream(0);
        let mut bits: BitString =
            (0..onset).map(|_| u8::from(rng.bernoulli(0.5))).collect();
        // The glitch burst forces ones on 7 of 8 samples; the first
        // post-onset sample is forced so the window reference is 1.
        bits.push(1);
        for _ in 1..APT_WINDOW as usize {
            bits.push(u8::from(rng.bernoulli(0.875)));
        }
        let lat = health::alarm_latency(&bits, 1.0, onset).expect("valid");
        prop_assert_eq!(lat.apt_before_onset, 0);
        let apt = lat.apt_latency.expect("biased window must alarm");
        prop_assert!(
            apt < APT_WINDOW as usize,
            "latency {} vs window {}",
            apt,
            APT_WINDOW
        );
        // Sanity: the cutoff the alarm beat is the SP 800-90B one.
        let apt_cutoff = AdaptiveProportionTest::for_min_entropy(1.0)
            .expect("valid")
            .cutoff() as usize;
        prop_assert!(apt >= apt_cutoff / 2, "alarm cannot precede the count");
    }
}
