//! Autocorrelation test (FIPS-140-1 style / Maurer's `d`-shift test).
//!
//! Not part of SP 800-22, but a staple of hardware RNG evaluation and
//! directly sensitive to the periodic structure that a supply-modulation
//! attack injects — which is why the battery includes it.

use strent_analysis::special::erfc;

use super::{require_bits, TestOutcome};
use crate::bits::BitString;
use crate::error::TrngError;

/// Tests the correlation between the sequence and its `lag`-shifted
/// self: `A = #{i : b_i != b_{i+lag}}` should be Binomial(n-lag, 1/2).
///
/// # Errors
///
/// Returns [`TrngError::InvalidParameter`] for `lag == 0` or
/// [`TrngError::NotEnoughBits`] if fewer than `lag + 1000` bits are
/// given.
pub fn test(bits: &BitString, lag: usize) -> Result<TestOutcome, TrngError> {
    if lag == 0 {
        return Err(TrngError::InvalidParameter {
            name: "lag",
            constraint: "must be at least 1",
        });
    }
    require_bits(bits, lag + 1000)?;
    let b = bits.as_slice();
    let n = b.len() - lag;
    let disagreements = (0..n).filter(|&i| b[i] != b[i + lag]).count() as f64;
    let z = 2.0 * (disagreements - n as f64 / 2.0) / (n as f64).sqrt();
    Ok(TestOutcome {
        name: "autocorrelation",
        statistic: z,
        p_value: erfc(z.abs() / std::f64::consts::SQRT_2),
    })
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{periodic_bits, random_bits};
    use super::*;

    #[test]
    fn verdicts() {
        assert!(test(&random_bits(20_000, 11), 8)
            .expect("enough")
            .passes(0.01));
        // Period-16 structure is perfectly correlated at lag 16 and
        // perfectly anti-correlated at lag 8.
        let structured = periodic_bits(20_000, 16);
        assert!(!test(&structured, 8).expect("enough").passes(0.01));
        assert!(!test(&structured, 16).expect("enough").passes(0.01));
        assert!(test(&random_bits(20_000, 11), 0).is_err());
        assert!(test(&random_bits(100, 11), 8).is_err());
    }

    #[test]
    fn statistic_sign_reflects_correlation_direction() {
        let structured = periodic_bits(20_000, 16);
        // Lag 8: all disagreements -> z large positive.
        assert!(test(&structured, 8).expect("enough").statistic > 10.0);
        // Lag 16: no disagreements -> z large negative.
        assert!(test(&structured, 16).expect("enough").statistic < -10.0);
    }
}
