//! Block frequency test — SP 800-22 §2.2.

use strent_analysis::special::gamma_q;

use super::{require_bits, TestOutcome};
use crate::bits::BitString;
use crate::error::TrngError;

/// Tests the proportion of ones within `block_len`-bit blocks.
///
/// # Errors
///
/// Returns [`TrngError::InvalidParameter`] if `block_len == 0` or
/// [`TrngError::NotEnoughBits`] for fewer than 10 complete blocks.
pub fn test(bits: &BitString, block_len: usize) -> Result<TestOutcome, TrngError> {
    if block_len == 0 {
        return Err(TrngError::InvalidParameter {
            name: "block_len",
            constraint: "must be positive",
        });
    }
    require_bits(bits, 10 * block_len)?;
    let blocks = bits.len() / block_len;
    let chi2: f64 = bits
        .as_slice()
        .chunks_exact(block_len)
        .map(|block| {
            let pi = block.iter().map(|&b| f64::from(b)).sum::<f64>() / block_len as f64;
            (pi - 0.5) * (pi - 0.5)
        })
        .sum::<f64>()
        * 4.0
        * block_len as f64;
    Ok(TestOutcome {
        name: "block-frequency",
        statistic: chi2,
        p_value: gamma_q(blocks as f64 / 2.0, chi2 / 2.0),
    })
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{periodic_bits, random_bits};
    use super::*;

    #[test]
    fn nist_reference_vector() {
        // SP 800-22 §2.2.8: eps = 0110011010, M = 3 -> P-value = 0.801252.
        let bits: BitString = [0u8, 1, 1, 0, 0, 1, 1, 0, 1, 0].iter().copied().collect();
        // The example uses only 3 blocks, below our 10-block guard, so
        // compute with the guard relaxed by inlining the math here:
        let chi2: f64 = bits
            .as_slice()
            .chunks_exact(3)
            .map(|b| {
                let pi = b.iter().map(|&x| f64::from(x)).sum::<f64>() / 3.0;
                (pi - 0.5) * (pi - 0.5)
            })
            .sum::<f64>()
            * 12.0;
        let p = gamma_q(3.0 / 2.0, chi2 / 2.0);
        assert!((p - 0.801252).abs() < 1e-5, "p = {p}");
    }

    #[test]
    fn verdicts() {
        assert!(test(&random_bits(40_000, 2), 128)
            .expect("enough")
            .passes(0.01));
        // Blocks of solid zeros and ones: wildly non-uniform per block.
        let structured = periodic_bits(40_000, 256);
        assert!(!test(&structured, 128).expect("enough").passes(0.01));
        assert!(test(&random_bits(100, 2), 128).is_err());
        assert!(test(&random_bits(100, 2), 0).is_err());
    }
}
