//! Binary matrix rank test — SP 800-22 §2.5 (32x32 variant).
//!
//! Detects linear dependence among fixed-length substrings — structure
//! that frequency- and run-based tests miss entirely (an LFSR passes
//! every other test in this battery but fails here).

use strent_analysis::special::gamma_q;

use super::{require_bits, TestOutcome};
use crate::bits::BitString;
use crate::error::TrngError;

/// Matrix dimension (rows = columns = 32).
const M: usize = 32;

/// Asymptotic probabilities of rank 32, 31 and <= 30 for a random
/// 32x32 binary matrix (SP 800-22 §3.5).
const P_FULL: f64 = 0.288_8;
const P_MINUS1: f64 = 0.577_6;
const P_REST: f64 = 0.133_6;

/// Computes the GF(2) rank of a 32x32 matrix given as 32 row words.
fn rank32(mut rows: [u32; M]) -> usize {
    let mut rank = 0;
    for col in 0..M {
        let mask = 1u32 << (M - 1 - col);
        // Find a pivot row at or below `rank`.
        let Some(pivot) = (rank..M).find(|&r| rows[r] & mask != 0) else {
            continue;
        };
        rows.swap(rank, pivot);
        let pivot_row = rows[rank];
        for (r, row) in rows.iter_mut().enumerate() {
            if r != rank && *row & mask != 0 {
                *row ^= pivot_row;
            }
        }
        rank += 1;
    }
    rank
}

/// Tests the rank distribution of disjoint 32x32 matrices built from
/// consecutive bits.
///
/// # Errors
///
/// Returns [`TrngError::NotEnoughBits`] for fewer than 38 complete
/// matrices (38 * 1024 = 38912 bits), the SP 800-22 validity minimum.
pub fn test(bits: &BitString) -> Result<TestOutcome, TrngError> {
    require_bits(bits, 38 * M * M)?;
    let b = bits.as_slice();
    let matrices = b.len() / (M * M);
    let mut counts = [0u64; 3]; // full, full-1, rest
    for m in 0..matrices {
        let base = m * M * M;
        let mut rows = [0u32; M];
        for (r, row) in rows.iter_mut().enumerate() {
            let mut word = 0u32;
            for c in 0..M {
                word = (word << 1) | u32::from(b[base + r * M + c]);
            }
            *row = word;
        }
        match rank32(rows) {
            r if r == M => counts[0] += 1,
            r if r == M - 1 => counts[1] += 1,
            _ => counts[2] += 1,
        }
    }
    let n = matrices as f64;
    let expected = [n * P_FULL, n * P_MINUS1, n * P_REST];
    let chi2: f64 = counts
        .iter()
        .zip(&expected)
        .map(|(&c, &e)| (c as f64 - e) * (c as f64 - e) / e)
        .sum();
    Ok(TestOutcome {
        name: "matrix-rank",
        statistic: chi2,
        p_value: gamma_q(1.0, chi2 / 2.0),
    })
}

#[cfg(test)]
mod tests {
    use super::super::testutil::random_bits;
    use super::*;

    #[test]
    fn rank_of_identity_and_degenerate_matrices() {
        let mut identity = [0u32; M];
        for (i, row) in identity.iter_mut().enumerate() {
            *row = 1 << (M - 1 - i);
        }
        assert_eq!(rank32(identity), 32);
        assert_eq!(rank32([0u32; M]), 0);
        // All rows equal: rank 1.
        assert_eq!(rank32([0xDEAD_BEEF; M]), 1);
        // Two distinct row values: rank 2.
        let mut two = [0xFFFF_0000u32; M];
        two[7] = 0x0000_FFFF;
        assert_eq!(rank32(two), 2);
    }

    #[test]
    fn random_bits_pass() {
        let outcome = test(&random_bits(60_000, 13)).expect("enough");
        assert!(outcome.passes(0.01), "p = {}", outcome.p_value);
    }

    #[test]
    fn linear_structure_fails() {
        // A short LFSR stream: every 32x32 matrix is far from full rank.
        // x^8 + x^6 + x^5 + x^4 + 1 (period 255).
        let mut state = 0xACu8;
        let bits: BitString = (0..60_000)
            .map(|_| {
                let bit = state & 1;
                let fb = (state ^ (state >> 2) ^ (state >> 3) ^ (state >> 4)) & 1;
                state = (state >> 1) | (fb << 7);
                bit
            })
            .collect();
        let outcome = test(&bits).expect("enough");
        assert!(!outcome.passes(0.01), "LFSR must fail: p = {}", outcome.p_value);
        // For contrast: the same stream passes monobit (balanced).
        let monobit = super::super::monobit::test(&bits).expect("enough");
        assert!(monobit.passes(0.01), "LFSR is balanced");
    }

    #[test]
    fn too_short_is_an_error() {
        assert!(test(&random_bits(10_000, 1)).is_err());
    }
}
