//! Frequency (monobit) test — SP 800-22 §2.1.

use strent_analysis::special::erfc;

use super::{require_bits, TestOutcome};
use crate::bits::BitString;
use crate::error::TrngError;

/// Tests whether the numbers of ones and zeros are as close as expected
/// for a random sequence.
///
/// # Errors
///
/// Returns [`TrngError::NotEnoughBits`] for fewer than 100 bits.
pub fn test(bits: &BitString) -> Result<TestOutcome, TrngError> {
    require_bits(bits, 100)?;
    let n = bits.len() as f64;
    let sum: f64 = bits.iter().map(|b| 2.0 * f64::from(b) - 1.0).sum();
    let s_obs = sum.abs() / n.sqrt();
    Ok(TestOutcome {
        name: "monobit",
        statistic: s_obs,
        p_value: erfc(s_obs / std::f64::consts::SQRT_2),
    })
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{biased_bits, random_bits};
    use super::*;

    #[test]
    fn nist_reference_vector() {
        // SP 800-22 example: "1100100100001111110110101010001000100001011010001100
        // 001000110100110001001100011001100010100010111000" (first 100
        // binary digits of pi) -> P-value = 0.109599.
        let pi_bits = "1100100100001111110110101010001000100001011010001100\
                       001000110100110001001100011001100010100010111000";
        let bits: BitString = pi_bits
            .chars()
            .filter(|c| !c.is_whitespace())
            .map(|c| if c == '1' { 1u8 } else { 0u8 })
            .collect();
        assert_eq!(bits.len(), 100);
        let outcome = test(&bits).expect("enough bits");
        assert!(
            (outcome.p_value - 0.109599).abs() < 1e-5,
            "p = {}",
            outcome.p_value
        );
    }

    #[test]
    fn verdicts() {
        assert!(test(&random_bits(20_000, 1)).expect("enough").passes(0.01));
        assert!(!test(&biased_bits(20_000, 1, 0.55)).expect("enough").passes(0.01));
        assert!(test(&random_bits(50, 1)).is_err());
    }
}
