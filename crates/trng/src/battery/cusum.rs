//! Cumulative-sums test — SP 800-22 §2.13 (forward mode).

use strent_analysis::special::normal_cdf;

use super::{require_bits, TestOutcome};
use crate::bits::BitString;
use crate::error::TrngError;

/// Tests the maximal excursion of the ±1 random walk formed by the bits.
///
/// # Errors
///
/// Returns [`TrngError::NotEnoughBits`] for fewer than 100 bits.
pub fn test(bits: &BitString) -> Result<TestOutcome, TrngError> {
    require_bits(bits, 100)?;
    let n = bits.len() as f64;
    let mut sum = 0i64;
    let mut z = 0i64;
    for b in bits.iter() {
        sum += if b == 1 { 1 } else { -1 };
        z = z.max(sum.abs());
    }
    let z = z as f64;
    let sqrt_n = n.sqrt();

    // SP 800-22 Eq. (13): two telescoping sums of normal CDFs.
    let k_lo_1 = ((-n / z + 1.0) / 4.0).floor() as i64;
    let k_hi_1 = ((n / z - 1.0) / 4.0).floor() as i64;
    let mut p = 1.0;
    for k in k_lo_1..=k_hi_1 {
        let k = k as f64;
        p -= normal_cdf((4.0 * k + 1.0) * z / sqrt_n) - normal_cdf((4.0 * k - 1.0) * z / sqrt_n);
    }
    let k_lo_2 = ((-n / z - 3.0) / 4.0).floor() as i64;
    let k_hi_2 = ((n / z - 1.0) / 4.0).floor() as i64;
    for k in k_lo_2..=k_hi_2 {
        let k = k as f64;
        p += normal_cdf((4.0 * k + 3.0) * z / sqrt_n) - normal_cdf((4.0 * k + 1.0) * z / sqrt_n);
    }
    Ok(TestOutcome {
        name: "cusum",
        statistic: z,
        p_value: p.clamp(0.0, 1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{biased_bits, random_bits};
    use super::*;

    #[test]
    fn nist_reference_vector() {
        // SP 800-22 §2.13.8: the 100-bit pi sequence, forward mode:
        // P-value = 0.219194 (z = 16).
        let pi_bits = "1100100100001111110110101010001000100001011010001100\
                       001000110100110001001100011001100010100010111000";
        let bits: BitString = pi_bits
            .chars()
            .filter(|c| !c.is_whitespace())
            .map(|c| if c == '1' { 1u8 } else { 0u8 })
            .collect();
        let outcome = test(&bits).expect("enough bits");
        assert_eq!(outcome.statistic, 16.0);
        assert!(
            (outcome.p_value - 0.219194).abs() < 1e-4,
            "p = {}",
            outcome.p_value
        );
    }

    #[test]
    fn verdicts() {
        assert!(test(&random_bits(20_000, 4)).expect("enough").passes(0.01));
        // A drifting walk (biased bits) reaches huge excursions.
        assert!(!test(&biased_bits(20_000, 4, 0.55))
            .expect("enough")
            .passes(0.01));
        assert!(test(&random_bits(50, 1)).is_err());
    }
}
