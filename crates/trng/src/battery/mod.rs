//! A statistical test battery in the spirit of NIST SP 800-22.
//!
//! TRNG output must "fulfill strict statistical requirements" (the
//! paper's opening sentence); this module provides the verdicts. Nine
//! tests are implemented from the SP 800-22 definitions (the matrix-rank
//! test joins automatically once the stream meets its length minimum),
//! each returning a p-value under the null hypothesis of ideal
//! randomness.

pub mod approx_entropy;
pub mod autocorr;
pub mod block_frequency;
pub mod cusum;
pub mod longest_run;
pub mod matrix_rank;
pub mod monobit;
pub mod runs;
pub mod serial;

use serde::Serialize;

use crate::bits::BitString;
use crate::error::TrngError;

/// The outcome of one statistical test.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TestOutcome {
    /// The test's name.
    pub name: &'static str,
    /// The test statistic (test-specific meaning).
    pub statistic: f64,
    /// The p-value under the ideal-randomness null hypothesis.
    pub p_value: f64,
}

impl TestOutcome {
    /// Whether the stream passes at significance `alpha` (NIST uses
    /// 0.01).
    #[must_use]
    pub fn passes(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// The aggregated report of a full battery run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BatteryReport {
    /// Individual outcomes, in execution order.
    pub outcomes: Vec<TestOutcome>,
}

impl BatteryReport {
    /// Number of tests passing at significance `alpha`.
    #[must_use]
    pub fn passed(&self, alpha: f64) -> usize {
        self.outcomes.iter().filter(|o| o.passes(alpha)).count()
    }

    /// Whether every test passes at significance `alpha`.
    #[must_use]
    pub fn all_passed(&self, alpha: f64) -> bool {
        self.passed(alpha) == self.outcomes.len()
    }

    /// Renders the report as aligned text rows.
    #[must_use]
    pub fn to_table(&self, alpha: f64) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            out.push_str(&format!(
                "{:<24} statistic={:>12.4}  p={:>8.5}  {}\n",
                o.name,
                o.statistic,
                o.p_value,
                if o.passes(alpha) { "PASS" } else { "FAIL" }
            ));
        }
        out
    }
}

/// Runs the full battery on a bit stream (at least 2048 bits needed;
/// 100k+ recommended for meaningful verdicts). The matrix-rank test
/// joins the battery automatically once the stream is long enough for
/// its SP 800-22 validity minimum (38 complete 32x32 matrices).
///
/// # Errors
///
/// Returns [`TrngError::NotEnoughBits`] if the stream is too short for
/// any unconditionally-run constituent test.
pub fn run_all(bits: &BitString) -> Result<BatteryReport, TrngError> {
    let mut outcomes = vec![
        monobit::test(bits)?,
        block_frequency::test(bits, 128)?,
        runs::test(bits)?,
        longest_run::test(bits)?,
        cusum::test(bits)?,
        serial::test(bits, 3)?,
        approx_entropy::test(bits, 2)?,
        autocorr::test(bits, 8)?,
    ];
    if bits.len() >= 38 * 32 * 32 {
        outcomes.push(matrix_rank::test(bits)?);
    }
    Ok(BatteryReport { outcomes })
}

/// Runs the quick battery — monobit, runs, serial, approximate entropy
/// and autocorrelation — the subset cheap enough for per-commit CI
/// gating of surrogate output (the full battery's block tests need far
/// longer streams for stable verdicts). Same outcome vocabulary as
/// [`run_all`].
///
/// # Errors
///
/// Returns [`TrngError::NotEnoughBits`] if the stream is too short for
/// any constituent test.
pub fn run_quick(bits: &BitString) -> Result<BatteryReport, TrngError> {
    Ok(BatteryReport {
        outcomes: vec![
            monobit::test(bits)?,
            runs::test(bits)?,
            serial::test(bits, 3)?,
            approx_entropy::test(bits, 2)?,
            autocorr::test(bits, 8)?,
        ],
    })
}

pub(crate) fn require_bits(bits: &BitString, needed: usize) -> Result<(), TrngError> {
    if bits.len() < needed {
        return Err(TrngError::NotEnoughBits {
            needed,
            got: bits.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod testutil {
    use strent_sim::RngTree;

    use crate::bits::BitString;

    /// Deterministic near-ideal random bits.
    pub fn random_bits(n: usize, seed: u64) -> BitString {
        let mut rng = RngTree::new(seed).stream(0);
        (0..n).map(|_| u8::from(rng.bernoulli(0.5))).collect()
    }

    /// Heavily biased bits.
    pub fn biased_bits(n: usize, seed: u64, p: f64) -> BitString {
        let mut rng = RngTree::new(seed).stream(0);
        (0..n).map(|_| u8::from(rng.bernoulli(p))).collect()
    }

    /// Periodic (strongly structured) bits.
    pub fn periodic_bits(n: usize, period: usize) -> BitString {
        (0..n).map(|i| u8::from(i % period < period / 2)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{biased_bits, random_bits};
    use super::*;

    #[test]
    fn battery_accepts_good_bits_and_rejects_biased() {
        let good = random_bits(60_000, 7);
        let report = run_all(&good).expect("long enough");
        assert_eq!(report.outcomes.len(), 9, "matrix-rank joins at 60k bits");
        assert!(
            report.passed(0.01) >= 8,
            "good bits mostly pass:\n{}",
            report.to_table(0.01)
        );
        let bad = biased_bits(60_000, 7, 0.6);
        let report = run_all(&bad).expect("long enough");
        assert!(
            report.passed(0.01) <= 5,
            "biased bits mostly fail:\n{}",
            report.to_table(0.01)
        );
        assert!(!report.all_passed(0.01));
    }

    #[test]
    fn battery_requires_enough_bits() {
        assert!(run_all(&random_bits(100, 1)).is_err());
        assert!(run_quick(&random_bits(10, 1)).is_err());
    }

    #[test]
    fn quick_battery_matches_the_full_battery_verdicts() {
        let good = random_bits(20_000, 13);
        let report = run_quick(&good).expect("long enough");
        assert_eq!(report.outcomes.len(), 5);
        assert!(
            report.passed(0.01) >= 4,
            "good bits mostly pass:\n{}",
            report.to_table(0.01)
        );
        let bad = biased_bits(20_000, 13, 0.6);
        let report = run_quick(&bad).expect("long enough");
        assert!(
            !report.all_passed(0.01),
            "biased bits must fail:\n{}",
            report.to_table(0.01)
        );
    }

    #[test]
    fn table_rendering_has_all_rows() {
        let report = run_all(&random_bits(10_000, 3)).expect("long enough");
        let table = report.to_table(0.01);
        assert_eq!(table.lines().count(), 8, "short streams skip matrix-rank");
        assert!(table.contains("monobit"));
    }
}
