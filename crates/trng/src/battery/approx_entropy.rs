//! Approximate entropy test — SP 800-22 §2.12.

use strent_analysis::special::gamma_q;

use super::{require_bits, TestOutcome};
use crate::bits::BitString;
use crate::error::TrngError;

/// `phi(m)`: sum over all overlapping wrapped `m`-bit patterns of
/// `pi_i * ln(pi_i)`.
fn phi(bits: &[u8], m: usize) -> f64 {
    let n = bits.len();
    let mut counts = vec![0u64; 1 << m];
    let mask = (1usize << m) - 1;
    let mut pattern = 0usize;
    for &b in &bits[..m] {
        pattern = (pattern << 1) | b as usize;
    }
    counts[pattern] += 1;
    for i in 1..n {
        let next = bits[(i + m - 1) % n];
        pattern = ((pattern << 1) | next as usize) & mask;
        counts[pattern] += 1;
    }
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let pi = c as f64 / n as f64;
            pi * pi.ln()
        })
        .sum()
}

/// Tests the frequency of all overlapping `m`- and `(m+1)`-bit patterns
/// against the expectation for a random sequence.
///
/// # Errors
///
/// Returns [`TrngError::InvalidParameter`] for `m == 0` or
/// [`TrngError::NotEnoughBits`] if fewer than `2^(m+4)` bits are given.
pub fn test(bits: &BitString, m: usize) -> Result<TestOutcome, TrngError> {
    if m == 0 {
        return Err(TrngError::InvalidParameter {
            name: "m",
            constraint: "must be at least 1",
        });
    }
    require_bits(bits, 1 << (m + 4))?;
    let b = bits.as_slice();
    let ap_en = phi(b, m) - phi(b, m + 1);
    let n = b.len() as f64;
    let chi2 = 2.0 * n * (std::f64::consts::LN_2 - ap_en);
    Ok(TestOutcome {
        name: "approx-entropy",
        statistic: chi2,
        p_value: gamma_q(f64::from(1u32 << (m - 1)), chi2 / 2.0),
    })
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{periodic_bits, random_bits};
    use super::*;

    #[test]
    fn nist_reference_vector() {
        // SP 800-22 §2.12.8: eps = 0100110101, m = 3:
        // ApEn = 0.502193, chi2 = 0.502193 * ... -> P-value = 0.261961.
        let bits: BitString = [0u8, 1, 0, 0, 1, 1, 0, 1, 0, 1].iter().copied().collect();
        let b = bits.as_slice();
        let ap_en = phi(b, 3) - phi(b, 4);
        let chi2 = 2.0 * 10.0 * (std::f64::consts::LN_2 - ap_en);
        let p = gamma_q(4.0, chi2 / 2.0);
        assert!((p - 0.261961).abs() < 1e-4, "p = {p}");
    }

    #[test]
    fn verdicts() {
        assert!(test(&random_bits(40_000, 8), 2)
            .expect("enough")
            .passes(0.01));
        let structured = periodic_bits(40_000, 4);
        assert!(!test(&structured, 2).expect("enough").passes(0.01));
        assert!(test(&random_bits(40_000, 8), 0).is_err());
        assert!(test(&random_bits(10, 8), 2).is_err());
    }
}
