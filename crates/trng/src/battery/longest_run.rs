//! Longest-run-of-ones test — SP 800-22 §2.4 (M = 8 variant).

use strent_analysis::special::gamma_q;

use super::{require_bits, TestOutcome};
use crate::bits::BitString;
use crate::error::TrngError;

/// Reference probabilities for the longest run of ones in an 8-bit
/// block, categories `<=1, 2, 3, >=4` (SP 800-22 Table 2-4).
const PI: [f64; 4] = [0.2148, 0.3672, 0.2305, 0.1875];

/// Tests the distribution of the longest run of ones within 8-bit
/// blocks.
///
/// # Errors
///
/// Returns [`TrngError::NotEnoughBits`] for fewer than 128 bits.
pub fn test(bits: &BitString) -> Result<TestOutcome, TrngError> {
    require_bits(bits, 128)?;
    let mut counts = [0u64; 4];
    let mut blocks = 0u64;
    for block in bits.as_slice().chunks_exact(8) {
        blocks += 1;
        let mut longest = 0usize;
        let mut current = 0usize;
        for &b in block {
            if b == 1 {
                current += 1;
                longest = longest.max(current);
            } else {
                current = 0;
            }
        }
        let category = match longest {
            0 | 1 => 0,
            2 => 1,
            3 => 2,
            _ => 3,
        };
        counts[category] += 1;
    }
    let n = blocks as f64;
    let chi2: f64 = counts
        .iter()
        .zip(&PI)
        .map(|(&c, &p)| {
            let expected = n * p;
            (c as f64 - expected) * (c as f64 - expected) / expected
        })
        .sum();
    Ok(TestOutcome {
        name: "longest-run",
        statistic: chi2,
        // K = 3 degrees of freedom.
        p_value: gamma_q(1.5, chi2 / 2.0),
    })
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{periodic_bits, random_bits};
    use super::*;

    #[test]
    fn nist_reference_vector() {
        // SP 800-22 §2.4.8 example sequence (128 bits), M = 8:
        // P-value = 0.180609.
        let eps = "11001100000101010110110001001100111000000000001001\
                   00110101010001000100111101011010000000110101111100\
                   1100111001101101100010110010";
        let bits: BitString = eps
            .chars()
            .filter(|c| !c.is_whitespace())
            .map(|c| if c == '1' { 1u8 } else { 0u8 })
            .collect();
        assert_eq!(bits.len(), 128);
        let outcome = test(&bits).expect("enough bits");
        assert!(
            (outcome.p_value - 0.180609).abs() < 1e-4,
            "p = {}",
            outcome.p_value
        );
    }

    #[test]
    fn verdicts() {
        assert!(test(&random_bits(40_000, 9)).expect("enough").passes(0.01));
        // Period-16 square wave: every block has a run of exactly 8.
        let structured = periodic_bits(40_000, 16);
        assert!(!test(&structured).expect("enough").passes(0.01));
        assert!(test(&random_bits(64, 1)).is_err());
    }
}
