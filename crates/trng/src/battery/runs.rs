//! Runs test — SP 800-22 §2.3.

use strent_analysis::special::erfc;

use super::{require_bits, TestOutcome};
use crate::bits::BitString;
use crate::error::TrngError;

/// Tests whether the number of runs (maximal blocks of identical bits)
/// matches the expectation for a random sequence.
///
/// # Errors
///
/// Returns [`TrngError::NotEnoughBits`] for fewer than 100 bits.
pub fn test(bits: &BitString) -> Result<TestOutcome, TrngError> {
    require_bits(bits, 100)?;
    let n = bits.len() as f64;
    let pi = bits.count_ones() as f64 / n;
    // Prerequisite: the frequency test must be passable at all; if the
    // bias is extreme the runs statistic is meaningless — report p = 0.
    if (pi - 0.5).abs() >= 2.0 / n.sqrt() {
        return Ok(TestOutcome {
            name: "runs",
            statistic: f64::INFINITY,
            p_value: 0.0,
        });
    }
    let b = bits.as_slice();
    let v_obs = 1.0 + b.windows(2).filter(|w| w[0] != w[1]).count() as f64;
    let denom = 2.0 * (2.0 * n).sqrt() * pi * (1.0 - pi);
    let statistic = (v_obs - 2.0 * n * pi * (1.0 - pi)).abs() / denom;
    // NIST's erfc argument already includes the sqrt(2) normalization.
    Ok(TestOutcome {
        name: "runs",
        statistic,
        p_value: erfc(statistic),
    })
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{periodic_bits, random_bits};
    use super::*;

    #[test]
    fn nist_reference_vector() {
        // SP 800-22 §2.3.8: the 100-bit pi sequence -> P-value = 0.500798.
        let pi_bits = "1100100100001111110110101010001000100001011010001100\
                       001000110100110001001100011001100010100010111000";
        let bits: BitString = pi_bits
            .chars()
            .filter(|c| !c.is_whitespace())
            .map(|c| if c == '1' { 1u8 } else { 0u8 })
            .collect();
        let outcome = test(&bits).expect("enough bits");
        assert!(
            (outcome.p_value - 0.500798).abs() < 1e-5,
            "p = {}",
            outcome.p_value
        );
    }

    #[test]
    fn verdicts() {
        assert!(test(&random_bits(20_000, 5)).expect("enough").passes(0.01));
        // Alternating bits: twice as many runs as expected.
        let alternating = periodic_bits(20_000, 2);
        assert!(!test(&alternating).expect("enough").passes(0.01));
        // Extreme bias short-circuits to p = 0.
        let ones: BitString = (0..1000).map(|_| 1u8).collect();
        assert_eq!(test(&ones).expect("enough").p_value, 0.0);
        assert!(test(&random_bits(50, 1)).is_err());
    }
}
