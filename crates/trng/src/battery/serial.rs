//! Serial test — SP 800-22 §2.11.

use strent_analysis::special::gamma_q;

use super::{require_bits, TestOutcome};
use crate::bits::BitString;
use crate::error::TrngError;

/// `psi^2_m`: the generalized frequency statistic over all overlapping
/// `m`-bit patterns (with wraparound, per the NIST definition).
fn psi_squared(bits: &[u8], m: usize) -> f64 {
    if m == 0 {
        return 0.0;
    }
    let n = bits.len();
    let mut counts = vec![0u64; 1 << m];
    let mask = (1usize << m) - 1;
    // Build the first pattern.
    let mut pattern = 0usize;
    for &b in &bits[..m] {
        pattern = (pattern << 1) | b as usize;
    }
    counts[pattern] += 1;
    for i in 1..n {
        let next = bits[(i + m - 1) % n];
        pattern = ((pattern << 1) | next as usize) & mask;
        counts[pattern] += 1;
    }
    let nf = n as f64;
    let sum: f64 = counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
    (1 << m) as f64 / nf * sum - nf
}

/// Tests the uniformity of overlapping `m`-bit pattern frequencies.
/// Reports the first of the two NIST p-values (`del psi^2_m`).
///
/// # Errors
///
/// Returns [`TrngError::InvalidParameter`] for `m < 2` or
/// [`TrngError::NotEnoughBits`] if fewer than `2^(m+3)` bits are given.
pub fn test(bits: &BitString, m: usize) -> Result<TestOutcome, TrngError> {
    if m < 2 {
        return Err(TrngError::InvalidParameter {
            name: "m",
            constraint: "must be at least 2",
        });
    }
    require_bits(bits, 1 << (m + 3))?;
    let b = bits.as_slice();
    let psi_m = psi_squared(b, m);
    let psi_m1 = psi_squared(b, m - 1);
    let psi_m2 = psi_squared(b, m.saturating_sub(2));
    let del1 = psi_m - psi_m1;
    let del2 = psi_m - 2.0 * psi_m1 + psi_m2;
    let p1 = gamma_q(f64::from(1u32 << (m - 1)) / 2.0, del1 / 2.0);
    let _p2 = gamma_q(f64::from(1u32 << (m - 2)) / 2.0, del2 / 2.0);
    Ok(TestOutcome {
        name: "serial",
        statistic: del1,
        p_value: p1,
    })
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{periodic_bits, random_bits};
    use super::*;

    #[test]
    fn nist_reference_vector() {
        // SP 800-22 §2.11.8: eps = 0011011101, m = 3:
        // psi2_3 = 2.8, psi2_2 = 1.2, psi2_1 = 0.4, del1 = 1.6,
        // P-value1 = 0.808792.
        let bits: BitString = [0u8, 0, 1, 1, 0, 1, 1, 1, 0, 1].iter().copied().collect();
        let b = bits.as_slice();
        assert!((psi_squared(b, 3) - 2.8).abs() < 1e-9);
        assert!((psi_squared(b, 2) - 1.2).abs() < 1e-9);
        assert!((psi_squared(b, 1) - 0.4).abs() < 1e-9);
        let del1 = psi_squared(b, 3) - psi_squared(b, 2);
        let p1 = gamma_q(2.0, del1 / 2.0);
        assert!((p1 - 0.808792).abs() < 1e-5, "p1 = {p1}");
    }

    #[test]
    fn verdicts() {
        assert!(test(&random_bits(40_000, 6), 3)
            .expect("enough")
            .passes(0.01));
        let structured = periodic_bits(40_000, 8);
        assert!(!test(&structured, 3).expect("enough").passes(0.01));
        assert!(test(&random_bits(40_000, 6), 1).is_err());
        assert!(test(&random_bits(10, 6), 3).is_err());
    }
}
