//! # strent-trng — TRNG constructions and evaluation
//!
//! The paper studies STRs and IROs *as entropy sources for TRNGs*; this
//! crate closes the loop by building the generators and the evaluation
//! machinery around them:
//!
//! * [`bits`] — a simple bit-string type with packing;
//! * [`sampler`] — sampling a jittery clock with a reference clock
//!   (including a metastability window), directly from simulated traces;
//! * [`phase`] — the standard phase-accumulation ("urn") model of an
//!   elementary ring-oscillator TRNG: fast enough for megabit studies,
//!   parameterized by quantities *measured* from the event-driven
//!   simulation (period, jitter, deterministic modulation depth);
//! * [`elementary`] — the elementary TRNG: one jittery ring sampled at a
//!   low reference frequency (refs \[1\], \[2\] of the paper);
//! * [`coherent`] — the coherent-sampling TRNG of ref \[7\], which needs
//!   the tight extra-device frequency control that Table II shows STRs
//!   provide;
//! * [`postprocess`] — von Neumann, XOR decimation and parity filters;
//! * [`entropy`] — Shannon/min-entropy/Markov estimators, bias,
//!   autocorrelation;
//! * [`battery`] — a statistical test battery in the spirit of NIST
//!   SP 800-22 (monobit, block frequency, runs, longest run, cumulative
//!   sums, serial, approximate entropy, autocorrelation);
//! * [`health`] — SP 800-90B continuous health tests (repetition count,
//!   adaptive proportion) for online failure detection;
//! * [`restart`] — restart campaigns certifying true randomness;
//! * [`multiphase`] — the multi-phase STR TRNG of the paper's future
//!   work;
//! * [`attack`] — supply-modulation attack scenarios comparing the bias
//!   induced in IRO-based vs STR-based generators.
//!
//! ## Example
//!
//! ```
//! use strent_trng::phase::PhaseModel;
//! use strent_trng::entropy;
//!
//! // An elementary TRNG whose accumulated jitter per sample is 30% of
//! // the half-period: decent entropy.
//! let mut model = PhaseModel::new(3333.0, 0.3 * 3333.0 / 2.0, 77)?;
//! let bits = model.generate(20_000);
//! let h = entropy::shannon_bit_entropy(&bits)?;
//! assert!(h > 0.9, "entropy {h}");
//! # Ok::<(), strent_trng::TrngError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod battery;
pub mod bits;
pub mod coherent;
pub mod elementary;
pub mod entropy;
pub mod error;
pub mod health;
pub mod multiphase;
pub mod phase;
pub mod postprocess;
pub mod restart;
pub mod sampler;

pub use bits::BitString;
pub use error::TrngError;
pub use health::HealthMonitor;
pub use postprocess::{ConditionerKind, StreamConditioner};
