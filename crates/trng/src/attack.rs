//! Supply-modulation attack scenarios.
//!
//! The classic non-invasive attack on ring-oscillator TRNGs (the paper's
//! refs \[1\], \[2\]): modulate the core supply, inject *deterministic*
//! jitter, and bias the sampled bits. This module measures a ring's
//! deterministic response with a lock-in detector on its simulated
//! period series, and translates the response into bit-level damage
//! through the phase model.

use serde::{Deserialize, Serialize};
use strent_analysis::jitter;
use strent_device::{Board, Supply};
use strent_sim::SimStats;

use crate::elementary::EntropySource;
use crate::error::TrngError;
use crate::phase::PhaseModel;

/// Lock-in detection: the amplitude of a sinusoidal component of known
/// frequency in a period series.
///
/// The series' sample instants are reconstructed by accumulating the
/// periods themselves (self-clocked sampling, like a real counter).
///
/// # Errors
///
/// Returns [`TrngError::InvalidParameter`] for a non-positive frequency
/// or [`TrngError::NotEnoughBits`] for fewer than 16 periods.
pub fn lockin_amplitude_ps(periods_ps: &[f64], freq_mhz: f64) -> Result<f64, TrngError> {
    if !(freq_mhz.is_finite() && freq_mhz > 0.0) {
        return Err(TrngError::InvalidParameter {
            name: "freq_mhz",
            constraint: "finite and positive",
        });
    }
    if periods_ps.len() < 16 {
        return Err(TrngError::NotEnoughBits {
            needed: 16,
            got: periods_ps.len(),
        });
    }
    let omega = std::f64::consts::TAU * freq_mhz * 1e-6; // rad per ps
    let mean = periods_ps.iter().sum::<f64>() / periods_ps.len() as f64;
    let mut t = 0.0;
    let mut i_sum = 0.0;
    let mut q_sum = 0.0;
    for &p in periods_ps {
        let centered = p - mean;
        i_sum += centered * (omega * t).sin();
        q_sum += centered * (omega * t).cos();
        t += p;
    }
    let n = periods_ps.len() as f64;
    Ok(2.0 * (i_sum * i_sum + q_sum * q_sum).sqrt() / n)
}

/// A ring's measured response to sinusoidal supply modulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModulationResponse {
    /// Modulation frequency, MHz.
    pub freq_mhz: f64,
    /// Supply modulation amplitude, volts.
    pub supply_amplitude_v: f64,
    /// Mean ring period, ps.
    pub mean_period_ps: f64,
    /// Deterministic period-modulation amplitude (lock-in), ps.
    pub det_amplitude_ps: f64,
    /// Random period jitter with the modulation off, ps.
    pub sigma_random_ps: f64,
}

impl ModulationResponse {
    /// The deterministic-to-random jitter ratio per period — the attack
    /// figure of merit from the paper's ref \[2\].
    #[must_use]
    pub fn det_to_random_ratio(&self) -> f64 {
        if self.sigma_random_ps == 0.0 {
            f64::INFINITY
        } else {
            self.det_amplitude_ps / self.sigma_random_ps
        }
    }

    /// The amplitude (ps) of the deterministic *phase-time* modulation of
    /// the ring's edges: integrating the period modulation gives
    /// `amplitude / (omega * T)` in periods, i.e. `amplitude / (omega*T)
    /// * T` ps of edge displacement.
    #[must_use]
    pub fn phase_time_amplitude_ps(&self) -> f64 {
        let omega = std::f64::consts::TAU * self.freq_mhz * 1e-6; // rad/ps
        self.det_amplitude_ps / (omega * self.mean_period_ps)
    }
}

/// Measures a ring's modulation response: one run with a sine supply
/// (lock-in) and one clean run (random jitter floor).
///
/// # Errors
///
/// Propagates ring simulation and analysis errors.
pub fn probe_response(
    source: &EntropySource,
    board: &Board,
    supply_amplitude_v: f64,
    freq_mhz: f64,
    seed: u64,
    periods: usize,
) -> Result<ModulationResponse, TrngError> {
    probe_response_metered(source, board, supply_amplitude_v, freq_mhz, seed, periods)
        .map(|(response, _)| response)
}

/// Like [`probe_response`], also returning the combined simulator
/// kernel statistics of the clean and attacked runs — callers inside a
/// metered sweep feed these to their `JobMeter`.
///
/// # Errors
///
/// Propagates ring simulation and analysis errors.
pub fn probe_response_metered(
    source: &EntropySource,
    board: &Board,
    supply_amplitude_v: f64,
    freq_mhz: f64,
    seed: u64,
    periods: usize,
) -> Result<(ModulationResponse, SimStats), TrngError> {
    let clean = source.run(board, seed, periods)?;
    let sigma_random = jitter::period_jitter(&clean.periods_ps)?;
    let mut attacked_board = board.clone();
    let dc = board.supply().dc_level();
    attacked_board.set_supply(Supply::sine(dc, supply_amplitude_v, freq_mhz));
    let attacked = source.run(&attacked_board, seed, periods)?;
    let det = lockin_amplitude_ps(&attacked.periods_ps, freq_mhz)?;
    let mut stats = clean.stats;
    stats.absorb(attacked.stats);
    Ok((
        ModulationResponse {
            freq_mhz,
            supply_amplitude_v,
            mean_period_ps: 1e6 / attacked.frequency_mhz,
            det_amplitude_ps: det,
            sigma_random_ps: sigma_random,
        },
        stats,
    ))
}

/// Builds an attacked elementary-TRNG phase model from a measured
/// modulation response: the deterministic edge displacement becomes a
/// periodic phase modulation at the sampler.
///
/// # Errors
///
/// Propagates phase-model parameter errors.
pub fn attacked_phase_model(
    response: &ModulationResponse,
    sigma_acc_ps: f64,
    reference_period_ps: f64,
    seed: u64,
) -> Result<PhaseModel, TrngError> {
    let mod_period_ps = 1e6 / response.freq_mhz;
    PhaseModel::new(response.mean_period_ps, sigma_acc_ps, seed)?
        .with_deterministic_modulation(
            response.phase_time_amplitude_ps(),
            mod_period_ps / reference_period_ps,
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use strent_device::Technology;
    use strent_rings::{IroConfig, StrConfig};

    #[test]
    fn lockin_recovers_known_sinusoid() {
        // Period series with a 3 ps sinusoid at 10 MHz riding on 1000 ps.
        let freq = 10.0; // MHz
        let omega = std::f64::consts::TAU * freq * 1e-6;
        let mut t = 0.0;
        let periods: Vec<f64> = (0..5000)
            .map(|_| {
                let p = 1000.0 + 3.0 * (omega * t).sin();
                t += p;
                p
            })
            .collect();
        let a = lockin_amplitude_ps(&periods, freq).expect("valid");
        assert!((a - 3.0).abs() < 0.1, "amplitude {a}");
        // Off-frequency lock-in sees almost nothing.
        let off = lockin_amplitude_ps(&periods, 3.7).expect("valid");
        assert!(off < 0.3, "off-frequency leakage {off}");
    }

    #[test]
    fn lockin_rejects_bad_input() {
        assert!(lockin_amplitude_ps(&[1.0; 8], 1.0).is_err());
        assert!(lockin_amplitude_ps(&[1.0; 100], 0.0).is_err());
    }

    #[test]
    fn iro_response_shows_deterministic_component() {
        let board = Board::new(Technology::cyclone_iii(), 0, 3);
        let source = EntropySource::Iro(IroConfig::new(5).expect("valid"));
        let resp =
            probe_response(&source, &board, 0.012, 20.0, 5, 2000).expect("simulates");
        // ~1% supply swing moves the ~2.66 ns period by tens of ps:
        // far above the 6.3 ps random jitter.
        assert!(
            resp.det_amplitude_ps > resp.sigma_random_ps,
            "det {} vs random {}",
            resp.det_amplitude_ps,
            resp.sigma_random_ps
        );
        assert!(resp.det_to_random_ratio() > 1.0);
    }

    #[test]
    fn str_response_is_weaker_than_iro_at_same_stage_count() {
        // The paper's Sec. IV-B claim, scaled down for test runtime:
        // at equal L the STR's absolute deterministic response is far
        // smaller because its period stays short.
        let board = Board::new(Technology::cyclone_iii(), 0, 3);
        let iro = EntropySource::Iro(IroConfig::new(25).expect("valid"));
        let strr = EntropySource::Str(StrConfig::new(24, 12).expect("valid"));
        let r_iro =
            probe_response(&iro, &board, 0.012, 20.0, 5, 1500).expect("simulates");
        let r_str =
            probe_response(&strr, &board, 0.012, 20.0, 5, 1500).expect("simulates");
        assert!(
            r_str.det_amplitude_ps < r_iro.det_amplitude_ps / 2.0,
            "STR det {} vs IRO det {}",
            r_str.det_amplitude_ps,
            r_iro.det_amplitude_ps
        );
    }

    #[test]
    fn attacked_model_shows_structure() {
        let resp = ModulationResponse {
            freq_mhz: 10.0,
            supply_amplitude_v: 0.012,
            mean_period_ps: 3000.0,
            det_amplitude_ps: 60.0,
            sigma_random_ps: 3.0,
        };
        assert!(resp.det_to_random_ratio() > 10.0);
        assert!(resp.phase_time_amplitude_ps() > 100.0);
        let mut weak = attacked_phase_model(&resp, 10.0, 12_500.0, 3).expect("valid");
        let bits = weak.generate(8_000);
        // The modulation period in samples: 1e5 ps / 12.5e3 ps = 8.
        let b = bits.as_slice();
        let n = b.len() - 8;
        let agree = (0..n).filter(|&i| b[i] == b[i + 8]).count() as f64 / n as f64;
        assert!(
            (agree - 0.5).abs() > 0.05,
            "attacked stream shows lag-8 structure: {agree}"
        );
    }
}
