//! Entropy estimators for binary sequences.

use crate::bits::BitString;
use crate::error::TrngError;

fn require_bits(bits: &BitString, needed: usize) -> Result<(), TrngError> {
    if bits.len() < needed {
        return Err(TrngError::NotEnoughBits {
            needed,
            got: bits.len(),
        });
    }
    Ok(())
}

/// Binary Shannon entropy of `p`: `-p log2 p - (1-p) log2 (1-p)`.
#[must_use]
pub fn binary_entropy(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        return 0.0;
    }
    -p * p.log2() - (1.0 - p) * (1.0 - p).log2()
}

/// The bias of a bit stream: `P(1) - 1/2`.
///
/// # Errors
///
/// Returns [`TrngError::NotEnoughBits`] for an empty stream.
pub fn bias(bits: &BitString) -> Result<f64, TrngError> {
    require_bits(bits, 1)?;
    Ok(bits.count_ones() as f64 / bits.len() as f64 - 0.5)
}

/// Per-bit Shannon entropy estimated from the symbol frequencies
/// (an upper bound on the true entropy rate — correlations only lower
/// it; combine with [`markov_entropy`]).
///
/// # Errors
///
/// Returns [`TrngError::NotEnoughBits`] for fewer than 100 bits.
pub fn shannon_bit_entropy(bits: &BitString) -> Result<f64, TrngError> {
    require_bits(bits, 100)?;
    let p = bits.count_ones() as f64 / bits.len() as f64;
    Ok(binary_entropy(p))
}

/// Per-bit min-entropy from the most probable symbol:
/// `-log2 max(p, 1-p)`.
///
/// # Errors
///
/// Returns [`TrngError::NotEnoughBits`] for fewer than 100 bits.
pub fn min_entropy(bits: &BitString) -> Result<f64, TrngError> {
    require_bits(bits, 100)?;
    let p = bits.count_ones() as f64 / bits.len() as f64;
    Ok(-p.max(1.0 - p).log2())
}

/// First-order Markov entropy rate: the conditional entropy
/// `H(X_n | X_{n-1})` estimated from transition frequencies. Catches the
/// serial correlation that plain symbol frequencies miss.
///
/// # Errors
///
/// Returns [`TrngError::NotEnoughBits`] for fewer than 101 bits.
pub fn markov_entropy(bits: &BitString) -> Result<f64, TrngError> {
    require_bits(bits, 101)?;
    let b = bits.as_slice();
    let mut counts = [[0u64; 2]; 2];
    for w in b.windows(2) {
        counts[w[0] as usize][w[1] as usize] += 1;
    }
    let mut h = 0.0;
    let total: u64 = counts.iter().flatten().sum();
    for (prev, row) in counts.iter().enumerate() {
        let row_total = row[0] + row[1];
        if row_total == 0 {
            continue;
        }
        let p_prev = row_total as f64 / total as f64;
        let p1 = counts[prev][1] as f64 / row_total as f64;
        h += p_prev * binary_entropy(p1);
    }
    Ok(h)
}

/// Per-bit collision (Rényi order-2) entropy: `-log2 (p^2 + (1-p)^2)`.
///
/// Sits between min-entropy and Shannon entropy
/// (`H_min <= H_2 <= H_1`), and is the quantity SP 800-90B-style
/// collision estimators target.
///
/// # Errors
///
/// Returns [`TrngError::NotEnoughBits`] for fewer than 100 bits.
pub fn collision_entropy(bits: &BitString) -> Result<f64, TrngError> {
    require_bits(bits, 100)?;
    let p = bits.count_ones() as f64 / bits.len() as f64;
    Ok(-(p * p + (1.0 - p) * (1.0 - p)).log2())
}

/// Sample autocorrelation of the ±1-mapped stream at the given lag.
///
/// # Errors
///
/// Returns [`TrngError::NotEnoughBits`] if fewer than `lag + 100` bits
/// are available, or [`TrngError::InvalidParameter`] for a zero lag.
pub fn autocorrelation(bits: &BitString, lag: usize) -> Result<f64, TrngError> {
    if lag == 0 {
        return Err(TrngError::InvalidParameter {
            name: "lag",
            constraint: "must be at least 1",
        });
    }
    require_bits(bits, lag + 100)?;
    let b = bits.as_slice();
    let n = b.len() - lag;
    let mean = b.iter().map(|&x| f64::from(x)).sum::<f64>() / b.len() as f64;
    let var = b
        .iter()
        .map(|&x| (f64::from(x) - mean).powi(2))
        .sum::<f64>()
        / b.len() as f64;
    if var == 0.0 {
        return Ok(1.0); // constant stream is perfectly self-correlated
    }
    let cov = (0..n)
        .map(|i| (f64::from(b[i]) - mean) * (f64::from(b[i + lag]) - mean))
        .sum::<f64>()
        / n as f64;
    Ok(cov / var)
}

/// The theoretical lower bound on per-bit Shannon entropy of an
/// elementary RO-TRNG as a function of the quality factor
/// `q = sigma_acc / T` (from the Gaussian phase-diffusion model used in
/// the paper's ref \[2\] lineage): for large `q` the entropy tends to 1
/// exponentially; for small `q` it collapses.
///
/// This closed form uses the dominant harmonic of the phase-diffusion
/// Fourier series: `H ~ 1 - (4 / (pi^2 ln 2)) exp(-2 pi^2 q^2)`.
#[must_use]
pub fn elementary_entropy_bound(quality_factor: f64) -> f64 {
    if quality_factor <= 0.0 {
        return 0.0;
    }
    let h = 1.0
        - (4.0 / (std::f64::consts::PI.powi(2) * std::f64::consts::LN_2))
            * (-2.0 * std::f64::consts::PI.powi(2) * quality_factor * quality_factor).exp();
    h.clamp(0.0, 1.0)
}

/// Order-`k` Markov *min*-entropy estimate of a delivered bitstream,
/// delegating to [`strent_analysis::markov`]: upper-confidence
/// transition probabilities (small-sample haircut), most-likely-path
/// min-entropy per bit, in `[0, 1]`.
///
/// Unlike the frequency estimators above, a stream too short to
/// support the order does **not** collapse to a 0-entropy answer — it
/// is a typed refusal the caller must handle.
///
/// # Errors
///
/// Returns [`AnalysisError::InsufficientData`] (wrapped in
/// [`TrngError::Analysis`]) when the stream is shorter than
/// `order + 1` bits or too thin for a meaningful estimate, and
/// [`TrngError::Analysis`] with `InvalidParameter` for an unsupported
/// order.
///
/// [`AnalysisError::InsufficientData`]: strent_analysis::AnalysisError::InsufficientData
pub fn markov_min_entropy(bits: &BitString, order: usize) -> Result<f64, TrngError> {
    Ok(strent_analysis::markov::markov_min_entropy(
        bits.as_slice(),
        order,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use strent_sim::RngTree;

    fn random_bits(n: usize, seed: u64) -> BitString {
        let mut rng = RngTree::new(seed).stream(0);
        (0..n).map(|_| u8::from(rng.bernoulli(0.5))).collect()
    }

    #[test]
    fn markov_min_entropy_refuses_short_streams_with_typed_error() {
        let short: BitString = [1u8, 0].iter().copied().collect();
        match markov_min_entropy(&short, 3) {
            Err(TrngError::Analysis(strent_analysis::AnalysisError::InsufficientData {
                needed,
                got,
            })) => {
                assert_eq!((needed, got), (4, 2));
            }
            other => panic!("expected InsufficientData, got {other:?}"),
        }
        // With enough data the estimate answers and stays in range.
        let bits = random_bits(16_384, 3);
        let h = markov_min_entropy(&bits, 2).expect("enough data");
        assert!(h > 0.8 && h <= 1.0, "fair stream estimated {h}");
    }

    #[test]
    fn binary_entropy_reference_points() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        assert!((binary_entropy(0.11) - 0.4999).abs() < 0.001);
        assert!((binary_entropy(0.25) - binary_entropy(0.75)).abs() < 1e-12);
    }

    #[test]
    fn estimators_on_fair_random_bits() {
        let bits = random_bits(100_000, 1);
        assert!(bias(&bits).expect("non-empty").abs() < 0.01);
        assert!(shannon_bit_entropy(&bits).expect("enough") > 0.999);
        assert!(min_entropy(&bits).expect("enough") > 0.98);
        assert!(markov_entropy(&bits).expect("enough") > 0.999);
        assert!(autocorrelation(&bits, 1).expect("enough").abs() < 0.02);
    }

    #[test]
    fn estimators_on_structured_bits() {
        // Alternating bits: balanced but zero conditional entropy.
        let bits: BitString = (0..10_000).map(|i| (i % 2) as u8).collect();
        assert!(bias(&bits).expect("non-empty").abs() < 1e-9);
        assert!(shannon_bit_entropy(&bits).expect("enough") > 0.999);
        assert!(markov_entropy(&bits).expect("enough") < 0.01);
        assert!(autocorrelation(&bits, 1).expect("enough") < -0.99);
        assert!(autocorrelation(&bits, 2).expect("enough") > 0.99);
        // Constant stream.
        let bits: BitString = (0..1000).map(|_| 1u8).collect();
        assert_eq!(min_entropy(&bits).expect("enough"), 0.0);
        assert_eq!(autocorrelation(&bits, 3).expect("enough"), 1.0);
    }

    #[test]
    fn collision_entropy_ordering() {
        // H_min <= H_2 <= H_shannon for any bias.
        for p in [0.5, 0.6, 0.8, 0.95] {
            let n = 10_000;
            let bits: BitString = (0..n)
                .map(|i| u8::from((i as f64 / n as f64) < p))
                .collect();
            let h1 = shannon_bit_entropy(&bits).expect("enough");
            let h2 = collision_entropy(&bits).expect("enough");
            let hmin = min_entropy(&bits).expect("enough");
            assert!(hmin <= h2 + 1e-9, "p={p}: {hmin} vs {h2}");
            assert!(h2 <= h1 + 1e-9, "p={p}: {h2} vs {h1}");
        }
        // Fair bits: all three are 1.
        let fair = random_bits(10_000, 3);
        assert!((collision_entropy(&fair).expect("enough") - 1.0).abs() < 0.01);
        assert!(collision_entropy(&random_bits(10, 3)).is_err());
    }

    #[test]
    fn entropy_bound_shape() {
        assert_eq!(elementary_entropy_bound(0.0), 0.0);
        // Monotone increasing.
        let qs = [0.05, 0.1, 0.2, 0.4, 0.8];
        for w in qs.windows(2) {
            assert!(
                elementary_entropy_bound(w[0]) <= elementary_entropy_bound(w[1]),
                "bound must be monotone"
            );
        }
        // Near 1 for high quality.
        assert!(elementary_entropy_bound(1.0) > 0.999);
    }

    #[test]
    fn error_cases() {
        assert!(bias(&BitString::new()).is_err());
        assert!(shannon_bit_entropy(&random_bits(10, 1)).is_err());
        assert!(autocorrelation(&random_bits(1000, 1), 0).is_err());
        assert!(autocorrelation(&random_bits(50, 1), 10).is_err());
    }
}
