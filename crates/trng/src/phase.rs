//! The phase-accumulation model of an elementary RO-based TRNG.
//!
//! Simulating one output bit of a realistic TRNG requires simulating
//! thousands of ring periods per reference period; statistically
//! characterizing megabit streams that way is intractable. The standard
//! shortcut (used throughout the RO-TRNG literature, e.g. the paper's
//! ref \[2\]) is the **phase random walk**: between two samples the ring
//! phase advances by a large deterministic amount plus a Gaussian
//! increment whose sigma is the jitter accumulated over one reference
//! period; the sampled bit is the ring output at that phase.
//!
//! The model is parameterized by three quantities the event-driven
//! simulation *measures*: the mean period, the accumulated jitter, and
//! (for attack studies) the deterministic phase modulation depth. This
//! keeps the fast model anchored to the physical one.

use strent_sim::{RngTree, SimRng};

use crate::bits::BitString;
use crate::error::TrngError;

/// Phase random-walk generator.
///
/// # Examples
///
/// ```
/// use strent_trng::phase::PhaseModel;
///
/// // 300 MHz ring sampled such that 200 ps of jitter accumulates per bit.
/// let mut model = PhaseModel::new(3333.0, 200.0, 1)?;
/// let bits = model.generate(1000);
/// assert_eq!(bits.len(), 1000);
/// # Ok::<(), strent_trng::TrngError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PhaseModel {
    period_ps: f64,
    sigma_acc_ps: f64,
    duty: f64,
    det_amplitude_ps: f64,
    det_period_samples: f64,
    phase: f64,
    sample_index: u64,
    rng: SimRng,
}

impl PhaseModel {
    /// Creates a model for a ring of the given mean period, with
    /// `sigma_acc_ps` of Gaussian jitter accumulated between successive
    /// samples.
    ///
    /// # Errors
    ///
    /// Returns [`TrngError::InvalidParameter`] if the period is not
    /// positive or the jitter is negative.
    pub fn new(period_ps: f64, sigma_acc_ps: f64, seed: u64) -> Result<Self, TrngError> {
        if !(period_ps.is_finite() && period_ps > 0.0) {
            return Err(TrngError::InvalidParameter {
                name: "period_ps",
                constraint: "finite and positive",
            });
        }
        if !(sigma_acc_ps.is_finite() && sigma_acc_ps >= 0.0) {
            return Err(TrngError::InvalidParameter {
                name: "sigma_acc_ps",
                constraint: "finite and non-negative",
            });
        }
        Ok(PhaseModel {
            period_ps,
            sigma_acc_ps,
            duty: 0.5,
            det_amplitude_ps: 0.0,
            det_period_samples: 1.0,
            phase: 0.25,
            sample_index: 0,
            rng: RngTree::new(seed).stream(0x7277),
        })
    }

    /// Sets the ring duty cycle (fraction of the period spent high).
    ///
    /// # Errors
    ///
    /// Returns [`TrngError::InvalidParameter`] unless `0 < duty < 1`.
    pub fn with_duty(mut self, duty: f64) -> Result<Self, TrngError> {
        if !(duty.is_finite() && duty > 0.0 && duty < 1.0) {
            return Err(TrngError::InvalidParameter {
                name: "duty",
                constraint: "strictly between 0 and 1",
            });
        }
        self.duty = duty;
        Ok(self)
    }

    /// Adds a deterministic sinusoidal phase modulation (an attack): the
    /// sampled phase is shifted by `amplitude_ps * sin(2 pi k / period)`
    /// where `k` counts samples.
    ///
    /// # Errors
    ///
    /// Returns [`TrngError::InvalidParameter`] if the amplitude is
    /// negative or the period is not positive.
    pub fn with_deterministic_modulation(
        mut self,
        amplitude_ps: f64,
        period_samples: f64,
    ) -> Result<Self, TrngError> {
        if !(amplitude_ps.is_finite() && amplitude_ps >= 0.0) {
            return Err(TrngError::InvalidParameter {
                name: "amplitude_ps",
                constraint: "finite and non-negative",
            });
        }
        if !(period_samples.is_finite() && period_samples > 0.0) {
            return Err(TrngError::InvalidParameter {
                name: "period_samples",
                constraint: "finite and positive",
            });
        }
        self.det_amplitude_ps = amplitude_ps;
        self.det_period_samples = period_samples;
        Ok(self)
    }

    /// The ring period, ps.
    #[must_use]
    pub fn period_ps(&self) -> f64 {
        self.period_ps
    }

    /// Jitter accumulated between samples, ps.
    #[must_use]
    pub fn sigma_acc_ps(&self) -> f64 {
        self.sigma_acc_ps
    }

    /// The per-sample *quality factor* `sigma_acc / period` — the paper's
    /// community expresses entropy bounds in terms of this ratio.
    #[must_use]
    pub fn quality_factor(&self) -> f64 {
        self.sigma_acc_ps / self.period_ps
    }

    /// Generates the next bit.
    pub fn next_bit(&mut self) -> u8 {
        // Gaussian phase increment (the fractional part of the huge
        // deterministic advance is absorbed into the stationary phase).
        let noise = self.rng.normal(0.0, self.sigma_acc_ps / self.period_ps);
        self.phase = (self.phase + noise).rem_euclid(1.0);
        self.sample_index += 1;
        // Deterministic modulation shifts the *sampled* phase.
        let det = if self.det_amplitude_ps > 0.0 {
            let k = self.sample_index as f64;
            (self.det_amplitude_ps / self.period_ps)
                * (std::f64::consts::TAU * k / self.det_period_samples).sin()
        } else {
            0.0
        };
        let sampled = (self.phase + det).rem_euclid(1.0);
        u8::from(sampled < self.duty)
    }

    /// Generates `count` bits.
    pub fn generate(&mut self, count: usize) -> BitString {
        (0..count).map(|_| self.next_bit()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_jitter_gives_balanced_unpredictable_bits() {
        let mut m = PhaseModel::new(3333.0, 3333.0, 42).expect("valid");
        let bits = m.generate(20_000);
        let ones = bits.count_ones() as f64 / 20_000.0;
        assert!((ones - 0.5).abs() < 0.02, "bias {ones}");
        // Successive bits should be nearly uncorrelated.
        let b = bits.as_slice();
        let agree = b.windows(2).filter(|w| w[0] == w[1]).count() as f64 / (b.len() - 1) as f64;
        assert!((agree - 0.5).abs() < 0.02, "agreement {agree}");
    }

    #[test]
    fn zero_jitter_freezes_the_phase() {
        let mut m = PhaseModel::new(1000.0, 0.0, 1).expect("valid");
        let bits = m.generate(100);
        // Phase stays at 0.25 < duty -> all ones.
        assert_eq!(bits.count_ones(), 100);
    }

    #[test]
    fn low_jitter_correlates_successive_bits() {
        // sigma_acc = 2% of the period: the phase walks slowly, so long
        // runs of identical bits appear.
        let mut m = PhaseModel::new(1000.0, 20.0, 7).expect("valid");
        let bits = m.generate(50_000);
        let b = bits.as_slice();
        let agree = b.windows(2).filter(|w| w[0] == w[1]).count() as f64 / (b.len() - 1) as f64;
        assert!(agree > 0.9, "agreement {agree} should be high");
    }

    #[test]
    fn duty_cycle_biases_output() {
        let mut m = PhaseModel::new(1000.0, 1000.0, 3)
            .expect("valid")
            .with_duty(0.7)
            .expect("valid");
        let bits = m.generate(20_000);
        let ones = bits.count_ones() as f64 / 20_000.0;
        assert!((ones - 0.7).abs() < 0.02, "bias {ones}");
    }

    #[test]
    fn deterministic_modulation_biases_a_weak_source() {
        // Weak entropy (tiny accumulated jitter) + strong modulation:
        // the modulation imposes its period on the stream. At half the
        // modulation period the deterministic shift changes sign, so the
        // attacked stream *disagrees* with itself there — while the
        // clean slow-walk stream agrees almost everywhere.
        let make = |amp: f64| {
            let mut m = PhaseModel::new(1000.0, 5.0, 11)
                .expect("valid")
                .with_deterministic_modulation(amp, 64.0)
                .expect("valid");
            m.generate(10_000)
        };
        let agreement = |bits: &crate::bits::BitString, lag: usize| {
            let b = bits.as_slice();
            let n = b.len() - lag;
            (0..n).filter(|&i| b[i] == b[i + lag]).count() as f64 / n as f64
        };
        let clean = make(0.0);
        let attacked = make(400.0);
        assert!(
            agreement(&attacked, 32) < agreement(&clean, 32) - 0.05,
            "attacked {} vs clean {}",
            agreement(&attacked, 32),
            agreement(&clean, 32)
        );
    }

    #[test]
    fn parameter_validation() {
        assert!(PhaseModel::new(0.0, 1.0, 1).is_err());
        assert!(PhaseModel::new(100.0, -1.0, 1).is_err());
        let m = PhaseModel::new(100.0, 1.0, 1).expect("valid");
        assert!(m.clone().with_duty(0.0).is_err());
        assert!(m.clone().with_duty(1.0).is_err());
        assert!(m
            .clone()
            .with_deterministic_modulation(-1.0, 10.0)
            .is_err());
        assert!(m.with_deterministic_modulation(1.0, 0.0).is_err());
        let m = PhaseModel::new(200.0, 50.0, 1).expect("valid");
        assert_eq!(m.quality_factor(), 0.25);
        assert_eq!(m.period_ps(), 200.0);
        assert_eq!(m.sigma_acc_ps(), 50.0);
    }
}
