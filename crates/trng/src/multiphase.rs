//! The multi-phase STR TRNG — the paper's future work, realized.
//!
//! The paper's conclusion: STR period jitter is dominated by the local
//! jitter of a single stage, so *"each ring stage can be considered as
//! an independent entropy source"*. The authors' follow-up TRNG exploits
//! exactly that: an `L`-stage STR provides `L` output phases spread
//! across the period; a reference clock samples **all** of them and
//! XORs the samples into one bit. Whenever any phase boundary falls
//! within the accumulated jitter of the sampling instant, that stage
//! contributes entropy — so the entropy per sample grows with `L`
//! instead of requiring a slower reference.

use strent_device::Board;
use strent_rings::{str_ring, StrConfig};
use strent_sim::{RngTree, Simulator, Time};

use crate::bits::BitString;
use crate::error::TrngError;
use crate::sampler::Sampler;

/// A multi-phase STR TRNG: every stage output sampled and XOR-combined.
///
/// # Examples
///
/// ```
/// use strent_device::{Board, Technology};
/// use strent_rings::StrConfig;
/// use strent_trng::multiphase::MultiphaseTrng;
///
/// let board = Board::new(Technology::cyclone_iii(), 0, 42);
/// let trng = MultiphaseTrng::new(StrConfig::new(16, 8)?, 25_000.0, 5.0)?;
/// let bits = trng.generate(&board, 7, 100)?;
/// assert_eq!(bits.len(), 100);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiphaseTrng {
    config: StrConfig,
    reference_period_ps: f64,
    meta_window_ps: f64,
}

impl MultiphaseTrng {
    /// Creates the generator.
    ///
    /// # Errors
    ///
    /// Returns [`TrngError::InvalidParameter`] if the reference period
    /// is not positive or the metastability window is negative.
    pub fn new(
        config: StrConfig,
        reference_period_ps: f64,
        meta_window_ps: f64,
    ) -> Result<Self, TrngError> {
        // Sampler::new performs the validation.
        let _ = Sampler::new(reference_period_ps, meta_window_ps)?;
        Ok(MultiphaseTrng {
            config,
            reference_period_ps,
            meta_window_ps,
        })
    }

    /// The ring configuration.
    #[must_use]
    pub fn config(&self) -> &StrConfig {
        &self.config
    }

    /// The reference sampling period, ps.
    #[must_use]
    pub fn reference_period_ps(&self) -> f64 {
        self.reference_period_ps
    }

    /// Generates `count` bits by full event-driven simulation: one
    /// sampling flip-flop per ring stage, XOR of all stage samples per
    /// reference edge.
    ///
    /// # Errors
    ///
    /// Propagates ring simulation and sampling errors.
    pub fn generate(&self, board: &Board, seed: u64, count: usize) -> Result<BitString, TrngError> {
        let ring_period = strent_rings::analytic::str_period_ps(&self.config, board);
        let warmup_ps = 64.0 * ring_period;
        let horizon = warmup_ps + self.reference_period_ps * (count + 2) as f64;
        let mut sim = Simulator::new(seed);
        let handle = str_ring::build(&self.config, board, &mut sim)?;
        for &net in handle.nets() {
            sim.watch(net)?;
        }
        sim.run_until(Time::from_ps(horizon))?;

        let sampler = Sampler::new(self.reference_period_ps, self.meta_window_ps)?;
        let rng_tree = RngTree::new(seed ^ 0x3b7a);
        let t0 = Time::from_ps(warmup_ps);
        // Sample every stage, then XOR across stages per instant.
        let mut combined = vec![0u8; count];
        for (stage, &net) in handle.nets().iter().enumerate() {
            let trace = sim.trace(net).expect("watched");
            let mut rng = rng_tree.stream(stage as u64);
            let stage_bits = sampler.sample_trace(trace, t0, count, &mut rng)?;
            for (acc, bit) in combined.iter_mut().zip(stage_bits.iter()) {
                *acc ^= bit;
            }
        }
        Ok(combined.into_iter().collect())
    }

    /// Generates `count` bits from stage 0 only — the single-phase
    /// baseline the multi-phase architecture improves upon.
    ///
    /// # Errors
    ///
    /// Propagates ring simulation and sampling errors.
    pub fn generate_single_phase(
        &self,
        board: &Board,
        seed: u64,
        count: usize,
    ) -> Result<BitString, TrngError> {
        let ring_period = strent_rings::analytic::str_period_ps(&self.config, board);
        let warmup_ps = 64.0 * ring_period;
        let horizon = warmup_ps + self.reference_period_ps * (count + 2) as f64;
        let mut sim = Simulator::new(seed);
        let handle = str_ring::build(&self.config, board, &mut sim)?;
        sim.watch(handle.output())?;
        sim.run_until(Time::from_ps(horizon))?;
        let sampler = Sampler::new(self.reference_period_ps, self.meta_window_ps)?;
        let mut rng = RngTree::new(seed ^ 0x3b7a).stream(0);
        sampler.sample_trace(
            sim.trace(handle.output()).expect("watched"),
            Time::from_ps(warmup_ps),
            count,
            &mut rng,
        )
    }

    /// The phase resolution the ring offers: the mean spacing between
    /// consecutive stage-output events within one period, `T / (2L)`
    /// — the quantity the authors' follow-up design sets against the
    /// jitter magnitude.
    #[must_use]
    pub fn phase_resolution_ps(&self, board: &Board) -> f64 {
        strent_rings::analytic::str_period_ps(&self.config, board)
            / (2.0 * self.config.length() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy;
    use strent_device::Technology;

    fn board() -> Board {
        Board::new(Technology::cyclone_iii(), 0, 9)
    }

    fn trng() -> MultiphaseTrng {
        // Reference ~ 9.7 ring periods (incommensurate).
        MultiphaseTrng::new(StrConfig::new(16, 8).expect("valid counts"), 19_391.0, 5.0)
            .expect("valid")
    }

    #[test]
    fn produces_deterministic_bits() {
        let trng = trng();
        let a = trng.generate(&board(), 5, 300).expect("simulates");
        let b = trng.generate(&board(), 5, 300).expect("simulates");
        assert_eq!(a, b);
        assert_eq!(a.len(), 300);
        let c = trng.generate(&board(), 6, 300).expect("simulates");
        assert_ne!(a, c);
    }

    #[test]
    fn multiphase_beats_single_phase_entropy() {
        // The discriminating regime (the follow-up paper's design
        // point): a reference *commensurate* with the ring period, so a
        // single phase is deterministic unless jitter reaches the one
        // nearby boundary — while the L phases put a boundary within
        // jitter reach of every sampling instant. A noisy-corner sigma_g
        // makes the transition observable at test scale.
        // A *fast* reference (4 ring periods per bit — the throughput
        // regime the multi-phase architecture targets).
        let tech = Technology::cyclone_iii()
            .with_sigma_g_ps(40.0)
            .with_sigma_intra(0.0)
            .with_sigma_inter(0.0);
        let board = Board::new(tech, 0, 9);
        let config = StrConfig::new(16, 8).expect("valid counts");
        let period = strent_rings::analytic::str_period_ps(&config, &board);
        let trng = MultiphaseTrng::new(config, 4.0 * period, 0.0).expect("valid");
        let multi = trng.generate(&board, 3, 1200).expect("simulates");
        let single = trng
            .generate_single_phase(&board, 3, 1200)
            .expect("simulates");
        let h_multi = entropy::markov_entropy(&multi).expect("enough");
        let h_single = entropy::markov_entropy(&single).expect("enough");
        assert!(
            h_multi > h_single + 0.15,
            "multi {h_multi} vs single {h_single}"
        );
        assert!(h_multi > 0.65, "multi-phase entropy too low: {h_multi}");
    }

    #[test]
    fn phase_resolution_follows_the_ring_geometry() {
        let trng = trng();
        let res = trng.phase_resolution_ps(&board());
        let period = strent_rings::analytic::str_period_ps(trng.config(), &board());
        assert!((res - period / 32.0).abs() < 1e-9);
        assert_eq!(trng.reference_period_ps(), 19_391.0);
    }

    #[test]
    fn parameter_validation() {
        let config = StrConfig::new(8, 4).expect("valid counts");
        assert!(MultiphaseTrng::new(config.clone(), 0.0, 0.0).is_err());
        assert!(MultiphaseTrng::new(config, 100.0, -1.0).is_err());
    }
}
