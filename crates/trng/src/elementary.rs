//! The elementary ring-oscillator TRNG (refs \[1\], \[2\] of the paper).
//!
//! A jittery ring output is sampled by a slow reference clock; the
//! entropy per bit is governed by the jitter accumulated over one
//! reference period relative to the ring period.
//!
//! Two execution paths are provided:
//!
//! * [`ElementaryTrng::generate_simulated`] — bit-exact: builds the ring
//!   in the event-driven simulator and samples its trace. Expensive but
//!   fully physical; used for validation and attack demonstrations.
//! * [`ElementaryTrng::calibrated_phase_model`] — runs a *short*
//!   event-driven simulation to measure the ring's period and
//!   accumulated jitter, then returns a [`PhaseModel`] reproducing those
//!   statistics for megabit-scale studies.

use strent_device::Board;
use strent_rings::measure::{run_iro, run_str, RingRun};
use strent_rings::{analytic, IroConfig, StrConfig};
use strent_sim::{RngTree, Simulator, Time};

use strent_analysis::jitter;

use crate::bits::BitString;
use crate::error::TrngError;
use crate::phase::PhaseModel;
use crate::sampler::Sampler;

/// Which oscillator feeds the sampler.
#[derive(Debug, Clone, PartialEq)]
pub enum EntropySource {
    /// An inverter ring oscillator.
    Iro(IroConfig),
    /// A self-timed ring.
    Str(StrConfig),
}

impl EntropySource {
    /// The analytic period prediction for this source on `board`, ps.
    #[must_use]
    pub fn predicted_period_ps(&self, board: &Board) -> f64 {
        match self {
            EntropySource::Iro(c) => analytic::iro_period_ps(c, board),
            EntropySource::Str(c) => analytic::str_period_ps(c, board),
        }
    }

    /// Runs the source for `periods` steady-state periods.
    ///
    /// # Errors
    ///
    /// Propagates ring simulation errors.
    pub fn run(&self, board: &Board, seed: u64, periods: usize) -> Result<RingRun, TrngError> {
        Ok(match self {
            EntropySource::Iro(c) => run_iro(c, board, seed, periods)?,
            EntropySource::Str(c) => run_str(c, board, seed, periods)?,
        })
    }
}

/// An elementary TRNG: `source` sampled every `reference_period_ps`.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementaryTrng {
    source: EntropySource,
    reference_period_ps: f64,
    meta_window_ps: f64,
}

impl ElementaryTrng {
    /// Creates the generator.
    ///
    /// # Errors
    ///
    /// Returns [`TrngError::InvalidParameter`] if the reference period is
    /// not positive or the metastability window is negative.
    pub fn new(
        source: EntropySource,
        reference_period_ps: f64,
        meta_window_ps: f64,
    ) -> Result<Self, TrngError> {
        // Sampler::new performs the validation.
        let _ = Sampler::new(reference_period_ps, meta_window_ps)?;
        Ok(ElementaryTrng {
            source,
            reference_period_ps,
            meta_window_ps,
        })
    }

    /// The entropy source.
    #[must_use]
    pub fn source(&self) -> &EntropySource {
        &self.source
    }

    /// The reference sampling period, ps.
    #[must_use]
    pub fn reference_period_ps(&self) -> f64 {
        self.reference_period_ps
    }

    /// Generates `count` bits by full event-driven simulation.
    ///
    /// The ring is simulated for the whole sampling window, then the
    /// recorded trace is sampled. A warm-up of 64 ring periods is
    /// discarded before the first sample.
    ///
    /// # Errors
    ///
    /// Propagates ring simulation errors.
    pub fn generate_simulated(
        &self,
        board: &Board,
        seed: u64,
        count: usize,
    ) -> Result<BitString, TrngError> {
        let ring_period = self.source.predicted_period_ps(board);
        let warmup_ps = 64.0 * ring_period;
        let horizon = warmup_ps + self.reference_period_ps * (count + 2) as f64;
        let mut sim = Simulator::new(seed);
        let output = match &self.source {
            EntropySource::Iro(c) => strent_rings::iro::build(c, board, &mut sim)?.output(),
            EntropySource::Str(c) => strent_rings::str_ring::build(c, board, &mut sim)?.output(),
        };
        sim.watch(output)?;
        sim.run_until(Time::from_ps(horizon))?;
        let trace = sim.trace(output).expect("watched");
        let sampler = Sampler::new(self.reference_period_ps, self.meta_window_ps)?;
        let mut rng = RngTree::new(seed ^ 0x5a5a).stream(1);
        sampler.sample_trace(trace, Time::from_ps(warmup_ps), count, &mut rng)
    }

    /// Measures the source and returns a [`PhaseModel`] with the same
    /// period, per-sample accumulated jitter and duty cycle.
    ///
    /// `calibration_periods` ring periods are simulated to estimate the
    /// statistics (2000 or more recommended).
    ///
    /// # Errors
    ///
    /// Propagates ring simulation and statistics errors.
    pub fn calibrated_phase_model(
        &self,
        board: &Board,
        seed: u64,
        calibration_periods: usize,
    ) -> Result<PhaseModel, TrngError> {
        let run = self.source.run(board, seed, calibration_periods)?;
        let mean_period = 1e6 / run.frequency_mhz;
        // Periods per reference interval (need not be integral).
        let n_ratio = self.reference_period_ps / mean_period;
        // Accumulated jitter: measure at a block size we can afford and
        // extrapolate by the white-noise sqrt law.
        let m_meas = ((calibration_periods / 8).max(2)).min(n_ratio.ceil() as usize);
        let sigma_m = jitter::accumulated_jitter(&run.periods_ps, m_meas)?;
        let sigma_acc = sigma_m * (n_ratio / m_meas as f64).sqrt();
        PhaseModel::new(mean_period, sigma_acc, seed ^ 0x9e37)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strent_device::Technology;

    fn board() -> Board {
        Board::new(Technology::cyclone_iii(), 0, 3)
    }

    #[test]
    fn simulated_bits_are_produced_and_deterministic() {
        let source = EntropySource::Str(StrConfig::new(8, 4).expect("valid"));
        // Sample every ~7.3 ring periods.
        let trng = ElementaryTrng::new(source, 5_000.0, 10.0).expect("valid");
        let bits = trng
            .generate_simulated(&board(), 5, 400)
            .expect("simulates");
        assert_eq!(bits.len(), 400);
        // Both symbols occur (the sampling is incommensurate).
        assert!(bits.count_ones() > 0 && bits.count_zeros() > 0);
        let again = trng
            .generate_simulated(&board(), 5, 400)
            .expect("simulates");
        assert_eq!(bits, again);
    }

    #[test]
    fn iro_source_works_too() {
        let source = EntropySource::Iro(IroConfig::new(5).expect("valid"));
        let trng = ElementaryTrng::new(source, 9_000.0, 10.0).expect("valid");
        let bits = trng
            .generate_simulated(&board(), 1, 200)
            .expect("simulates");
        assert_eq!(bits.len(), 200);
    }

    #[test]
    fn phase_model_calibration_matches_source() {
        let source = EntropySource::Str(StrConfig::new(16, 8).expect("valid"));
        let trng = ElementaryTrng::new(source.clone(), 50_000.0, 0.0).expect("valid");
        let model = trng
            .calibrated_phase_model(&board(), 2, 2000)
            .expect("calibrates");
        let predicted = source.predicted_period_ps(&board());
        assert!(
            (model.period_ps() / predicted - 1.0).abs() < 0.05,
            "period {} vs {predicted}",
            model.period_ps()
        );
        // Accumulated jitter grows with the reference period.
        let slow = ElementaryTrng::new(source, 200_000.0, 0.0).expect("valid");
        let slow_model = slow
            .calibrated_phase_model(&board(), 2, 2000)
            .expect("calibrates");
        assert!(slow_model.sigma_acc_ps() > model.sigma_acc_ps());
    }

    #[test]
    fn parameter_validation() {
        let source = EntropySource::Str(StrConfig::new(8, 4).expect("valid"));
        assert!(ElementaryTrng::new(source.clone(), 0.0, 0.0).is_err());
        assert!(ElementaryTrng::new(source, 100.0, -1.0).is_err());
    }
}
