//! The coherent-sampling TRNG (ref \[7\] of the paper).
//!
//! Two free-running oscillators with *deliberately close* frequencies:
//! the first samples the second, producing a low-frequency beat pattern
//! whose edges carry the accumulated jitter. The architecture only works
//! if the frequency ratio stays inside a narrow band across devices —
//! precisely the extra-device stability that Table II shows STRs provide
//! (`sigma_rel` of 0.15% at 96 stages vs ~0.8% for comparable IROs).
//!
//! The model: sampling instant `k` observes the phase
//! `phi_k = k * T1/T2 (mod 1)` of the sampled ring, plus accumulated
//! Gaussian jitter. The beat period is `T2 / |T1 - T2|` samples.

use strent_sim::{RngTree, SimRng};

use crate::bits::BitString;
use crate::error::TrngError;

/// A coherent-sampling generator built from two measured ring periods.
///
/// # Examples
///
/// ```
/// use strent_trng::coherent::CoherentSampler;
///
/// // Two rings 0.5% apart in period; 2 ps of jitter per sample.
/// let mut gen = CoherentSampler::new(3333.0, 3350.0, 2.0, 9)?;
/// assert!((gen.beat_samples() - 3350.0 / 17.0).abs() < 1.0);
/// let bits = gen.generate(1000);
/// assert_eq!(bits.len(), 1000);
/// # Ok::<(), strent_trng::TrngError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CoherentSampler {
    sampling_period_ps: f64,
    sampled_period_ps: f64,
    sigma_per_sample_ps: f64,
    phase: f64,
    rng: SimRng,
}

impl CoherentSampler {
    /// Creates a generator: a ring of period `sampling_period_ps` clocks
    /// a flip-flop whose data input is a ring of period
    /// `sampled_period_ps`; each sample adds `sigma_per_sample_ps` of
    /// Gaussian jitter to the relative phase.
    ///
    /// # Errors
    ///
    /// Returns [`TrngError::InvalidParameter`] if either period is not
    /// positive, the periods are identical (no beat), or the jitter is
    /// negative.
    pub fn new(
        sampling_period_ps: f64,
        sampled_period_ps: f64,
        sigma_per_sample_ps: f64,
        seed: u64,
    ) -> Result<Self, TrngError> {
        if !(sampling_period_ps.is_finite()
            && sampling_period_ps > 0.0
            && sampled_period_ps.is_finite()
            && sampled_period_ps > 0.0)
        {
            return Err(TrngError::InvalidParameter {
                name: "periods",
                constraint: "finite and positive",
            });
        }
        if sampling_period_ps == sampled_period_ps {
            return Err(TrngError::InvalidParameter {
                name: "periods",
                constraint: "distinct (a beat frequency must exist)",
            });
        }
        if !(sigma_per_sample_ps.is_finite() && sigma_per_sample_ps >= 0.0) {
            return Err(TrngError::InvalidParameter {
                name: "sigma_per_sample_ps",
                constraint: "finite and non-negative",
            });
        }
        Ok(CoherentSampler {
            sampling_period_ps,
            sampled_period_ps,
            sigma_per_sample_ps,
            phase: 0.25,
            rng: RngTree::new(seed).stream(0xC0_4E),
        })
    }

    /// The beat length in samples: `T2 / |T1 - T2|`.
    #[must_use]
    pub fn beat_samples(&self) -> f64 {
        self.sampled_period_ps / (self.sampling_period_ps - self.sampled_period_ps).abs()
    }

    /// Generates the next raw bit (the sampled ring's level at the
    /// sampling edge).
    pub fn next_bit(&mut self) -> u8 {
        let step = self.sampling_period_ps / self.sampled_period_ps;
        let noise = self
            .rng
            .normal(0.0, self.sigma_per_sample_ps / self.sampled_period_ps);
        self.phase = (self.phase + step + noise).rem_euclid(1.0);
        u8::from(self.phase < 0.5)
    }

    /// Generates `count` raw bits.
    pub fn generate(&mut self, count: usize) -> BitString {
        (0..count).map(|_| self.next_bit()).collect()
    }

    /// Generates `count` *beat-edge* bits: each output bit is the parity
    /// of the raw sample count within one beat half-cycle — ref \[7\]'s
    /// counter-based extraction, which concentrates the edge jitter.
    pub fn generate_counter_bits(&mut self, count: usize) -> BitString {
        let mut bits = BitString::with_capacity(count);
        let mut prev = self.next_bit();
        let mut counter: u64 = 0;
        while bits.len() < count {
            let b = self.next_bit();
            counter += 1;
            if b != prev {
                bits.push((counter & 1) as u8);
                counter = 0;
                prev = b;
            }
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beat_structure_is_visible_without_jitter() {
        let mut gen = CoherentSampler::new(1000.0, 1010.0, 0.0, 1).expect("valid");
        let bits = gen.generate(2020);
        // Beat length = 1010/10 = 101 samples; runs of ~50 identical
        // bits alternate.
        let b = bits.as_slice();
        let flips = b.windows(2).filter(|w| w[0] != w[1]).count();
        // 2020 samples / ~50.5 per half-beat ~ 40 flips.
        assert!((30..55).contains(&flips), "flips {flips}");
    }

    #[test]
    fn counter_bits_are_balanced_with_jitter() {
        let mut gen = CoherentSampler::new(1000.0, 1010.0, 3.0, 5).expect("valid");
        let bits = gen.generate_counter_bits(4000);
        assert_eq!(bits.len(), 4000);
        let ones = bits.count_ones() as f64 / 4000.0;
        assert!((ones - 0.5).abs() < 0.05, "bias {ones}");
    }

    #[test]
    fn counter_bits_are_degenerate_without_jitter() {
        // Noise-free beat: the counter parity is (nearly) periodic, so
        // the stream is strongly structured — entropy comes from jitter.
        let mut gen = CoherentSampler::new(1000.0, 1010.0, 0.0, 5).expect("valid");
        let bits = gen.generate_counter_bits(512);
        let ones = bits.count_ones();
        assert!(
            ones <= 16 || ones >= 496 || {
                // or strictly alternating-ish structure
                let b = bits.as_slice();
                let flips = b.windows(2).filter(|w| w[0] != w[1]).count();
                !(120..392).contains(&flips)
            },
            "noise-free counter bits should be structured"
        );
    }

    #[test]
    fn frequency_drift_changes_beat_length() {
        // This is why sigma_rel matters (Table II): a 1% period shift on
        // one device radically changes the beat, breaking calibration.
        let nominal = CoherentSampler::new(1000.0, 1010.0, 0.0, 1).expect("valid");
        let shifted = CoherentSampler::new(1000.0, 1020.2, 0.0, 1).expect("valid");
        let ratio = shifted.beat_samples() / nominal.beat_samples();
        assert!(ratio < 0.52, "1% drift halves the beat: ratio {ratio}");
    }

    #[test]
    fn parameter_validation() {
        assert!(CoherentSampler::new(0.0, 1.0, 0.0, 1).is_err());
        assert!(CoherentSampler::new(1.0, 1.0, 0.0, 1).is_err());
        assert!(CoherentSampler::new(1.0, 2.0, -1.0, 1).is_err());
    }
}
