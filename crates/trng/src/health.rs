//! Continuous (online) health tests, SP 800-90B style.
//!
//! A deployed TRNG must detect entropy-source failure *while running* —
//! the attack scenarios of the paper's ref \[1\] (shifting the operating
//! point until the source degenerates) are exactly what these catch.
//! The two NIST-mandated tests are implemented:
//!
//! * **Repetition Count Test (RCT)** — fires when the same value repeats
//!   implausibly often (a stuck source);
//! * **Adaptive Proportion Test (APT)** — fires when one value dominates
//!   a window (a heavily biased source).
//!
//! Cutoffs follow SP 800-90B §4.4 with the binary-source window of 1024
//! samples: `C_RCT = 1 + ceil(20.99 / H)` and the APT cutoff is the
//! binomial tail bound at `2^-20` false-positive probability for the
//! claimed per-bit min-entropy `H`.

use serde::{Deserialize, Serialize};

use crate::bits::BitString;
use crate::error::TrngError;

/// Verdict of feeding one sample into a health test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthEvent {
    /// Sample accepted, no alarm.
    Ok,
    /// The test's cutoff was exceeded: the source must be disabled.
    Alarm,
}

/// Repetition Count Test: counts consecutive identical samples.
///
/// # Examples
///
/// ```
/// use strent_trng::health::{HealthEvent, RepetitionCountTest};
///
/// let mut rct = RepetitionCountTest::for_min_entropy(1.0)?;
/// for _ in 0..10 {
///     assert_eq!(rct.feed(1), HealthEvent::Ok);
/// }
/// // A long stuck run eventually alarms.
/// let stuck = (0..40).map(|_| rct.feed(1)).filter(|&e| e == HealthEvent::Alarm).count();
/// assert!(stuck >= 1);
/// # Ok::<(), strent_trng::TrngError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepetitionCountTest {
    cutoff: u32,
    last: Option<u8>,
    run: u32,
    alarms: u64,
}

impl RepetitionCountTest {
    /// Builds the test for a claimed per-bit min-entropy `h` (bits),
    /// with the SP 800-90B cutoff `1 + ceil(20.99 / h)`.
    ///
    /// # Errors
    ///
    /// Returns [`TrngError::InvalidParameter`] unless `0 < h <= 1`.
    pub fn for_min_entropy(h: f64) -> Result<Self, TrngError> {
        if !(h.is_finite() && h > 0.0 && h <= 1.0) {
            return Err(TrngError::InvalidParameter {
                name: "h",
                constraint: "claimed min-entropy in (0, 1]",
            });
        }
        Ok(RepetitionCountTest {
            cutoff: 1 + (20.99 / h).ceil() as u32,
            last: None,
            run: 0,
            alarms: 0,
        })
    }

    /// The alarm cutoff (run length that triggers).
    #[must_use]
    pub fn cutoff(&self) -> u32 {
        self.cutoff
    }

    /// Number of alarms so far.
    #[must_use]
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// Feeds one sample (any non-zero value counts as 1).
    pub fn feed(&mut self, bit: u8) -> HealthEvent {
        let bit = u8::from(bit != 0);
        if self.last == Some(bit) {
            self.run += 1;
        } else {
            self.last = Some(bit);
            self.run = 1;
        }
        if self.run >= self.cutoff {
            self.alarms += 1;
            // Restart the run so a persistent fault keeps alarming.
            self.run = 0;
            self.last = None;
            HealthEvent::Alarm
        } else {
            HealthEvent::Ok
        }
    }
}

/// Adaptive Proportion Test: counts occurrences of the first sample of
/// each 1024-sample window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveProportionTest {
    cutoff: u32,
    window: u32,
    reference: Option<u8>,
    seen: u32,
    matches: u32,
    alarms: u64,
}

/// The SP 800-90B binary window size.
pub const APT_WINDOW: u32 = 1024;

impl AdaptiveProportionTest {
    /// Builds the test for a claimed per-bit min-entropy `h`, using the
    /// binomial tail cutoff at a `2^-20` false-positive rate:
    /// the smallest `c` with `P[Binomial(1024, 2^-h) >= c] < 2^-20`.
    ///
    /// # Errors
    ///
    /// Returns [`TrngError::InvalidParameter`] unless `0 < h <= 1`.
    pub fn for_min_entropy(h: f64) -> Result<Self, TrngError> {
        if !(h.is_finite() && h > 0.0 && h <= 1.0) {
            return Err(TrngError::InvalidParameter {
                name: "h",
                constraint: "claimed min-entropy in (0, 1]",
            });
        }
        let p = 2f64.powf(-h);
        // Normal approximation with continuity margin is accurate here
        // (n = 1024): c = n p + z sqrt(n p (1-p)) with z for 2^-20.
        let n = f64::from(APT_WINDOW);
        let z = 5.73; // Phi(5.73) ~ 1 - 2^-20.3
        let cutoff = (n * p + z * (n * p * (1.0 - p)).sqrt()).ceil() as u32;
        Ok(AdaptiveProportionTest {
            cutoff: cutoff.min(APT_WINDOW),
            window: APT_WINDOW,
            reference: None,
            seen: 0,
            matches: 0,
            alarms: 0,
        })
    }

    /// The alarm cutoff (matches within a window that trigger).
    #[must_use]
    pub fn cutoff(&self) -> u32 {
        self.cutoff
    }

    /// Number of alarms so far.
    #[must_use]
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// Feeds one sample.
    pub fn feed(&mut self, bit: u8) -> HealthEvent {
        let bit = u8::from(bit != 0);
        match self.reference {
            None => {
                self.reference = Some(bit);
                self.seen = 0;
                self.matches = 0;
                HealthEvent::Ok
            }
            Some(r) => {
                self.seen += 1;
                if bit == r {
                    self.matches += 1;
                }
                let alarm = self.matches >= self.cutoff;
                if alarm {
                    self.alarms += 1;
                }
                if alarm || self.seen >= self.window - 1 {
                    self.reference = None;
                }
                if alarm {
                    HealthEvent::Alarm
                } else {
                    HealthEvent::Ok
                }
            }
        }
    }
}

/// Both SP 800-90B continuous tests behind one feed point — the unit a
/// serving layer attaches to each entropy source.
///
/// # Alarm-counter semantics across re-arm
///
/// [`reset`](HealthMonitor::reset) clears the *windowed* test state
/// (the RCT run, the APT window) so a source re-admitted after
/// quarantine is judged only on post-readmission bits. The **lifetime
/// alarm counters are monotone**: they survive every reset and count
/// alarms over the monitor's whole life. This is what makes a
/// `bytes-per-alarm` figure well-defined for a long-running service —
/// `delivered_bytes / monitor.alarms()` never goes backwards because a
/// quarantine cycle re-armed the windows.
///
/// # Examples
///
/// ```
/// use strent_trng::health::{HealthEvent, HealthMonitor};
///
/// let mut mon = HealthMonitor::new(1.0)?;
/// let stuck: strent_trng::BitString = std::iter::repeat_n(1u8, 64).collect();
/// assert!(mon.scan_chunk(&stuck) >= 1);
/// mon.reset(); // quarantine over: windows re-armed...
/// assert_eq!(mon.feed(1), HealthEvent::Ok);
/// assert!(mon.alarms() >= 1); // ...but the lifetime count survives.
/// # Ok::<(), strent_trng::TrngError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthMonitor {
    claimed_min_entropy: f64,
    rct: RepetitionCountTest,
    apt: AdaptiveProportionTest,
}

impl HealthMonitor {
    /// Builds both tests for a claimed per-bit min-entropy `h`.
    ///
    /// # Errors
    ///
    /// Returns [`TrngError::InvalidParameter`] unless `0 < h <= 1`.
    pub fn new(claimed_min_entropy: f64) -> Result<Self, TrngError> {
        Ok(HealthMonitor {
            claimed_min_entropy,
            rct: RepetitionCountTest::for_min_entropy(claimed_min_entropy)?,
            apt: AdaptiveProportionTest::for_min_entropy(claimed_min_entropy)?,
        })
    }

    /// The entropy claim the cutoffs were derived from.
    #[must_use]
    pub fn claimed_min_entropy(&self) -> f64 {
        self.claimed_min_entropy
    }

    /// Feeds one sample through both tests; [`HealthEvent::Alarm`] if
    /// either fires.
    pub fn feed(&mut self, bit: u8) -> HealthEvent {
        let rct = self.rct.feed(bit);
        let apt = self.apt.feed(bit);
        if rct == HealthEvent::Alarm || apt == HealthEvent::Alarm {
            HealthEvent::Alarm
        } else {
            HealthEvent::Ok
        }
    }

    /// Feeds a whole chunk and returns how many samples alarmed (either
    /// test). A gating consumer treats any non-zero return as "discard
    /// this chunk and quarantine the source".
    pub fn scan_chunk(&mut self, bits: &BitString) -> u64 {
        bits.iter()
            .filter(|&b| self.feed(b) == HealthEvent::Alarm)
            .count() as u64
    }

    /// Re-arms the windowed state after a quarantine: the RCT run and
    /// the APT window restart empty, so stale pre-quarantine samples
    /// cannot trip an alarm on the first post-readmission bits. The
    /// lifetime alarm counters are **not** cleared (see the type docs).
    pub fn reset(&mut self) {
        self.rct.last = None;
        self.rct.run = 0;
        self.apt.reference = None;
        self.apt.seen = 0;
        self.apt.matches = 0;
    }

    /// Lifetime alarm total across both tests — monotone over resets.
    #[must_use]
    pub fn alarms(&self) -> u64 {
        self.rct.alarms() + self.apt.alarms()
    }

    /// Lifetime RCT alarms (monotone over resets).
    #[must_use]
    pub fn rct_alarms(&self) -> u64 {
        self.rct.alarms()
    }

    /// Lifetime APT alarms (monotone over resets).
    #[must_use]
    pub fn apt_alarms(&self) -> u64 {
        self.apt.alarms()
    }
}

/// Where the online tests first fired relative to a fault onset —
/// the detection-latency view the degradation experiments assert on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlarmLatency {
    /// Samples past `onset` until the first RCT alarm; `None` if the
    /// RCT never fired at or after the onset.
    pub rct_latency: Option<usize>,
    /// Samples past `onset` until the first APT alarm; `None` if the
    /// APT never fired at or after the onset.
    pub apt_latency: Option<usize>,
    /// RCT alarms strictly before the onset (false positives).
    pub rct_before_onset: u64,
    /// APT alarms strictly before the onset (false positives).
    pub apt_before_onset: u64,
}

/// Feeds `bits` through both online tests and reports when each first
/// alarmed relative to the fault onset at sample index `onset`.
///
/// Latency is `alarm_index - onset` for the first alarm at or after
/// the onset, so a healthy-until-`onset` stream that trips the RCT on
/// the very next sample reports latency 0. Alarms before the onset are
/// counted separately — a sound monitor expects zero there.
///
/// # Errors
///
/// Returns [`TrngError::InvalidParameter`] for an invalid entropy claim.
pub fn alarm_latency(
    bits: &BitString,
    claimed_min_entropy: f64,
    onset: usize,
) -> Result<AlarmLatency, TrngError> {
    let mut rct = RepetitionCountTest::for_min_entropy(claimed_min_entropy)?;
    let mut apt = AdaptiveProportionTest::for_min_entropy(claimed_min_entropy)?;
    let mut latency = AlarmLatency {
        rct_latency: None,
        apt_latency: None,
        rct_before_onset: 0,
        apt_before_onset: 0,
    };
    for (i, b) in bits.iter().enumerate() {
        if rct.feed(b) == HealthEvent::Alarm {
            if i < onset {
                latency.rct_before_onset += 1;
            } else if latency.rct_latency.is_none() {
                latency.rct_latency = Some(i - onset);
            }
        }
        if apt.feed(b) == HealthEvent::Alarm {
            if i < onset {
                latency.apt_before_onset += 1;
            } else if latency.apt_latency.is_none() {
                latency.apt_latency = Some(i - onset);
            }
        }
    }
    Ok(latency)
}

/// Runs both health tests over a complete bit string, returning
/// `(rct alarms, apt alarms)`.
///
/// # Errors
///
/// Returns [`TrngError::InvalidParameter`] for an invalid entropy claim.
pub fn scan(bits: &BitString, claimed_min_entropy: f64) -> Result<(u64, u64), TrngError> {
    let mut rct = RepetitionCountTest::for_min_entropy(claimed_min_entropy)?;
    let mut apt = AdaptiveProportionTest::for_min_entropy(claimed_min_entropy)?;
    for b in bits.iter() {
        let _ = rct.feed(b);
        let _ = apt.feed(b);
    }
    Ok((rct.alarms(), apt.alarms()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use strent_sim::RngTree;

    fn random_bits(n: usize, p: f64, seed: u64) -> BitString {
        let mut rng = RngTree::new(seed).stream(0);
        (0..n).map(|_| u8::from(rng.bernoulli(p))).collect()
    }

    #[test]
    fn cutoffs_match_sp800_90b() {
        // H = 1: RCT cutoff 1 + ceil(20.99) = 22.
        let rct = RepetitionCountTest::for_min_entropy(1.0).expect("valid");
        assert_eq!(rct.cutoff(), 22);
        // H = 0.5: 1 + ceil(41.98) = 43.
        let rct = RepetitionCountTest::for_min_entropy(0.5).expect("valid");
        assert_eq!(rct.cutoff(), 43);
        // APT at H = 1: around 600 for the 1024 window (NIST gives 624
        // for the table variant; the normal approximation lands close).
        let apt = AdaptiveProportionTest::for_min_entropy(1.0).expect("valid");
        assert!((590..640).contains(&apt.cutoff()), "APT cutoff {}", apt.cutoff());
    }

    #[test]
    fn healthy_source_never_alarms() {
        let bits = random_bits(200_000, 0.5, 3);
        let (rct, apt) = scan(&bits, 1.0).expect("valid");
        assert_eq!(rct, 0, "RCT false positives");
        assert_eq!(apt, 0, "APT false positives");
    }

    #[test]
    fn stuck_source_trips_rct_immediately() {
        let mut bits = random_bits(5_000, 0.5, 4);
        bits.extend(std::iter::repeat_n(1u8, 100));
        let (rct, _) = scan(&bits, 1.0).expect("valid");
        assert!(rct >= 1, "stuck run must alarm");
    }

    #[test]
    fn biased_source_trips_apt() {
        // 75% ones: far above the H=1 APT cutoff fraction (~0.6).
        let bits = random_bits(50_000, 0.75, 5);
        let (_, apt) = scan(&bits, 1.0).expect("valid");
        assert!(apt >= 10, "APT alarms: {apt}");
        // The same stream under an honest H = 0.3 claim is acceptable.
        let (_, apt_low_claim) = scan(&bits, 0.3).expect("valid");
        assert_eq!(apt_low_claim, 0);
    }

    #[test]
    fn persistent_fault_keeps_alarming() {
        let mut rct = RepetitionCountTest::for_min_entropy(1.0).expect("valid");
        let alarms = (0..1000)
            .map(|_| rct.feed(0))
            .filter(|&e| e == HealthEvent::Alarm)
            .count();
        assert!(alarms >= 40, "continuous alarms: {alarms}");
        assert_eq!(rct.alarms(), alarms as u64);
    }

    #[test]
    fn alarm_latency_separates_onset_sides() {
        // Healthy prefix, then stuck: RCT fires within its cutoff of
        // the onset and nothing fires before it.
        let onset = 4_096;
        let mut bits = random_bits(onset, 0.5, 6);
        bits.extend(std::iter::repeat_n(1u8, 200));
        let lat = alarm_latency(&bits, 1.0, onset).expect("valid");
        assert_eq!(lat.rct_before_onset, 0);
        assert_eq!(lat.apt_before_onset, 0);
        let cutoff = RepetitionCountTest::for_min_entropy(1.0)
            .expect("valid")
            .cutoff() as usize;
        let rct = lat.rct_latency.expect("stuck tail alarms");
        assert!(rct < cutoff, "latency {rct} under cutoff {cutoff}");
    }

    #[test]
    fn alarm_latency_reports_pre_onset_alarms() {
        // Stuck from the start with the "onset" placed late: every
        // alarm lands in the before-onset bucket.
        let bits: BitString = std::iter::repeat_n(0u8, 100).collect();
        let lat = alarm_latency(&bits, 1.0, 1_000).expect("valid");
        assert!(lat.rct_before_onset >= 1);
        assert_eq!(lat.rct_latency, None);
    }

    #[test]
    fn invalid_claims_rejected() {
        assert!(RepetitionCountTest::for_min_entropy(0.0).is_err());
        assert!(RepetitionCountTest::for_min_entropy(1.5).is_err());
        assert!(AdaptiveProportionTest::for_min_entropy(-0.1).is_err());
        assert!(HealthMonitor::new(0.0).is_err());
    }

    #[test]
    fn monitor_matches_standalone_scan() {
        let mut bits = random_bits(30_000, 0.5, 7);
        bits.extend(std::iter::repeat_n(1u8, 80));
        let (rct, apt) = scan(&bits, 1.0).expect("valid");
        let mut mon = HealthMonitor::new(1.0).expect("valid");
        let alarmed = mon.scan_chunk(&bits);
        assert_eq!(mon.rct_alarms(), rct);
        assert_eq!(mon.apt_alarms(), apt);
        // scan_chunk counts alarming *samples*; one sample can trip
        // both tests, so it is bounded by the per-test totals.
        assert!(alarmed >= rct.max(apt) && alarmed <= rct + apt);
        assert!((mon.claimed_min_entropy() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn reset_rearms_windows_but_keeps_lifetime_counters() {
        let mut mon = HealthMonitor::new(1.0).expect("valid");
        // One bit short of the RCT cutoff: the run is primed.
        let cutoff = RepetitionCountTest::for_min_entropy(1.0)
            .expect("valid")
            .cutoff();
        for _ in 0..cutoff - 1 {
            assert_eq!(mon.feed(0), HealthEvent::Ok);
        }
        // Without a reset the next identical bit would alarm; after one
        // it takes a full fresh run again.
        mon.reset();
        assert_eq!(mon.feed(0), HealthEvent::Ok);
        assert_eq!(mon.alarms(), 0);

        // Now trip an alarm, reset, and check the counter survives.
        let stuck: BitString = std::iter::repeat_n(1u8, 2 * cutoff as usize).collect();
        assert!(mon.scan_chunk(&stuck) >= 1);
        let before = mon.alarms();
        assert!(before >= 1);
        mon.reset();
        assert_eq!(mon.alarms(), before, "counters are monotone over reset");
        // Healthy traffic after the reset never alarms.
        assert_eq!(mon.scan_chunk(&random_bits(20_000, 0.5, 8)), 0);
        assert_eq!(mon.alarms(), before);
    }

    #[test]
    fn reset_prevents_stale_window_alarms() {
        // Fill most of an APT window with ones, reset, then feed a
        // biased-but-short burst: without the re-arm the stale matches
        // would push past the cutoff.
        let mut mon = HealthMonitor::new(1.0).expect("valid");
        let heavy: BitString = std::iter::repeat_n([1u8, 1, 0], 200).flatten().collect();
        mon.scan_chunk(&heavy);
        mon.reset();
        let light: BitString = std::iter::repeat_n([1u8, 0], 250).flatten().collect();
        assert_eq!(mon.scan_chunk(&light), 0, "no alarms from stale state");
    }
}
