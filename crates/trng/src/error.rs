//! Error type for the TRNG crate.

use std::error::Error;
use std::fmt;

use strent_analysis::AnalysisError;
use strent_rings::RingError;

/// Errors reported by TRNG construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TrngError {
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable constraint description.
        constraint: &'static str,
    },
    /// A bit sequence was too short for the requested operation.
    NotEnoughBits {
        /// Minimum number of bits required.
        needed: usize,
        /// Number actually provided.
        got: usize,
    },
    /// An underlying ring simulation failed.
    Ring(RingError),
    /// An underlying statistical computation failed.
    Analysis(AnalysisError),
}

impl fmt::Display for TrngError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrngError::InvalidParameter { name, constraint } => {
                write!(f, "parameter {name} must satisfy: {constraint}")
            }
            TrngError::NotEnoughBits { needed, got } => {
                write!(f, "needed at least {needed} bits, got {got}")
            }
            TrngError::Ring(e) => write!(f, "ring simulation error: {e}"),
            TrngError::Analysis(e) => write!(f, "analysis error: {e}"),
        }
    }
}

impl Error for TrngError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TrngError::Ring(e) => Some(e),
            TrngError::Analysis(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RingError> for TrngError {
    fn from(e: RingError) -> Self {
        TrngError::Ring(e)
    }
}

impl From<strent_sim::SimError> for TrngError {
    fn from(e: strent_sim::SimError) -> Self {
        TrngError::Ring(RingError::Sim(e))
    }
}

impl From<AnalysisError> for TrngError {
    fn from(e: AnalysisError) -> Self {
        TrngError::Analysis(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = TrngError::NotEnoughBits {
            needed: 100,
            got: 5,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.source().is_none());
        let e = TrngError::from(RingError::InvalidConfig("x".into()));
        assert!(e.source().is_some());
        let e = TrngError::from(AnalysisError::NonFiniteData);
        assert!(e.to_string().contains("analysis"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<TrngError>();
    }
}
