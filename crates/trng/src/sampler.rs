//! Sampling a jittery clock with a reference clock.
//!
//! The elementary TRNG architecture (refs \[1\], \[2\] of the paper): a D
//! flip-flop clocked by a stable reference samples the jittery ring
//! output. When a data transition falls inside the flip-flop's
//! setup/hold window the output is metastable and resolves randomly —
//! modelled here as a fair coin, the conventional simplification.

use strent_rings::RingError;
use strent_sim::{SimRng, Time, Trace};

use crate::bits::BitString;
use crate::error::TrngError;

/// A D flip-flop sampling model.
///
/// # Examples
///
/// ```
/// use strent_trng::sampler::Sampler;
///
/// // 10 MHz reference, 20 ps metastability window.
/// let sampler = Sampler::new(1e5, 20.0)?;
/// assert_eq!(sampler.period_ps(), 1e5);
/// # Ok::<(), strent_trng::TrngError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sampler {
    period_ps: f64,
    meta_window_ps: f64,
}

impl Sampler {
    /// Creates a sampler with the given reference period and
    /// metastability window (both ps).
    ///
    /// # Errors
    ///
    /// Returns [`TrngError::InvalidParameter`] if the period is not
    /// positive or the window is negative.
    pub fn new(period_ps: f64, meta_window_ps: f64) -> Result<Self, TrngError> {
        if !(period_ps.is_finite() && period_ps > 0.0) {
            return Err(TrngError::InvalidParameter {
                name: "period_ps",
                constraint: "finite and positive",
            });
        }
        if !(meta_window_ps.is_finite() && meta_window_ps >= 0.0) {
            return Err(TrngError::InvalidParameter {
                name: "meta_window_ps",
                constraint: "finite and non-negative",
            });
        }
        Ok(Sampler {
            period_ps,
            meta_window_ps,
        })
    }

    /// The reference sampling period, ps.
    #[must_use]
    pub fn period_ps(&self) -> f64 {
        self.period_ps
    }

    /// The metastability window, ps.
    #[must_use]
    pub fn meta_window_ps(&self) -> f64 {
        self.meta_window_ps
    }

    /// Samples a recorded trace starting at `t0`, producing `count` bits.
    ///
    /// The waveform is considered defined only up to its last recorded
    /// transition. When the producer knows the simulation ran further
    /// (a stalled ring is flat, not unknown), use
    /// [`sample_trace_until`](Sampler::sample_trace_until).
    ///
    /// # Errors
    ///
    /// Returns an error (via [`RingError::HorizonExceeded`]) if the trace
    /// ends before the last sample instant.
    pub fn sample_trace(
        &self,
        trace: &Trace,
        t0: Time,
        count: usize,
        rng: &mut SimRng,
    ) -> Result<BitString, TrngError> {
        let trace_end = trace
            .transitions()
            .last()
            .map_or(Time::ZERO, |&(t, _)| t);
        self.sample_trace_until(trace, t0, count, trace_end, rng)
    }

    /// Samples a trace whose waveform is known valid up to
    /// `valid_until` — typically the simulation horizon. Beyond the
    /// last recorded transition the signal holds its final value, so a
    /// stuck ring yields a (correctly alarming) constant bit stream
    /// instead of a horizon error.
    ///
    /// # Errors
    ///
    /// Returns an error (via [`RingError::HorizonExceeded`]) if the
    /// last sample instant lies past both `valid_until` and the final
    /// recorded transition.
    pub fn sample_trace_until(
        &self,
        trace: &Trace,
        t0: Time,
        count: usize,
        valid_until: Time,
        rng: &mut SimRng,
    ) -> Result<BitString, TrngError> {
        let last_needed = t0 + self.period_ps * count as f64;
        let trace_end = trace
            .transitions()
            .last()
            .map_or(Time::ZERO, |&(t, _)| t)
            .max(valid_until);
        if trace_end < last_needed {
            return Err(TrngError::Ring(RingError::HorizonExceeded {
                collected: ((trace_end - t0) / self.period_ps).max(0.0) as usize,
                requested: count,
            }));
        }
        let mut bits = BitString::with_capacity(count);
        for k in 1..=count {
            let t = t0 + self.period_ps * k as f64;
            if self.meta_window_ps > 0.0 && self.near_transition(trace, t) {
                bits.push_bool(rng.bernoulli(0.5));
            } else {
                bits.push(trace.value_at(t).into());
            }
        }
        Ok(bits)
    }

    /// Whether any data transition falls within the metastability window
    /// of the sample instant `t`.
    fn near_transition(&self, trace: &Trace, t: Time) -> bool {
        let half = self.meta_window_ps / 2.0;
        trace
            .transitions()
            .binary_search_by(|&(tt, _)| tt.cmp(&t))
            .map(|_| true)
            .unwrap_or_else(|i| {
                let before = i
                    .checked_sub(1)
                    .and_then(|j| trace.transitions().get(j))
                    .is_some_and(|&(tt, _)| (t - tt).abs() <= half);
                let after = trace
                    .transitions()
                    .get(i)
                    .is_some_and(|&(tt, _)| (tt - t).abs() <= half);
                before || after
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strent_sim::{Bit, RngTree};

    fn square_trace(period: f64, cycles: usize) -> Trace {
        let mut trace = Trace::new(Bit::Low);
        for i in 0..cycles {
            let t0 = i as f64 * period;
            trace.record(Time::from_ps(t0), Bit::High);
            trace.record(Time::from_ps(t0 + period / 2.0), Bit::Low);
        }
        trace
    }

    #[test]
    fn samples_follow_the_waveform() {
        // 100 ps signal sampled every 100 ps at phase 25 ps: always High.
        let trace = square_trace(100.0, 100);
        let sampler = Sampler::new(100.0, 0.0).expect("valid");
        let mut rng = RngTree::new(1).stream(0);
        let bits = sampler
            .sample_trace(&trace, Time::from_ps(-75.0), 50, &mut rng)
            .expect("long enough");
        assert_eq!(bits.len(), 50);
        assert_eq!(bits.count_ones(), 50);
        // Phase 75 ps: always Low.
        let bits = sampler
            .sample_trace(&trace, Time::from_ps(-25.0), 50, &mut rng)
            .expect("long enough");
        assert_eq!(bits.count_ones(), 0);
    }

    #[test]
    fn incommensurate_sampling_mixes_values() {
        let trace = square_trace(100.0, 2000);
        let sampler = Sampler::new(137.3, 0.0).expect("valid");
        let mut rng = RngTree::new(1).stream(0);
        let bits = sampler
            .sample_trace(&trace, Time::ZERO, 1000, &mut rng)
            .expect("long enough");
        let ones = bits.count_ones();
        assert!((350..650).contains(&ones), "ones {ones}");
    }

    #[test]
    fn metastability_randomizes_near_edges() {
        // Sample exactly on the rising edges: with a window, the outcome
        // is a coin flip.
        let trace = square_trace(100.0, 3000);
        let sampler = Sampler::new(100.0, 10.0).expect("valid");
        let mut rng = RngTree::new(2).stream(0);
        let bits = sampler
            .sample_trace(&trace, Time::ZERO, 2000, &mut rng)
            .expect("long enough");
        let ones = bits.count_ones();
        assert!((800..1200).contains(&ones), "ones {ones}");
        // Without a window the same instants read deterministically.
        let sampler = Sampler::new(100.0, 0.0).expect("valid");
        let bits = sampler
            .sample_trace(&trace, Time::ZERO, 2000, &mut rng)
            .expect("long enough");
        assert!(bits.count_ones() == 2000 || bits.count_ones() == 0);
    }

    #[test]
    fn trace_exhaustion_is_an_error() {
        let trace = square_trace(100.0, 10);
        let sampler = Sampler::new(100.0, 0.0).expect("valid");
        let mut rng = RngTree::new(1).stream(0);
        assert!(sampler
            .sample_trace(&trace, Time::ZERO, 100, &mut rng)
            .is_err());
    }

    #[test]
    fn parameter_validation() {
        assert!(Sampler::new(0.0, 0.0).is_err());
        assert!(Sampler::new(100.0, -1.0).is_err());
        assert!(Sampler::new(f64::NAN, 0.0).is_err());
    }

    #[test]
    fn flat_tail_samples_hold_the_final_value() {
        // Ten cycles end Low at 950 ps; the simulation "ran" to 5 ns.
        // sample_trace refuses past the final edge, sample_trace_until
        // reads the held Low level.
        let trace = square_trace(100.0, 10);
        let sampler = Sampler::new(400.0, 10.0).expect("valid");
        let mut rng = RngTree::new(5).stream(0);
        assert!(sampler
            .sample_trace(&trace, Time::ZERO, 10, &mut rng)
            .is_err());
        let bits = sampler
            .sample_trace_until(&trace, Time::ZERO, 10, Time::from_ps(5_000.0), &mut rng)
            .expect("valid to the simulation horizon");
        assert_eq!(bits.len(), 10);
        // Samples at 1.2 ns and beyond all read the held Low.
        assert!(bits.as_slice()[2..].iter().all(|&b| b == 0), "{bits:?}");
        // A horizon short of the request still errors with progress.
        assert!(sampler
            .sample_trace_until(&trace, Time::ZERO, 20, Time::from_ps(5_000.0), &mut rng)
            .is_err());
    }

    #[test]
    fn empty_trace_window_is_horizon_exceeded_with_zero_collected() {
        // A trace with no transitions at all ends at t = 0: any request
        // fails cleanly instead of inventing flat samples.
        let trace = Trace::new(Bit::Low);
        let sampler = Sampler::new(100.0, 10.0).expect("valid");
        let mut rng = RngTree::new(1).stream(0);
        let err = sampler
            .sample_trace(&trace, Time::ZERO, 5, &mut rng)
            .expect_err("empty trace cannot satisfy any sample");
        match err {
            TrngError::Ring(RingError::HorizonExceeded {
                collected,
                requested,
            }) => {
                assert_eq!(collected, 0);
                assert_eq!(requested, 5);
            }
            other => panic!("unexpected error {other}"),
        }
        // Zero requested bits from an empty trace is trivially fine.
        let bits = sampler
            .sample_trace(&trace, Time::ZERO, 0, &mut rng)
            .expect("nothing to sample");
        assert!(bits.is_empty());
    }

    #[test]
    fn sample_period_longer_than_the_trace_reports_partial_progress() {
        // Ten 100 ps cycles span 1 ns; a 400 ps sampler asking for 10
        // bits needs 4 ns. The error reports how many bits the trace
        // could have provided.
        let trace = square_trace(100.0, 10);
        let sampler = Sampler::new(400.0, 0.0).expect("valid");
        let mut rng = RngTree::new(3).stream(0);
        let err = sampler
            .sample_trace(&trace, Time::ZERO, 10, &mut rng)
            .expect_err("trace far too short");
        match err {
            TrngError::Ring(RingError::HorizonExceeded {
                collected,
                requested,
            }) => {
                assert!(collected < 10, "partial progress {collected}");
                assert_eq!(requested, 10);
            }
            other => panic!("unexpected error {other}"),
        }
        // One period beyond the whole trace: even a single bit fails.
        let sampler = Sampler::new(2_000.0, 0.0).expect("valid");
        assert!(sampler
            .sample_trace(&trace, Time::ZERO, 1, &mut rng)
            .is_err());
    }

    #[test]
    fn metastability_window_straddling_the_final_edge_still_flips() {
        // The last transition of the trace is the falling edge at
        // 950 ps. Sample exactly there with a window: the sampler must
        // treat it as metastable even though no transition follows.
        let trace = square_trace(100.0, 10);
        let last = trace.transitions().last().map(|&(t, _)| t).expect("edges");
        assert_eq!(last, Time::from_ps(950.0));
        let sampler = Sampler::new(950.0, 30.0).expect("valid");
        let flips: usize = (0..200)
            .filter(|&seed| {
                let mut rng = RngTree::new(seed).stream(0);
                let bits = sampler
                    .sample_trace(&trace, Time::ZERO, 1, &mut rng)
                    .expect("exactly reaches the final edge");
                bits.as_slice()[0] == 1
            })
            .count();
        assert!(
            (40..160).contains(&flips),
            "final-edge sample is a coin flip, got {flips}/200 ones"
        );
        // Just outside the half-window the read is deterministic: the
        // instant 930 ps sits 20 ps before the final edge (half-window
        // is 15 ps), inside the High segment that began at 900 ps.
        let sampler = Sampler::new(930.0, 30.0).expect("valid");
        let mut rng = RngTree::new(9).stream(0);
        let bits = sampler
            .sample_trace(&trace, Time::ZERO, 1, &mut rng)
            .expect("within the trace");
        assert_eq!(bits.as_slice(), &[1], "outside the window reads High");
    }
}
