//! Sampling a jittery clock with a reference clock.
//!
//! The elementary TRNG architecture (refs \[1\], \[2\] of the paper): a D
//! flip-flop clocked by a stable reference samples the jittery ring
//! output. When a data transition falls inside the flip-flop's
//! setup/hold window the output is metastable and resolves randomly —
//! modelled here as a fair coin, the conventional simplification.

use strent_rings::RingError;
use strent_sim::{SimRng, Time, Trace};

use crate::bits::BitString;
use crate::error::TrngError;

/// A D flip-flop sampling model.
///
/// # Examples
///
/// ```
/// use strent_trng::sampler::Sampler;
///
/// // 10 MHz reference, 20 ps metastability window.
/// let sampler = Sampler::new(1e5, 20.0)?;
/// assert_eq!(sampler.period_ps(), 1e5);
/// # Ok::<(), strent_trng::TrngError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sampler {
    period_ps: f64,
    meta_window_ps: f64,
}

impl Sampler {
    /// Creates a sampler with the given reference period and
    /// metastability window (both ps).
    ///
    /// # Errors
    ///
    /// Returns [`TrngError::InvalidParameter`] if the period is not
    /// positive or the window is negative.
    pub fn new(period_ps: f64, meta_window_ps: f64) -> Result<Self, TrngError> {
        if !(period_ps.is_finite() && period_ps > 0.0) {
            return Err(TrngError::InvalidParameter {
                name: "period_ps",
                constraint: "finite and positive",
            });
        }
        if !(meta_window_ps.is_finite() && meta_window_ps >= 0.0) {
            return Err(TrngError::InvalidParameter {
                name: "meta_window_ps",
                constraint: "finite and non-negative",
            });
        }
        Ok(Sampler {
            period_ps,
            meta_window_ps,
        })
    }

    /// The reference sampling period, ps.
    #[must_use]
    pub fn period_ps(&self) -> f64 {
        self.period_ps
    }

    /// The metastability window, ps.
    #[must_use]
    pub fn meta_window_ps(&self) -> f64 {
        self.meta_window_ps
    }

    /// Samples a recorded trace starting at `t0`, producing `count` bits.
    ///
    /// # Errors
    ///
    /// Returns an error (via [`RingError::HorizonExceeded`]) if the trace
    /// ends before the last sample instant.
    pub fn sample_trace(
        &self,
        trace: &Trace,
        t0: Time,
        count: usize,
        rng: &mut SimRng,
    ) -> Result<BitString, TrngError> {
        let last_needed = t0 + self.period_ps * count as f64;
        let trace_end = trace
            .transitions()
            .last()
            .map_or(Time::ZERO, |&(t, _)| t);
        if trace_end < last_needed {
            return Err(TrngError::Ring(RingError::HorizonExceeded {
                collected: ((trace_end - t0) / self.period_ps).max(0.0) as usize,
                requested: count,
            }));
        }
        let mut bits = BitString::with_capacity(count);
        for k in 1..=count {
            let t = t0 + self.period_ps * k as f64;
            if self.meta_window_ps > 0.0 && self.near_transition(trace, t) {
                bits.push_bool(rng.bernoulli(0.5));
            } else {
                bits.push(trace.value_at(t).into());
            }
        }
        Ok(bits)
    }

    /// Whether any data transition falls within the metastability window
    /// of the sample instant `t`.
    fn near_transition(&self, trace: &Trace, t: Time) -> bool {
        let half = self.meta_window_ps / 2.0;
        trace
            .transitions()
            .binary_search_by(|&(tt, _)| tt.cmp(&t))
            .map(|_| true)
            .unwrap_or_else(|i| {
                let before = i
                    .checked_sub(1)
                    .and_then(|j| trace.transitions().get(j))
                    .is_some_and(|&(tt, _)| (t - tt).abs() <= half);
                let after = trace
                    .transitions()
                    .get(i)
                    .is_some_and(|&(tt, _)| (tt - t).abs() <= half);
                before || after
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strent_sim::{Bit, RngTree};

    fn square_trace(period: f64, cycles: usize) -> Trace {
        let mut trace = Trace::new(Bit::Low);
        for i in 0..cycles {
            let t0 = i as f64 * period;
            trace.record(Time::from_ps(t0), Bit::High);
            trace.record(Time::from_ps(t0 + period / 2.0), Bit::Low);
        }
        trace
    }

    #[test]
    fn samples_follow_the_waveform() {
        // 100 ps signal sampled every 100 ps at phase 25 ps: always High.
        let trace = square_trace(100.0, 100);
        let sampler = Sampler::new(100.0, 0.0).expect("valid");
        let mut rng = RngTree::new(1).stream(0);
        let bits = sampler
            .sample_trace(&trace, Time::from_ps(-75.0), 50, &mut rng)
            .expect("long enough");
        assert_eq!(bits.len(), 50);
        assert_eq!(bits.count_ones(), 50);
        // Phase 75 ps: always Low.
        let bits = sampler
            .sample_trace(&trace, Time::from_ps(-25.0), 50, &mut rng)
            .expect("long enough");
        assert_eq!(bits.count_ones(), 0);
    }

    #[test]
    fn incommensurate_sampling_mixes_values() {
        let trace = square_trace(100.0, 2000);
        let sampler = Sampler::new(137.3, 0.0).expect("valid");
        let mut rng = RngTree::new(1).stream(0);
        let bits = sampler
            .sample_trace(&trace, Time::ZERO, 1000, &mut rng)
            .expect("long enough");
        let ones = bits.count_ones();
        assert!((350..650).contains(&ones), "ones {ones}");
    }

    #[test]
    fn metastability_randomizes_near_edges() {
        // Sample exactly on the rising edges: with a window, the outcome
        // is a coin flip.
        let trace = square_trace(100.0, 3000);
        let sampler = Sampler::new(100.0, 10.0).expect("valid");
        let mut rng = RngTree::new(2).stream(0);
        let bits = sampler
            .sample_trace(&trace, Time::ZERO, 2000, &mut rng)
            .expect("long enough");
        let ones = bits.count_ones();
        assert!((800..1200).contains(&ones), "ones {ones}");
        // Without a window the same instants read deterministically.
        let sampler = Sampler::new(100.0, 0.0).expect("valid");
        let bits = sampler
            .sample_trace(&trace, Time::ZERO, 2000, &mut rng)
            .expect("long enough");
        assert!(bits.count_ones() == 2000 || bits.count_ones() == 0);
    }

    #[test]
    fn trace_exhaustion_is_an_error() {
        let trace = square_trace(100.0, 10);
        let sampler = Sampler::new(100.0, 0.0).expect("valid");
        let mut rng = RngTree::new(1).stream(0);
        assert!(sampler
            .sample_trace(&trace, Time::ZERO, 100, &mut rng)
            .is_err());
    }

    #[test]
    fn parameter_validation() {
        assert!(Sampler::new(0.0, 0.0).is_err());
        assert!(Sampler::new(100.0, -1.0).is_err());
        assert!(Sampler::new(f64::NAN, 0.0).is_err());
    }
}
