//! Restart experiments: the standard technique for separating *true*
//! randomness from pseudo-randomness in oscillator-based TRNGs (used
//! heavily in the authors' follow-up STR-TRNG work).
//!
//! The oscillator is restarted many times from an **identical** initial
//! condition; only the thermal noise differs between restarts. Two
//! observables:
//!
//! * the dispersion of the `k`-th output edge time across restarts grows
//!   as `sqrt(k)` (phase diffusion from a known phase origin);
//! * the output level sampled at a fixed delay after the restart is
//!   deterministic for small delays and converges to a fair coin once
//!   the accumulated jitter spans the oscillation period.
//!
//! On silicon this requires power-cycling and a storage scope; in the
//! simulator a restart is simply a fresh run with the same initial state
//! and a different noise stream.

use strent_device::Board;
use strent_rings::{iro, str_ring};
use strent_sim::{RngTree, Simulator, Time};

use crate::bits::BitString;
use crate::elementary::EntropySource;
use crate::error::TrngError;

/// The observables of one restart campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct RestartOutcome {
    /// The sampling delays after restart, ps.
    pub delays_ps: Vec<f64>,
    /// For each delay, the sampled output level across restarts
    /// (`per_delay_bits[d].len() == restarts`).
    pub per_delay_bits: Vec<BitString>,
    /// The probed rising-edge indices `k`.
    pub edge_indices: Vec<usize>,
    /// For each probed `k`, the standard deviation across restarts of
    /// the `k`-th rising-edge time, ps.
    pub edge_sigma_ps: Vec<f64>,
}

impl RestartOutcome {
    /// The across-restart bit entropy at each delay (Shannon, from the
    /// one-frequency), in delay order.
    #[must_use]
    pub fn entropy_per_delay(&self) -> Vec<f64> {
        self.per_delay_bits
            .iter()
            .map(|bits| {
                let p = bits.count_ones() as f64 / bits.len().max(1) as f64;
                crate::entropy::binary_entropy(p)
            })
            .collect()
    }
}

/// Runs `restarts` independent restarts of `source` on `board`.
///
/// Each restart rebuilds the ring in a fresh simulator with the same
/// initial token/event configuration and a restart-specific noise
/// stream, runs long enough to cover the largest delay and edge index,
/// then records the requested observables.
///
/// # Errors
///
/// Returns [`TrngError::InvalidParameter`] for an empty campaign
/// (`restarts == 0`, no delays, or no edge indices), or propagates
/// simulation errors; [`TrngError::NotEnoughBits`] if a restart
/// produced fewer edges than the largest requested index.
pub fn run(
    source: &EntropySource,
    board: &Board,
    seed: u64,
    restarts: usize,
    delays_ps: &[f64],
    edge_indices: &[usize],
) -> Result<RestartOutcome, TrngError> {
    if restarts == 0 || delays_ps.is_empty() || edge_indices.is_empty() {
        return Err(TrngError::InvalidParameter {
            name: "campaign",
            constraint: "needs restarts >= 1, delays and edge indices",
        });
    }
    if delays_ps.iter().any(|d| !(d.is_finite() && *d > 0.0)) {
        return Err(TrngError::InvalidParameter {
            name: "delays_ps",
            constraint: "finite and positive",
        });
    }
    let max_delay = delays_ps.iter().copied().fold(0.0, f64::max);
    let max_edge = *edge_indices.iter().max().expect("non-empty");
    let period = source.predicted_period_ps(board);
    let horizon = max_delay.max((max_edge as f64 + 4.0) * period) * 1.5 + 10.0 * period;

    let seeds = RngTree::new(seed);
    let mut per_delay_bits = vec![BitString::with_capacity(restarts); delays_ps.len()];
    let mut edge_times: Vec<Vec<f64>> = vec![Vec::with_capacity(restarts); edge_indices.len()];

    for m in 0..restarts {
        let run_seed = seeds.stream(m as u64).next_u64();
        let mut sim = Simulator::new(run_seed);
        let output = match source {
            EntropySource::Iro(c) => iro::build(c, board, &mut sim)?.output(),
            EntropySource::Str(c) => str_ring::build(c, board, &mut sim)?.output(),
        };
        sim.watch(output)?;
        sim.run_until(Time::from_ps(horizon))?;
        let trace = sim.trace(output).expect("watched");
        for (i, &delay) in delays_ps.iter().enumerate() {
            per_delay_bits[i].push(trace.value_at(Time::from_ps(delay)).into());
        }
        let edges = trace.rising_edges();
        for (i, &k) in edge_indices.iter().enumerate() {
            let Some(&t) = edges.get(k) else {
                return Err(TrngError::NotEnoughBits {
                    needed: k + 1,
                    got: edges.len(),
                });
            };
            edge_times[i].push(t.as_ps());
        }
    }

    let edge_sigma_ps = edge_times
        .iter()
        .map(|times| {
            let n = times.len() as f64;
            let mean = times.iter().sum::<f64>() / n;
            (times.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / (n - 1.0).max(1.0))
                .sqrt()
        })
        .collect();

    Ok(RestartOutcome {
        delays_ps: delays_ps.to_vec(),
        per_delay_bits,
        edge_indices: edge_indices.to_vec(),
        edge_sigma_ps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use strent_device::Technology;
    use strent_rings::{IroConfig, StrConfig};

    #[test]
    fn edge_dispersion_grows_as_sqrt_k() {
        let board = Board::new(
            Technology::cyclone_iii()
                .with_sigma_intra(0.0)
                .with_sigma_inter(0.0),
            0,
            1,
        );
        let source = EntropySource::Iro(IroConfig::new(5).expect("valid length"));
        let outcome = run(
            &source,
            &board,
            7,
            48,
            &[1_000.0],
            &[4, 16, 64],
        )
        .expect("simulates");
        // sigma(k) ~ sqrt(2k) sigma_g from a common origin: ratios of
        // sqrt(16/4) = 2 and sqrt(64/16) = 2 within sampling error.
        let s = &outcome.edge_sigma_ps;
        assert!(s[0] > 0.0);
        assert!((s[1] / s[0] - 2.0).abs() < 0.7, "ratio {}", s[1] / s[0]);
        assert!((s[2] / s[1] - 2.0).abs() < 0.7, "ratio {}", s[2] / s[1]);
    }

    #[test]
    fn early_samples_are_deterministic_late_samples_are_not() {
        // Boosted noise so the entropy transition happens within an
        // affordable horizon ("noisy corner" technology).
        let board = Board::new(
            Technology::cyclone_iii()
                .with_sigma_g_ps(60.0)
                .with_sigma_intra(0.0)
                .with_sigma_inter(0.0),
            0,
            1,
        );
        let source = EntropySource::Str(StrConfig::new(8, 4).expect("valid counts"));
        let period = source.predicted_period_ps(&board);
        let outcome = run(
            &source,
            &board,
            11,
            64,
            &[2.0 * period, 120.0 * period],
            &[1],
        )
        .expect("simulates");
        let entropy = outcome.entropy_per_delay();
        assert!(
            entropy[0] < 0.6,
            "shortly after restart the output is mostly deterministic: H = {}",
            entropy[0]
        );
        assert!(
            entropy[1] > 0.8,
            "after many periods the phase has diffused: H = {}",
            entropy[1]
        );
    }

    #[test]
    fn restarts_share_the_initial_condition_but_not_the_noise() {
        let board = Board::new(Technology::cyclone_iii(), 0, 1);
        let source = EntropySource::Str(StrConfig::new(8, 4).expect("valid counts"));
        let outcome = run(&source, &board, 3, 16, &[50_000.0], &[40]).expect("simulates");
        // The 40th edge times differ across restarts (noise)...
        assert!(outcome.edge_sigma_ps[0] > 0.0);
        // ...but only by picoseconds (same starting configuration).
        let period = source.predicted_period_ps(&board);
        assert!(outcome.edge_sigma_ps[0] < period / 10.0);
    }

    #[test]
    fn invalid_campaigns_are_rejected() {
        let board = Board::new(Technology::cyclone_iii(), 0, 1);
        let source = EntropySource::Iro(IroConfig::new(3).expect("valid length"));
        assert!(run(&source, &board, 1, 0, &[100.0], &[1]).is_err());
        assert!(run(&source, &board, 1, 4, &[], &[1]).is_err());
        assert!(run(&source, &board, 1, 4, &[100.0], &[]).is_err());
        assert!(run(&source, &board, 1, 4, &[-5.0], &[1]).is_err());
    }
}
