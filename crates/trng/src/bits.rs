//! A simple bit-string type.

use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// A sequence of bits, stored one per byte for cheap random access, with
/// MSB-first packing for key material export.
///
/// # Examples
///
/// ```
/// use strent_trng::BitString;
///
/// let bits: BitString = [1u8, 0, 1, 1, 0, 0, 0, 1].iter().copied().collect();
/// assert_eq!(bits.len(), 8);
/// assert_eq!(bits.count_ones(), 4);
/// assert_eq!(bits.pack()[0], 0b1011_0001);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitString {
    bits: Vec<u8>,
}

impl BitString {
    /// Creates an empty bit string.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty bit string with reserved capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BitString {
            bits: Vec::with_capacity(capacity),
        }
    }

    /// Appends one bit (any non-zero value counts as 1).
    pub fn push(&mut self, bit: u8) {
        self.bits.push(u8::from(bit != 0));
    }

    /// Appends a boolean bit.
    pub fn push_bool(&mut self, bit: bool) {
        self.bits.push(u8::from(bit));
    }

    /// Number of bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the string holds no bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The bits as a slice of `0`/`1` bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.bits
    }

    /// Number of one bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.bits.iter().filter(|&&b| b == 1).count()
    }

    /// Number of zero bits.
    #[must_use]
    pub fn count_zeros(&self) -> usize {
        self.len() - self.count_ones()
    }

    /// Iterates over the bits as `0`/`1` bytes.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        self.bits.iter().copied()
    }

    /// Packs the bits MSB-first into bytes (the final partial byte, if
    /// any, is left-aligned and zero-padded).
    #[must_use]
    pub fn pack(&self) -> Bytes {
        let mut out = BytesMut::with_capacity(self.bits.len().div_ceil(8));
        for chunk in self.bits.chunks(8) {
            let mut byte = 0u8;
            for (i, &b) in chunk.iter().enumerate() {
                byte |= b << (7 - i);
            }
            out.put_u8(byte);
        }
        out.freeze()
    }

    /// Returns the sub-string `[start, start+len)` as a new bit string.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice(&self, start: usize, len: usize) -> BitString {
        BitString {
            bits: self.bits[start..start + len].to_vec(),
        }
    }

    /// Unpacks `bit_len` bits from MSB-first packed bytes — the inverse
    /// of [`BitString::pack`].
    ///
    /// # Panics
    ///
    /// Panics if `bytes` holds fewer than `bit_len` bits.
    #[must_use]
    pub fn from_packed(bytes: &[u8], bit_len: usize) -> BitString {
        assert!(
            bit_len <= bytes.len() * 8,
            "need {bit_len} bits, got {}",
            bytes.len() * 8
        );
        (0..bit_len)
            .map(|i| (bytes[i / 8] >> (7 - (i % 8))) & 1)
            .collect()
    }
}

impl FromIterator<u8> for BitString {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        BitString {
            bits: iter.into_iter().map(|b| u8::from(b != 0)).collect(),
        }
    }
}

impl Extend<u8> for BitString {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        self.bits.extend(iter.into_iter().map(|b| u8::from(b != 0)));
    }
}

impl From<Vec<u8>> for BitString {
    /// Interprets each byte as one bit (non-zero = 1).
    fn from(bits: Vec<u8>) -> Self {
        bits.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_count() {
        let mut b = BitString::new();
        b.push(1);
        b.push(0);
        b.push(7); // normalized to 1
        b.push_bool(true);
        assert_eq!(b.len(), 4);
        assert_eq!(b.count_ones(), 3);
        assert_eq!(b.count_zeros(), 1);
        assert_eq!(b.as_slice(), &[1, 0, 1, 1]);
    }

    #[test]
    fn packing_is_msb_first() {
        let b: BitString = [1u8, 1, 1, 1, 0, 0, 0, 0, 1].iter().copied().collect();
        let packed = b.pack();
        assert_eq!(packed.len(), 2);
        assert_eq!(packed[0], 0b1111_0000);
        assert_eq!(packed[1], 0b1000_0000);
    }

    #[test]
    fn slice_and_iterate() {
        let b: BitString = [0u8, 1, 0, 1, 1].iter().copied().collect();
        let s = b.slice(1, 3);
        assert_eq!(s.as_slice(), &[1, 0, 1]);
        assert_eq!(b.iter().sum::<u8>(), 3);
    }

    #[test]
    fn pack_unpack_round_trip() {
        let original: BitString = [1u8, 0, 0, 1, 1, 1, 0, 1, 0, 1, 1].iter().copied().collect();
        let packed = original.pack();
        let unpacked = BitString::from_packed(&packed, original.len());
        assert_eq!(unpacked, original);
        // Exact byte boundary too.
        let eight: BitString = (0..8).map(|i| (i % 2) as u8).collect();
        assert_eq!(BitString::from_packed(&eight.pack(), 8), eight);
    }

    #[test]
    #[should_panic(expected = "need")]
    fn from_packed_rejects_short_input() {
        let _ = BitString::from_packed(&[0xFF], 9);
    }

    #[test]
    fn conversions() {
        let b = BitString::from(vec![0u8, 2, 0, 255]);
        assert_eq!(b.as_slice(), &[0, 1, 0, 1]);
        let mut b = BitString::with_capacity(10);
        b.extend([1u8, 0]);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert!(BitString::new().is_empty());
    }
}
