//! Post-processing (conditioning) of raw TRNG output.
//!
//! Raw ring-sampling bits are biased and correlated when the accumulated
//! jitter per sample is small; TRNG designs therefore condition the raw
//! stream. Three classic schemes are provided, each in two forms:
//!
//! * the original **batch** functions ([`von_neumann`],
//!   [`xor_decimate`], [`parity_filter`]) — one whole [`BitString`] in,
//!   one out;
//! * a **streaming** engine ([`StreamConditioner`]) that accepts chunks
//!   and carries partial state (a held von Neumann half-pair, a partial
//!   XOR block) across feeds, so a long-running serving layer never
//!   re-buffers its history per request.
//!
//! The batch functions are thin wrappers over a fresh streaming engine
//! fed exactly once, so the two paths cannot drift apart — the
//! equivalence is also pinned by tests that slice an input at random
//! points and compare against the batch result.

use crate::bits::BitString;

/// Which conditioning scheme a [`StreamConditioner`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConditionerKind {
    /// Pass-through: raw bits are delivered unchanged.
    Raw,
    /// Von Neumann unbiasing (variable rate, removes all bias from
    /// independent bits).
    VonNeumann,
    /// XOR decimation by the given factor (fixed rate, exponential bias
    /// reduction).
    XorDecimate(u32),
}

impl ConditionerKind {
    /// A short stable label (used in reports and JSON).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            ConditionerKind::Raw => "raw".to_owned(),
            ConditionerKind::VonNeumann => "von_neumann".to_owned(),
            ConditionerKind::XorDecimate(f) => format!("xor{f}"),
        }
    }
}

/// Incremental conditioner: feed raw chunks, collect conditioned bits,
/// with partial state carried across chunk boundaries.
///
/// # Examples
///
/// ```
/// use strent_trng::postprocess::{ConditionerKind, StreamConditioner};
/// use strent_trng::BitString;
///
/// let mut stream = StreamConditioner::new(ConditionerKind::VonNeumann);
/// // `[0]` then `[1, ...]`: the pair straddles the chunk boundary.
/// let first: BitString = [0u8].iter().copied().collect();
/// let second: BitString = [1u8, 1, 0].iter().copied().collect();
/// let mut out = stream.feed(&first);
/// out.extend(stream.feed(&second).iter());
/// assert_eq!(out.as_slice(), &[0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamConditioner {
    kind: ConditionerKind,
    /// Von Neumann: the first half of a pending pair.
    held: Option<u8>,
    /// XOR decimation: parity and fill of the current block.
    acc: u8,
    filled: u32,
    /// Lifetime raw bits fed in.
    raw_fed: u64,
    /// Lifetime conditioned bits emitted.
    emitted: u64,
}

impl StreamConditioner {
    /// Creates a conditioner with empty carried state.
    ///
    /// # Panics
    ///
    /// Panics if the kind is `XorDecimate(0)` (matching the batch
    /// function's contract).
    #[must_use]
    pub fn new(kind: ConditionerKind) -> Self {
        if let ConditionerKind::XorDecimate(factor) = kind {
            assert!(factor > 0, "decimation factor must be positive");
        }
        StreamConditioner {
            kind,
            held: None,
            acc: 0,
            filled: 0,
            raw_fed: 0,
            emitted: 0,
        }
    }

    /// The scheme this conditioner applies.
    #[must_use]
    pub fn kind(&self) -> ConditionerKind {
        self.kind
    }

    /// Feeds one chunk and returns the conditioned bits it completed.
    /// Bits belonging to an unfinished pair/block stay carried for the
    /// next feed.
    pub fn feed(&mut self, chunk: &BitString) -> BitString {
        let mut out = BitString::with_capacity(match self.kind {
            ConditionerKind::Raw => chunk.len(),
            ConditionerKind::VonNeumann => chunk.len() / 4 + 1,
            ConditionerKind::XorDecimate(f) => chunk.len() / f as usize + 1,
        });
        match self.kind {
            ConditionerKind::Raw => out.extend(chunk.iter()),
            ConditionerKind::VonNeumann => {
                for b in chunk.iter() {
                    match self.held.take() {
                        None => self.held = Some(b),
                        Some(first) => match (first, b) {
                            (0, 1) => out.push(0),
                            (1, 0) => out.push(1),
                            _ => {}
                        },
                    }
                }
            }
            ConditionerKind::XorDecimate(factor) => {
                for b in chunk.iter() {
                    self.acc ^= b;
                    self.filled += 1;
                    if self.filled == factor {
                        out.push(self.acc);
                        self.acc = 0;
                        self.filled = 0;
                    }
                }
            }
        }
        self.raw_fed += chunk.len() as u64;
        self.emitted += out.len() as u64;
        out
    }

    /// Lifetime count of raw bits fed in.
    #[must_use]
    pub fn raw_bits_fed(&self) -> u64 {
        self.raw_fed
    }

    /// Lifetime count of conditioned bits emitted.
    #[must_use]
    pub fn emitted_bits(&self) -> u64 {
        self.emitted
    }

    /// The *effective sample count* of the emitted stream: how many raw
    /// samples are folded into the bits delivered so far. An entropy
    /// estimator sizing its small-sample haircut must use this, not the
    /// emitted length — an `xor4` stream of `n` bits summarizes `4n`
    /// raw samples. Raw pass-through reports the emitted count, XOR
    /// decimation `factor` raw bits per output, von Neumann the two
    /// raw bits of each *emitting* pair (dropped pairs carry no output
    /// to attribute them to).
    #[must_use]
    pub fn effective_samples(&self) -> u64 {
        match self.kind {
            ConditionerKind::Raw => self.emitted,
            ConditionerKind::VonNeumann => self.emitted * 2,
            ConditionerKind::XorDecimate(f) => self.emitted * u64::from(f),
        }
    }

    /// Raw bits currently carried (an unfinished pair or block) — at
    /// most `factor - 1` for XOR decimation, at most 1 for von Neumann.
    #[must_use]
    pub fn pending_bits(&self) -> u32 {
        match self.kind {
            ConditionerKind::Raw => 0,
            ConditionerKind::VonNeumann => u32::from(self.held.is_some()),
            ConditionerKind::XorDecimate(_) => self.filled,
        }
    }

    /// The worst-case ratio of raw bits consumed per conditioned bit
    /// produced — `1` for raw, `2` per *attempted* output for von
    /// Neumann (rate is variable), `factor` for XOR decimation.
    #[must_use]
    pub fn raw_bits_per_output(&self) -> u32 {
        match self.kind {
            ConditionerKind::Raw => 1,
            ConditionerKind::VonNeumann => 2,
            ConditionerKind::XorDecimate(f) => f,
        }
    }
}

/// Von Neumann unbiasing: consume bit pairs, emit `0` for `01`, `1` for
/// `10`, drop `00`/`11`. Removes all bias from independent bits at the
/// cost of a variable (~4x for fair input) rate reduction.
///
/// A thin wrapper over a fresh [`StreamConditioner`] fed once (a
/// trailing unpaired bit stays held and is dropped, exactly the old
/// `chunks_exact(2)` semantics).
///
/// # Examples
///
/// ```
/// use strent_trng::{postprocess, BitString};
///
/// let raw: BitString = [0u8, 1, 1, 0, 1, 1, 0, 0].iter().copied().collect();
/// let out = postprocess::von_neumann(&raw);
/// assert_eq!(out.as_slice(), &[0, 1]);
/// ```
#[must_use]
pub fn von_neumann(bits: &BitString) -> BitString {
    StreamConditioner::new(ConditionerKind::VonNeumann).feed(bits)
}

/// XOR decimation: each output bit is the XOR of `factor` consecutive
/// input bits. Reduces bias exponentially (piling-up lemma) at a fixed
/// `factor`-to-1 rate.
///
/// A thin wrapper over a fresh [`StreamConditioner`] fed once (a
/// trailing partial block stays held and is dropped, exactly the old
/// `chunks_exact(factor)` semantics).
///
/// # Panics
///
/// Panics if `factor == 0`.
#[must_use]
pub fn xor_decimate(bits: &BitString, factor: usize) -> BitString {
    xor_decimate_counted(bits, factor).0
}

/// [`xor_decimate`] plus the effective sample count of the output: the
/// number of raw samples folded into the emitted bits (`factor` per
/// output bit; a trailing partial block is dropped and not counted).
/// Entropy estimators working on decimated streams must size their
/// confidence haircuts with this count, not the decimated length.
///
/// # Panics
///
/// Panics if `factor == 0`.
#[must_use]
pub fn xor_decimate_counted(bits: &BitString, factor: usize) -> (BitString, u64) {
    let factor = u32::try_from(factor).unwrap_or(0);
    let mut stream = StreamConditioner::new(ConditionerKind::XorDecimate(factor));
    let out = stream.feed(bits);
    let effective = stream.effective_samples();
    (out, effective)
}

/// Parity filter: an alias of [`xor_decimate`] kept for the literature
/// name (the paper's ref \[2\] calls the XOR corrector a parity filter).
#[must_use]
pub fn parity_filter(bits: &BitString, block: usize) -> BitString {
    xor_decimate(bits, block)
}

/// The expected output bias of an XOR corrector given the input bias
/// (piling-up lemma): `bias_out = 2^(factor-1) * bias_in^factor`, where
/// bias is `P(1) - 1/2`.
#[must_use]
pub fn xor_bias_bound(input_bias: f64, factor: u32) -> f64 {
    0.5 * (2.0 * input_bias).powi(i32::try_from(factor).unwrap_or(i32::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn biased_bits(n: usize, p_one: f64) -> BitString {
        // Independent pseudo-random bits with bias p_one (independence
        // matters: the piling-up lemma assumes it).
        let mut rng = strent_sim::RngTree::new(0xB1A5).stream(0);
        (0..n).map(|_| u8::from(rng.bernoulli(p_one))).collect()
    }

    #[test]
    fn von_neumann_removes_bias() {
        let raw = biased_bits(100_000, 0.8);
        let out = von_neumann(&raw);
        assert!(out.len() > 10_000, "output rate too low: {}", out.len());
        let ones = out.count_ones() as f64 / out.len() as f64;
        assert!((ones - 0.5).abs() < 0.02, "residual bias {ones}");
    }

    #[test]
    fn von_neumann_rate_for_fair_input() {
        let raw = biased_bits(100_000, 0.5);
        let out = von_neumann(&raw);
        // Expected rate 1/4.
        let rate = out.len() as f64 / raw.len() as f64;
        assert!((rate - 0.25).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn xor_decimation_reduces_bias() {
        let raw = biased_bits(120_000, 0.6);
        let b1 = raw.count_ones() as f64 / raw.len() as f64 - 0.5;
        let out = xor_decimate(&raw, 4);
        assert_eq!(out.len(), 30_000);
        let b4 = out.count_ones() as f64 / out.len() as f64 - 0.5;
        assert!(b4.abs() < b1.abs() / 2.0, "bias {b1} -> {b4}");
    }

    #[test]
    fn piling_up_bound() {
        // bias 0.1, factor 2 -> 2 * 0.1^2 = 0.02.
        assert!((xor_bias_bound(0.1, 2) - 0.02).abs() < 1e-12);
        // factor 1 is the identity.
        assert!((xor_bias_bound(0.1, 1) - 0.1).abs() < 1e-12);
        // Bias shrinks monotonically with the factor.
        assert!(xor_bias_bound(0.2, 8) < xor_bias_bound(0.2, 4));
    }

    #[test]
    fn parity_filter_is_xor_decimation() {
        let raw = biased_bits(1000, 0.7);
        assert_eq!(parity_filter(&raw, 3), xor_decimate(&raw, 3));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_factor_rejected() {
        let _ = xor_decimate(&BitString::new(), 0);
    }

    /// Feeds `raw` to a fresh conditioner in chunks cut at pseudo-random
    /// points and returns the concatenated output.
    fn feed_in_chunks(kind: ConditionerKind, raw: &BitString, split_seed: u64) -> BitString {
        let mut rng = strent_sim::RngTree::new(split_seed).stream(1);
        let mut stream = StreamConditioner::new(kind);
        let mut out = BitString::new();
        let mut start = 0usize;
        while start < raw.len() {
            let len = 1 + (rng.next_u64() as usize) % 97;
            let end = (start + len).min(raw.len());
            out.extend(stream.feed(&raw.slice(start, end - start)).iter());
            start = end;
        }
        out
    }

    #[test]
    fn streaming_equals_batch_for_any_chunking() {
        let raw = biased_bits(20_001, 0.63); // odd length: a bit stays held
        for split_seed in 0..5 {
            let vn = feed_in_chunks(ConditionerKind::VonNeumann, &raw, split_seed);
            assert_eq!(vn, von_neumann(&raw), "VN split seed {split_seed}");
            for factor in [2usize, 3, 4, 7] {
                let xd = feed_in_chunks(
                    ConditionerKind::XorDecimate(factor as u32),
                    &raw,
                    split_seed,
                );
                assert_eq!(
                    xd,
                    xor_decimate(&raw, factor),
                    "XOR factor {factor} split seed {split_seed}"
                );
            }
            let id = feed_in_chunks(ConditionerKind::Raw, &raw, split_seed);
            assert_eq!(id, raw, "raw passthrough split seed {split_seed}");
        }
    }

    #[test]
    fn carried_state_spans_chunk_boundaries() {
        // `01` split across feeds still emits the von Neumann `0`.
        let mut vn = StreamConditioner::new(ConditionerKind::VonNeumann);
        let first: BitString = [0u8].iter().copied().collect();
        let second: BitString = [1u8].iter().copied().collect();
        assert!(vn.feed(&first).is_empty());
        assert_eq!(vn.pending_bits(), 1);
        assert_eq!(vn.feed(&second).as_slice(), &[0]);
        assert_eq!(vn.pending_bits(), 0);

        // A 3-block split 2 + 1 completes on the second feed.
        let mut xd = StreamConditioner::new(ConditionerKind::XorDecimate(3));
        let first: BitString = [1u8, 0].iter().copied().collect();
        let second: BitString = [1u8].iter().copied().collect();
        assert!(xd.feed(&first).is_empty());
        assert_eq!(xd.pending_bits(), 2);
        assert_eq!(xd.feed(&second).as_slice(), &[0]);
        assert_eq!(xd.raw_bits_per_output(), 3);
    }

    #[test]
    fn effective_sample_counts_are_reported() {
        // xor3 over 10 bits: 3 outputs from 9 raw bits, 1 carried.
        let raw = biased_bits(10, 0.5);
        let (out, effective) = xor_decimate_counted(&raw, 3);
        assert_eq!(out.len(), 3);
        assert_eq!(effective, 9);

        let mut xd = StreamConditioner::new(ConditionerKind::XorDecimate(3));
        let _ = xd.feed(&raw);
        assert_eq!(xd.raw_bits_fed(), 10);
        assert_eq!(xd.emitted_bits(), 3);
        assert_eq!(xd.effective_samples(), 9);
        // The carried partial block joins the count once it completes.
        let _ = xd.feed(&biased_bits(2, 0.5));
        assert_eq!(xd.effective_samples(), 12);

        // Raw pass-through: every emitted bit is its own sample.
        let mut id = StreamConditioner::new(ConditionerKind::Raw);
        let _ = id.feed(&raw);
        assert_eq!(id.effective_samples(), 10);

        // Von Neumann: two raw bits per emitting pair.
        let mut vn = StreamConditioner::new(ConditionerKind::VonNeumann);
        let pairs: BitString = [0u8, 1, 1, 1, 1, 0].iter().copied().collect();
        let out = vn.feed(&pairs);
        assert_eq!(out.len(), 2);
        assert_eq!(vn.effective_samples(), 4);
        assert_eq!(vn.raw_bits_fed(), 6);
    }

    #[test]
    fn kind_labels_are_stable() {
        assert_eq!(ConditionerKind::Raw.label(), "raw");
        assert_eq!(ConditionerKind::VonNeumann.label(), "von_neumann");
        assert_eq!(ConditionerKind::XorDecimate(4).label(), "xor4");
    }
}
