//! Post-processing (conditioning) of raw TRNG output.
//!
//! Raw ring-sampling bits are biased and correlated when the accumulated
//! jitter per sample is small; TRNG designs therefore condition the raw
//! stream. Three classic schemes are provided.

use crate::bits::BitString;

/// Von Neumann unbiasing: consume bit pairs, emit `0` for `01`, `1` for
/// `10`, drop `00`/`11`. Removes all bias from independent bits at the
/// cost of a variable (~4x for fair input) rate reduction.
///
/// # Examples
///
/// ```
/// use strent_trng::{postprocess, BitString};
///
/// let raw: BitString = [0u8, 1, 1, 0, 1, 1, 0, 0].iter().copied().collect();
/// let out = postprocess::von_neumann(&raw);
/// assert_eq!(out.as_slice(), &[0, 1]);
/// ```
#[must_use]
pub fn von_neumann(bits: &BitString) -> BitString {
    let mut out = BitString::with_capacity(bits.len() / 4);
    for pair in bits.as_slice().chunks_exact(2) {
        match (pair[0], pair[1]) {
            (0, 1) => out.push(0),
            (1, 0) => out.push(1),
            _ => {}
        }
    }
    out
}

/// XOR decimation: each output bit is the XOR of `factor` consecutive
/// input bits. Reduces bias exponentially (piling-up lemma) at a fixed
/// `factor`-to-1 rate.
///
/// # Panics
///
/// Panics if `factor == 0`.
#[must_use]
pub fn xor_decimate(bits: &BitString, factor: usize) -> BitString {
    assert!(factor > 0, "decimation factor must be positive");
    let mut out = BitString::with_capacity(bits.len() / factor);
    for block in bits.as_slice().chunks_exact(factor) {
        out.push(block.iter().fold(0, |acc, &b| acc ^ b));
    }
    out
}

/// Parity filter: an alias of [`xor_decimate`] kept for the literature
/// name (the paper's ref \[2\] calls the XOR corrector a parity filter).
#[must_use]
pub fn parity_filter(bits: &BitString, block: usize) -> BitString {
    xor_decimate(bits, block)
}

/// The expected output bias of an XOR corrector given the input bias
/// (piling-up lemma): `bias_out = 2^(factor-1) * bias_in^factor`, where
/// bias is `P(1) - 1/2`.
#[must_use]
pub fn xor_bias_bound(input_bias: f64, factor: u32) -> f64 {
    0.5 * (2.0 * input_bias).powi(i32::try_from(factor).unwrap_or(i32::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn biased_bits(n: usize, p_one: f64) -> BitString {
        // Independent pseudo-random bits with bias p_one (independence
        // matters: the piling-up lemma assumes it).
        let mut rng = strent_sim::RngTree::new(0xB1A5).stream(0);
        (0..n).map(|_| u8::from(rng.bernoulli(p_one))).collect()
    }

    #[test]
    fn von_neumann_removes_bias() {
        let raw = biased_bits(100_000, 0.8);
        let out = von_neumann(&raw);
        assert!(out.len() > 10_000, "output rate too low: {}", out.len());
        let ones = out.count_ones() as f64 / out.len() as f64;
        assert!((ones - 0.5).abs() < 0.02, "residual bias {ones}");
    }

    #[test]
    fn von_neumann_rate_for_fair_input() {
        let raw = biased_bits(100_000, 0.5);
        let out = von_neumann(&raw);
        // Expected rate 1/4.
        let rate = out.len() as f64 / raw.len() as f64;
        assert!((rate - 0.25).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn xor_decimation_reduces_bias() {
        let raw = biased_bits(120_000, 0.6);
        let b1 = raw.count_ones() as f64 / raw.len() as f64 - 0.5;
        let out = xor_decimate(&raw, 4);
        assert_eq!(out.len(), 30_000);
        let b4 = out.count_ones() as f64 / out.len() as f64 - 0.5;
        assert!(b4.abs() < b1.abs() / 2.0, "bias {b1} -> {b4}");
    }

    #[test]
    fn piling_up_bound() {
        // bias 0.1, factor 2 -> 2 * 0.1^2 = 0.02.
        assert!((xor_bias_bound(0.1, 2) - 0.02).abs() < 1e-12);
        // factor 1 is the identity.
        assert!((xor_bias_bound(0.1, 1) - 0.1).abs() < 1e-12);
        // Bias shrinks monotonically with the factor.
        assert!(xor_bias_bound(0.2, 8) < xor_bias_bound(0.2, 4));
    }

    #[test]
    fn parity_filter_is_xor_decimation() {
        let raw = biased_bits(1000, 0.7);
        assert_eq!(parity_filter(&raw, 3), xor_decimate(&raw, 3));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_factor_rejected() {
        let _ = xor_decimate(&BitString::new(), 0);
    }
}
