//! Statistical-equivalence harness for the calibrated surrogate tier
//! (`strent_rings::surrogate`): proves the O(1)-per-period analytical
//! generator is exchangeable with the event-driven simulation for the
//! serving presets, within the tolerances documented in
//! `docs/surrogate.md`.
//!
//! Three layers:
//!
//! 1. **Golden moments** (`tests/fixtures/golden_moments.txt`): period
//!    mean/σ, Allan deviation and lag-1 autocorrelation at seed 2012.
//!    The full sim must reproduce them bit-for-bit (regression); the
//!    surrogate must land inside the equivalence bands.
//! 2. **Downstream parity**: SP 800-90B health verdicts, min-entropy /
//!    Markov estimates, and the quick battery agree across backends —
//!    and deliberately corrupted calibration is *detected*.
//! 3. **Properties**: geometry / `sigma_g` / sampler-frequency sweeps
//!    of the σ_period agreement (the Eq. 5 scaling), health-verdict
//!    parity, and a proof that boundary configurations select the
//!    `FullSim` fallback.

use proptest::prelude::*;

use strent_analysis::{allan, jitter};
use strent_rings::measure::{self, WARMUP_PERIODS};
use strent_rings::stream::StreamConfig;
use strent_rings::surrogate::{
    surrogate_eligible, Calibrator, EntropySource, SourceBackend, SurrogateModel,
    SurrogateStream, BOUNDARY_DEVIATION,
};
use strent_rings::{analytic, StrConfig};
use strent_sim::{RngTree, Time};
use strent_trng::phase::PhaseModel;
use strent_trng::sampler::Sampler;
use strent_trng::{battery, entropy, health, BitString};
use strentropy::prelude::*;

/// The paper seed every golden value is pinned to.
const SEED: u64 = 2012;

/// Periods retained per golden run (after the warm-up discard).
const GOLDEN_PERIODS: usize = 3000;

/// Allan cluster size recorded in the fixture.
const ALLAN_M: usize = 8;

/// Sampler period as a multiple of the ring period (incommensurate).
const SAMPLE_FACTOR: f64 = 2.37;

/// RNG key for sampler metastability draws.
const SAMPLER_KEY: u64 = 0xB17;

/// Claimed min-entropy for the SP 800-90B parity checks (the serving
/// default's order of magnitude).
const CLAIMED_H: f64 = 0.4;

fn preset_board(ring: &RingSpec) -> Board {
    SourceSpec::new(*ring, SEED).board(0)
}

/// The event-driven reference period series for a serving preset.
fn full_periods(ring: &RingSpec, n: usize) -> Vec<f64> {
    let board = preset_board(ring);
    let run = match ring.stream_config() {
        StreamConfig::Iro(config) => measure::run_iro(&config, &board, SEED, n),
        StreamConfig::Str(config) => measure::run_str(&config, &board, SEED, n),
    }
    .expect("reference ring oscillates");
    run.periods_ps
}

/// The calibrated surrogate's period series (same warm-up discard).
fn surrogate_periods(ring: &RingSpec, n: usize) -> Vec<f64> {
    let board = preset_board(ring);
    let model = Calibrator::default()
        .fit(&ring.stream_config(), &board, SEED)
        .expect("calibration run oscillates");
    let mut stream = SurrogateStream::new(model, SEED);
    stream.next_periods(WARMUP_PERIODS);
    stream.prune_before(stream.now());
    stream.next_periods(n)
}

/// The four golden statistics of a period series.
fn golden_stats(periods: &[f64]) -> (f64, f64, f64, f64) {
    let n = periods.len() as f64;
    let mean = periods.iter().sum::<f64>() / n;
    let sigma =
        (periods.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / n).sqrt();
    let adev = allan::allan_deviation(periods, ALLAN_M).expect("enough periods");
    let rho1 = jitter::period_autocorrelation(periods, 1).expect("enough periods");
    (mean, sigma, adev, rho1)
}

/// Samples `count` bits from a backend through the serving-style
/// sampler (metastability window disabled so verdicts are pure
/// waveform).
fn sampled_bits(
    config: &StreamConfig,
    board: &Board,
    backend: SourceBackend,
    count: usize,
    factor: f64,
) -> BitString {
    let mut source =
        EntropySource::build(config, board, SEED, None, backend).expect("builds");
    let period = source.expected_period_ps();
    let sample_ps = factor * period;
    let t0 = WARMUP_PERIODS as f64 * period;
    let horizon = t0 + (count as f64 + 2.0) * sample_ps;
    while source.now().as_ps() < horizon {
        let deficit = horizon - source.now().as_ps();
        source.advance_by(deficit + period).expect("advances");
    }
    let sampler = Sampler::new(sample_ps, 0.0).expect("valid sampler");
    let mut rng = RngTree::new(SEED).stream(SAMPLER_KEY);
    sampler
        .sample_trace_until(source.trace(), Time::from_ps(t0), count, source.now(), &mut rng)
        .expect("trace covers the sample span")
}

/// Bits from a hand-built (possibly corrupted) surrogate model.
fn model_bits(model: SurrogateModel, count: usize) -> BitString {
    let mut stream = SurrogateStream::new(model, SEED);
    let sample_ps = SAMPLE_FACTOR * model.period_mean_ps;
    let t0 = WARMUP_PERIODS as f64 * model.period_mean_ps;
    let horizon = t0 + (count as f64 + 2.0) * sample_ps;
    while stream.now().as_ps() < horizon {
        let deficit = horizon - stream.now().as_ps();
        stream.advance_by(deficit + model.period_mean_ps);
    }
    let sampler = Sampler::new(sample_ps, 0.0).expect("valid sampler");
    let mut rng = RngTree::new(SEED).stream(SAMPLER_KEY);
    sampler
        .sample_trace_until(stream.trace(), Time::from_ps(t0), count, stream.now(), &mut rng)
        .expect("trace covers the sample span")
}

/// One parsed fixture row.
struct GoldenRow {
    label: String,
    mean_ps: f64,
    sigma_ps: f64,
    adev_ps: f64,
    rho1: f64,
}

/// Parses `tests/fixtures/golden_moments.txt` (whitespace-separated
/// columns, `#` comments — no JSON parser is vendored).
fn golden_rows() -> Vec<GoldenRow> {
    include_str!("fixtures/golden_moments.txt")
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let mut cols = l.split_whitespace();
            let mut next = || cols.next().expect("five fixture columns").to_owned();
            let label = next();
            let parse = |s: String| s.parse::<f64>().expect("numeric fixture column");
            GoldenRow {
                label,
                mean_ps: parse(next()),
                sigma_ps: parse(next()),
                adev_ps: parse(next()),
                rho1: parse(next()),
            }
        })
        .collect()
}

fn presets() -> [RingSpec; 3] {
    [RingSpec::Str32, RingSpec::Str64, RingSpec::Iro32]
}

/// Regenerates the fixture: `cargo test --test surrogate_equivalence
/// -- --ignored print_golden_moments --nocapture` and paste the rows.
#[test]
#[ignore = "fixture generator, not a check"]
fn print_golden_moments() {
    for ring in presets() {
        let (mean, sigma, adev, rho1) = golden_stats(&full_periods(&ring, GOLDEN_PERIODS));
        println!("{} {mean:.6} {sigma:.6} {adev:.6} {rho1:.6}", ring.label());
    }
}

#[test]
fn full_sim_reproduces_the_golden_moments_exactly() {
    let rows = golden_rows();
    assert_eq!(rows.len(), 3, "one row per serving preset");
    for (ring, row) in presets().iter().zip(&rows) {
        assert_eq!(ring.label(), row.label, "fixture row order");
        let (mean, sigma, adev, rho1) = golden_stats(&full_periods(ring, GOLDEN_PERIODS));
        // The simulation is a pure function of the seed: the fixture is
        // a regression pin, so agreement is to printed precision.
        assert!((mean - row.mean_ps).abs() < 1e-4, "{} mean {mean}", row.label);
        assert!((sigma - row.sigma_ps).abs() < 1e-4, "{} sigma {sigma}", row.label);
        assert!((adev - row.adev_ps).abs() < 1e-4, "{} adev {adev}", row.label);
        assert!((rho1 - row.rho1).abs() < 1e-4, "{} rho1 {rho1}", row.label);
    }
}

#[test]
fn surrogate_lands_inside_the_equivalence_bands() {
    for (ring, row) in presets().iter().zip(&golden_rows()) {
        let (mean, sigma, adev, rho1) =
            golden_stats(&surrogate_periods(ring, GOLDEN_PERIODS));
        // Bands documented in docs/surrogate.md §equivalence.
        assert!(
            (mean - row.mean_ps).abs() / row.mean_ps < 0.01,
            "{}: surrogate mean {mean} vs golden {}",
            row.label,
            row.mean_ps
        );
        let sigma_ratio = sigma / row.sigma_ps;
        assert!(
            (0.6..=1.6).contains(&sigma_ratio),
            "{}: sigma ratio {sigma_ratio}",
            row.label
        );
        let adev_ratio = adev / row.adev_ps;
        assert!(
            (0.4..=2.5).contains(&adev_ratio),
            "{}: allan ratio {adev_ratio}",
            row.label
        );
        assert!(
            (rho1 - row.rho1).abs() < 0.2,
            "{}: rho1 {rho1} vs golden {}",
            row.label,
            row.rho1
        );
    }
}

#[test]
fn health_verdicts_agree_across_backends() {
    for ring in presets() {
        let board = preset_board(&ring);
        let config = ring.stream_config();
        let full = sampled_bits(&config, &board, SourceBackend::FullSim, 8192, SAMPLE_FACTOR);
        let surr =
            sampled_bits(&config, &board, SourceBackend::Surrogate, 8192, SAMPLE_FACTOR);
        let full_scan = health::scan(&full, CLAIMED_H).expect("valid claim");
        let surr_scan = health::scan(&surr, CLAIMED_H).expect("valid claim");
        assert_eq!(full_scan, (0, 0), "{}: full sim is healthy", ring.label());
        assert_eq!(surr_scan, full_scan, "{}: verdict parity", ring.label());
    }
}

#[test]
fn entropy_estimates_agree_across_backends() {
    for ring in presets() {
        let board = preset_board(&ring);
        let config = ring.stream_config();
        let full = sampled_bits(&config, &board, SourceBackend::FullSim, 20_000, SAMPLE_FACTOR);
        let surr =
            sampled_bits(&config, &board, SourceBackend::Surrogate, 20_000, SAMPLE_FACTOR);
        let h_full = entropy::min_entropy(&full).expect("enough bits");
        let h_surr = entropy::min_entropy(&surr).expect("enough bits");
        assert!(
            (h_full - h_surr).abs() < 0.08,
            "{}: min-entropy {h_full} vs {h_surr}",
            ring.label()
        );
        let m_full = entropy::markov_entropy(&full).expect("enough bits");
        let m_surr = entropy::markov_entropy(&surr).expect("enough bits");
        assert!(
            (m_full - m_surr).abs() < 0.08,
            "{}: markov {m_full} vs {m_surr}",
            ring.label()
        );
    }
}

/// Battery-grade bits for a (possibly corrupted) calibration, through
/// the repo's decimated phase-accumulation TRNG front end.
///
/// Direct trace sampling at a few periods per sample is quasi-periodic
/// for *any* backend (phase drifts ~σ/T per sample), so battery-quality
/// output requires decimation: the server samples every `k` periods,
/// with `k` fixed from the healthy calibration so the accumulated
/// jitter `sqrt(k)·σ_period` is half a period (the paper's quality
/// regime, same construction as the `ext_trng` experiment). The same
/// `k` is then applied to corrupted calibrations — a broken model must
/// be *detected downstream*, not silently re-tuned around.
fn battery_bits(model: &SurrogateModel, periods_per_sample: f64, count: usize) -> BitString {
    let sigma_acc = periods_per_sample.sqrt() * model.sigma_period_ps();
    let mut phase = PhaseModel::new(model.period_mean_ps, sigma_acc, SEED)
        .expect("calibrated period is positive")
        .with_duty(model.duty)
        .expect("calibrated duty is a proper fraction");
    phase.generate(count)
}

#[test]
fn quick_battery_passes_surrogate_bits_and_catches_corruption() {
    let ring = RingSpec::Str32;
    let board = preset_board(&ring);
    let model = Calibrator::default()
        .fit(&ring.stream_config(), &board, SEED)
        .expect("calibrates");
    // Decimation depth the server derives from the healthy calibration:
    // accumulated jitter over k periods is half a period (q = 0.5).
    let k = (0.5 * model.period_mean_ps / model.sigma_period_ps()).powi(2);

    // Healthy calibration: zero battery alarms, zero health alarms —
    // both on the decimated battery stream and on the raw trace samples.
    let good = battery_bits(&model, k, 30_000);
    let report = battery::run_quick(&good).expect("enough bits");
    assert!(
        report.all_passed(0.01),
        "healthy surrogate fails the quick battery:\n{}",
        report.to_table(0.01)
    );
    assert_eq!(health::scan(&good, CLAIMED_H).expect("valid claim"), (0, 0));
    let raw = model_bits(model, 8192);
    assert_eq!(health::scan(&raw, CLAIMED_H).expect("valid claim"), (0, 0));

    // Corruption 1: a biased duty cycle must trip monobit.
    let biased = SurrogateModel { duty: 0.66, ..model };
    let report =
        battery::run_quick(&battery_bits(&biased, k, 30_000)).expect("enough bits");
    assert!(
        !report.all_passed(0.01),
        "biased duty slipped through:\n{}",
        report.to_table(0.01)
    );

    // Corruption 2: zeroed jitter freezes the phase walk, so the same
    // decimation depth now yields a (near-)deterministic pattern the
    // structure tests must reject.
    let frozen = SurrogateModel {
        sigma_white_ps: 0.0,
        sigma_edge_ps: 0.0,
        sigma_flicker_ps: 0.0,
        ..model
    };
    let report =
        battery::run_quick(&battery_bits(&frozen, k, 30_000)).expect("enough bits");
    assert!(
        !report.all_passed(0.01),
        "jitter-free waveform slipped through:\n{}",
        report.to_table(0.01)
    );

    // Corruption 3: a near-constant output must raise 800-90B alarms.
    let stuck = SurrogateModel { duty: 0.95, ..model };
    let (rct, apt) =
        health::scan(&battery_bits(&stuck, k, 30_000), CLAIMED_H).expect("valid claim");
    assert!(rct + apt > 0, "near-constant stream raised no health alarm");
}

/// Valid near-balanced STR geometries (evenly-spaced on the FPGA
/// technology, so surrogate-eligible).
fn balanced_strs() -> impl Strategy<Value = (usize, usize)> {
    (5usize..=12).prop_map(|half| (2 * half, half.div_ceil(2) * 2))
}

/// Gate-jitter magnitudes to sweep, ps.
fn sigma_gs() -> impl Strategy<Value = f64> {
    (20u32..=80).prop_map(f64::from)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Eq. 5 scaling parity: across geometry and `sigma_g` the
    /// calibrated model's σ_period tracks the event-driven σ_period,
    /// and both sit inside the paper band around `sqrt(2)·σ_g`.
    #[test]
    fn calibrated_sigma_tracks_the_full_sim_across_the_sweep(
        (len, tokens) in balanced_strs(),
        sigma_g in sigma_gs(),
    ) {
        let tech = Technology::cyclone_iii().with_sigma_g_ps(sigma_g);
        let board = Board::new(tech, 0, 7);
        let config = StrConfig::new(len, tokens).expect("strategy yields valid counts");
        let stream_config = StreamConfig::Str(config.clone());
        prop_assume!(surrogate_eligible(&stream_config, &board, false));
        let run = measure::run_str(&config, &board, SEED, 800).expect("oscillates");
        let n = run.periods_ps.len() as f64;
        let mean = run.periods_ps.iter().sum::<f64>() / n;
        let full_sigma = (run.periods_ps.iter().map(|p| (p - mean).powi(2)).sum::<f64>()
            / n)
            .sqrt();
        let model = Calibrator::default()
            .fit(&stream_config, &board, SEED)
            .expect("calibrates");
        let ratio = model.sigma_period_ps() / full_sigma;
        prop_assert!(
            (0.6..=1.6).contains(&ratio),
            "model sigma {} vs full {} (ratio {ratio}) at L={len} NT={tokens} sigma_g={sigma_g}",
            model.sigma_period_ps(),
            full_sigma
        );
        // Both stay inside the empirical Eq. 5 band (tests/equations.rs
        // documents the factor-1.6 envelope; calibration windows add
        // sampling spread on top).
        let eq5 = analytic::str_sigma_period_ps(&board);
        let band = 2.0;
        for sigma in [full_sigma, model.sigma_period_ps()] {
            prop_assert!(
                sigma / eq5 < band && eq5 / sigma < band,
                "sigma {sigma} outside the Eq. 5 band {eq5} at sigma_g={sigma_g}"
            );
        }
    }

    /// Health-test *verdict* parity holds across sampler frequencies:
    /// both backends agree on whether the stream is flagged. Exact
    /// alarm counters are not compared — at near-commensurate factors
    /// (e.g. exactly 2 or 3 periods per sample) both backends alarm
    /// heavily, but the counts ride on individual jitter draws.
    #[test]
    fn health_parity_holds_across_sampler_frequencies(
        (len, tokens) in balanced_strs(),
        factor_tenths in 17u32..=33,
    ) {
        let factor = f64::from(factor_tenths) / 10.0;
        let board = Board::new(Technology::cyclone_iii(), 0, 7);
        let config = StrConfig::new(len, tokens).expect("valid counts");
        let stream_config = StreamConfig::Str(config);
        prop_assume!(surrogate_eligible(&stream_config, &board, false));
        let full = sampled_bits(&stream_config, &board, SourceBackend::FullSim, 4096, factor);
        let surr = sampled_bits(&stream_config, &board, SourceBackend::Surrogate, 4096, factor);
        let (full_rct, full_apt) = health::scan(&full, CLAIMED_H).expect("valid claim");
        let (surr_rct, surr_apt) = health::scan(&surr, CLAIMED_H).expect("valid claim");
        prop_assert_eq!(
            full_rct + full_apt > 0,
            surr_rct + surr_apt > 0,
            "factor {}: full ({}, {}) vs surrogate ({}, {})",
            factor, full_rct, full_apt, surr_rct, surr_apt
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Boundary configurations provably select the `FullSim` fallback:
    /// any STR whose Eq. 1 deviation exceeds the margin on a
    /// drafting-capable technology is ineligible, and a `Surrogate`
    /// request resolves to the full stream.
    #[test]
    fn boundary_configs_select_the_full_sim_fallback(
        len in 10usize..=24,
        pairs in 1usize..=11,
    ) {
        let tokens = 2 * pairs;
        prop_assume!(tokens + 1 < len);
        let config = StrConfig::new(len, tokens).expect("valid counts");
        let (actual, target) = analytic::design_rule(&config);
        let deviation = (actual / target).max(target / actual);
        prop_assume!(deviation > BOUNDARY_DEVIATION);
        let board = Board::new(Technology::asic_like(), 0, 7);
        let stream_config = StreamConfig::Str(config);
        prop_assert!(!surrogate_eligible(&stream_config, &board, false));
        let source =
            EntropySource::build(&stream_config, &board, SEED, None, SourceBackend::Surrogate)
                .expect("fallback builds");
        prop_assert_eq!(source.selected_backend(), SourceBackend::FullSim);
    }
}
