//! Integration tests asserting the paper's headline claims across the
//! whole crate stack, via the experiment layer at `Effort::Quick`.
//!
//! Each test states the claim in the paper's words (paraphrased) and
//! checks the corresponding *shape* — who wins, by roughly what factor —
//! rather than absolute silicon numbers.

use strentropy::experiments::{self, Effort};
use strentropy::rings::OscillationMode;

const SEED: u64 = 2012;

/// "We verified experimentally that STRs with NT = NB evolve into the
/// evenly-spaced mode for ring lengths varying from 4 to 96."
#[test]
fn claim_evenly_spaced_locking() {
    let result = experiments::fig5::run(Effort::Quick, SEED).expect("runs");
    assert_eq!(result.evenly_spaced.mode, OscillationMode::EvenlySpaced);
    assert_eq!(result.burst.mode, OscillationMode::Burst);
}

/// "For a 32-stage ring, evenly-spaced mode is obtained for
/// configurations where NT = {10, 12, 14, 16, 18, 20}."
#[test]
fn claim_locking_range_of_32_stage_ring() {
    let result = experiments::obs_a::run(Effort::Quick, SEED).expect("runs");
    let range = result.evenly_spaced_range();
    for nt in [10, 12, 14, 16, 18, 20] {
        assert!(range.contains(&nt), "NT = {nt} not evenly spaced: {range:?}");
    }
}

/// "Frequencies vary linearly with voltage, and the 96-stage STR
/// exhibits a lower voltage sensitivity than other ring configurations."
#[test]
fn claim_fig8_voltage_sensitivity_ordering() {
    let result = experiments::fig8::run(Effort::Quick, SEED).expect("runs");
    let excursion = |label: &str| {
        result
            .rings
            .iter()
            .find(|r| r.label == label)
            .expect("ring present")
            .sweep
            .excursion
    };
    let str96 = excursion("STR 96C");
    for other in ["IRO 5C", "IRO 80C", "STR 4C"] {
        assert!(
            str96 < excursion(other),
            "STR 96C ({str96}) must beat {other} ({})",
            excursion(other)
        );
    }
    // Linearity: R^2 of Fn vs V above 0.99 for every ring.
    for ring in &result.rings {
        let (v, fnorm): (Vec<f64>, Vec<f64>) = ring.sweep.normalized.iter().copied().unzip();
        let fit = strentropy::analysis::fit::linear(&v, &fnorm).expect("fits");
        assert!(fit.r_squared > 0.99, "{}: R^2 {}", ring.label, fit.r_squared);
    }
}

/// "RVV is slightly improved for the STR when we increase the number of
/// stages, which is not the case for the IRO." (Table I)
#[test]
fn claim_table1_rvv_trends() {
    let result = experiments::table1::run(Effort::Quick, SEED).expect("runs");
    // IRO: flat within a couple of points.
    let iros = result.iro_rows();
    let iro_spread = iros
        .iter()
        .map(|r| r.excursion)
        .fold(f64::MIN, f64::max)
        - iros.iter().map(|r| r.excursion).fold(f64::MAX, f64::min);
    assert!(iro_spread < 0.05, "IRO dF spread {iro_spread}");
    // STR: monotone improvement, by >= 8 points from 4C to 96C.
    let strs = result.str_rows();
    assert!(strs.first().expect("rows").excursion - strs.last().expect("rows").excursion > 0.08);
}

/// "STRs achieve much better robustness to extra-device frequency
/// variability at high frequencies than IROs." (Table II)
#[test]
fn claim_table2_process_robustness() {
    let result = experiments::table2::run(Effort::Quick, SEED).expect("runs");
    let str96 = result.row("STR 96C").expect("present");
    let iro3 = result.row("IRO 3C").expect("present");
    // Much narrower dispersion...
    assert!(str96.sigma_rel < iro3.sigma_rel / 2.0);
    // ...at a still-high frequency (hundreds of MHz, not tens like an
    // equally-long IRO).
    assert!(str96.frequencies_mhz.iter().all(|&f| f > 250.0));
}

/// "Both the IRO and STR exhibit a Gaussian jitter." (Fig. 9)
#[test]
fn claim_fig9_gaussian_jitter() {
    let result = experiments::fig9::run(Effort::Quick, SEED).expect("runs");
    assert!(result.str_panel.is_gaussian(0.001));
    assert!(result.iro_panel.is_gaussian(0.001));
}

/// "The curve shows a square-root accumulation tendency which verifies
/// Equation 4. Moreover, we could estimate sigma_g ~ 2 ps." (Fig. 11)
#[test]
fn claim_fig11_sqrt_law_and_sigma_g() {
    let result = experiments::fig11::run(Effort::Quick, SEED).expect("runs");
    assert!(result.fit.r_squared > 0.98);
    assert!((result.fitted_sigma_g_ps() - 2.0).abs() < 0.3);
}

/// "The measured values are relatively constant with respect to the
/// number of stages (between 2 ps and 4 ps)." (Fig. 12)
#[test]
fn claim_fig12_flat_str_jitter() {
    let result = experiments::fig12::run(Effort::Quick, SEED).expect("runs");
    for p in &result.points {
        assert!(
            (2.0..4.5).contains(&p.sigma_period_ps),
            "L = {}: sigma {}",
            p.length,
            p.sigma_period_ps
        );
    }
    assert!(result.flatness_ratio() < 1.5);
}

/// The STR/IRO jitter asymmetry in one picture: at 96 vs 80 stages the
/// IRO's jitter is an order of magnitude above the STR's.
#[test]
fn claim_jitter_asymmetry_at_scale() {
    let fig11 = experiments::fig11::run(Effort::Quick, SEED).expect("runs");
    let fig12 = experiments::fig12::run(Effort::Quick, SEED).expect("runs");
    let iro80 = fig11
        .points
        .iter()
        .find(|p| p.length == 80)
        .expect("measured")
        .sigma_period_ps;
    let str96 = fig12
        .points
        .iter()
        .find(|p| p.length == 96)
        .expect("measured")
        .sigma_period_ps;
    assert!(
        iro80 > 5.0 * str96,
        "IRO 80C sigma {iro80} vs STR 96C sigma {str96}"
    );
}
