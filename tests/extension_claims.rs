//! Integration tests for the extension experiments (beyond the paper's
//! own artifacts), at `Effort::Quick`.

use strentropy::experiments::{self, Effort};

const SEED: u64 = 2012;

/// EXT-DET: deterministic jitter accumulates linearly through IROs but
/// stays bounded in STRs (Sec. IV-B quantified).
#[test]
fn ext_det_accumulation_contrast() {
    let result = experiments::ext_det::run(Effort::Quick, SEED).expect("runs");
    let iro_first = &result.iro_rows.first().expect("rows").response;
    let iro_last = &result.iro_rows.last().expect("rows").response;
    let str_last = &result.str_rows.last().expect("rows").response;
    assert!(iro_last.det_amplitude_ps > 4.0 * iro_first.det_amplitude_ps);
    assert!(str_last.det_amplitude_ps < iro_last.det_amplitude_ps / 4.0);
}

/// EXT-METHOD: Eq. 6 is exact for IROs and biased low for STRs, with the
/// period anti-correlation as the visible mechanism.
#[test]
fn ext_method_bias_mechanism() {
    let result = experiments::ext_method::run(Effort::Quick, SEED).expect("runs");
    let ring = |label: &str| {
        result
            .rings
            .iter()
            .find(|r| r.label == label)
            .expect("ring present")
    };
    assert!(ring("IRO 5C").lag1_autocorrelation.abs() < 0.05);
    assert!(ring("STR 96C").lag1_autocorrelation < -0.1);
    for p in &ring("STR 96C").points {
        assert!(p.measurement.sigma_p_ps < p.direct_sigma_ps);
    }
}

/// EXT-FLICKER: slow delay noise bends the Allan curve and corrupts the
/// divider method at large settings — invisible in the white model.
#[test]
fn ext_flicker_diagnostics() {
    let result = experiments::ext_flicker::run(Effort::Quick, SEED).expect("runs");
    let w256 = experiments::ext_flicker::ExtFlickerResult::adev_at(&result.white, 256)
        .expect("probed");
    let f256 = experiments::ext_flicker::ExtFlickerResult::adev_at(&result.flicker, 256)
        .expect("probed");
    assert!(f256 > 2.0 * w256, "flicker floor: {f256} vs {w256}");
    let (_, flicker_n64) = result.flicker.divider_estimates[1];
    assert!(flicker_n64 > 1.5 * result.flicker.sigma_direct_ps);
}

/// EXT-RESTART: restarts diverge as sqrt(k) (true randomness) and the
/// sampled bit's entropy rises from 0 toward 1 with the delay.
#[test]
fn ext_restart_true_randomness() {
    let result = experiments::ext_restart::run(Effort::Quick, SEED).expect("runs");
    for row in &result.dispersion {
        // The STR curve carries a small constant floor (stationary
        // token-spacing variance), so the pure sqrt fit is a little
        // looser than the IRO's.
        assert!(row.sqrt_fit_r2 > 0.85, "{}: R^2 {}", row.label, row.sqrt_fit_r2);
    }
    let first = result.entropy_onset.first().expect("points").1;
    let last = result.entropy_onset.last().expect("points").1;
    assert!(first < 0.5 && last > 0.8, "onset {first} -> {last}");
}

/// EXT-MULTI: entropy per sample grows with ring length when every
/// phase is harvested — "each stage an independent entropy source".
#[test]
fn ext_multi_entropy_scales_with_length() {
    let result = experiments::ext_multi::run(Effort::Quick, SEED).expect("runs");
    for row in &result.rows {
        assert!(
            row.multiphase_entropy > row.single_phase_entropy,
            "L={}",
            row.length
        );
    }
    let gain_first =
        result.rows[0].multiphase_entropy - result.rows[0].single_phase_entropy;
    let gain_last = result.rows[2].multiphase_entropy - result.rows[2].single_phase_entropy;
    assert!(gain_last > gain_first, "gain grows with L");
}

/// EXT-COHERENT: the STR pair's beat calibration survives the board
/// farm better than the IRO pair's.
#[test]
fn ext_coherent_calibration_stability() {
    let result = experiments::ext_coherent::run(Effort::Quick, SEED).expect("runs");
    let iro = &result.rows[0];
    let strr = &result.rows[1];
    assert!(strr.beat_cv < iro.beat_cv);
}

/// Table II's five-board sigma_rel values carry wide (quantified)
/// confidence intervals, yet the STR-96 interval stays below the short
/// rings' point estimates — the claim is robust to the sample size.
#[test]
fn table2_confidence_intervals() {
    let result = experiments::table2::run(Effort::Quick, SEED).expect("runs");
    for row in &result.rows {
        assert!(row.sigma_rel_ci.0 < row.sigma_rel && row.sigma_rel < row.sigma_rel_ci.1);
        // 5 samples: upper/lower ratio is large.
        assert!(row.sigma_rel_ci.1 / row.sigma_rel_ci.0 > 2.0);
    }
    let str96 = result.row("STR 96C").expect("present");
    let iro3 = result.row("IRO 3C").expect("present");
    assert!(
        str96.sigma_rel_ci.1 < iro3.sigma_rel,
        "STR 96C upper bound {} vs IRO 3C point {}",
        str96.sigma_rel_ci.1,
        iro3.sigma_rel
    );
}
