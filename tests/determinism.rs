//! Determinism regression tests for the parallel experiment runner.
//!
//! The seed-tree contract: results depend only on `(effort, seed)`,
//! never on the worker count or on how the scheduler interleaves jobs.
//! Each test runs an experiment through [`ExperimentRunner`] at one
//! worker and at several workers and demands *byte-identical* output —
//! both the structured result (via `PartialEq`, which on `f64` fields
//! is exact bit-for-bit equality up to NaN) and the formatted report.

use strentropy::experiments::runner::ExperimentRunner;
use strentropy::experiments::{fig5, obs_a, table2, Effort};
use strentropy::sim::{JobError, RetryPolicy, SimError, SweepRunner};

const SEED: u64 = 2012;

/// Worker counts to compare against the single-threaded reference. The
/// container may expose a single CPU; oversubscribing still exercises
/// every interleaving hazard (work stealing order, chunked claiming),
/// which is exactly what the contract must be immune to.
const THREAD_COUNTS: [usize; 3] = [2, 4, 7];

#[test]
fn fig5_is_identical_across_thread_counts() {
    let reference = fig5::run_with(&ExperimentRunner::new(Effort::Quick, SEED).with_threads(1))
        .expect("simulates");
    let reference_text = reference.to_string();
    for threads in THREAD_COUNTS {
        let run = fig5::run_with(
            &ExperimentRunner::new(Effort::Quick, SEED).with_threads(threads),
        )
        .expect("simulates");
        assert_eq!(run, reference, "fig5 diverged at {threads} threads");
        assert_eq!(
            run.to_string(),
            reference_text,
            "fig5 report bytes diverged at {threads} threads"
        );
    }
}

#[test]
fn obs_a_is_identical_across_thread_counts() {
    let reference = obs_a::run_with(&ExperimentRunner::new(Effort::Quick, SEED).with_threads(1))
        .expect("simulates");
    let reference_text = reference.to_string();
    for threads in THREAD_COUNTS {
        let run = obs_a::run_with(
            &ExperimentRunner::new(Effort::Quick, SEED).with_threads(threads),
        )
        .expect("simulates");
        assert_eq!(run, reference, "obs_a diverged at {threads} threads");
        assert_eq!(
            run.to_string(),
            reference_text,
            "obs_a report bytes diverged at {threads} threads"
        );
    }
}

#[test]
fn repeated_runs_with_one_seed_replay_exactly() {
    // Same (effort, seed) twice through fresh runners — stage seed
    // derivation must not depend on runner history or process state.
    let a = obs_a::run(Effort::Quick, SEED).expect("simulates");
    let b = obs_a::run(Effort::Quick, SEED).expect("simulates");
    assert_eq!(a, b);
    // ...and a different seed must actually change the measurements.
    let c = obs_a::run(Effort::Quick, SEED + 1).expect("simulates");
    assert_ne!(a, c, "distinct seeds must draw distinct noise");
}

#[test]
fn resilient_sweep_is_identical_across_thread_counts() {
    // The fault-tolerance layer must honour the same contract as the
    // healthy path: with panicking and failing jobs in the mix, the
    // surviving results, the sorted failure manifest and its JSON
    // rendering are all byte-identical at any worker count — retries
    // re-fork the same per-job seed, so attempts differ only in budget.
    let configs: Vec<usize> = (0..24).collect();
    let policy = RetryPolicy::default().with_attempts(3).with_max_events(10_000);
    let sweep = |threads: usize| {
        SweepRunner::new(SEED).with_threads(threads).run_resilient(
            &configs,
            policy,
            |job, _meter| -> Result<(usize, u64), JobError<SimError>> {
                if job.index % 7 == 3 {
                    panic!("injected panic in job {}", job.index);
                }
                if job.index % 11 == 5 {
                    return Err(JobError::Failed(SimError::UnknownNetName(format!(
                        "fault{}",
                        job.index
                    ))));
                }
                // A seed-dependent payload: any cross-thread seed mixup
                // changes the bytes, not just the slot pattern.
                Ok((job.index, job.seed()))
            },
        )
    };
    let reference = sweep(1);
    assert!(!reference.failures.is_empty(), "injected failures must appear");
    assert!(reference.successes() > 0, "partial results must survive");
    for threads in [2, 8] {
        let run = sweep(threads);
        assert_eq!(
            run.results, reference.results,
            "surviving results diverged at {threads} threads"
        );
        assert_eq!(
            run.failure_manifest_json(),
            reference.failure_manifest_json(),
            "failure manifest bytes diverged at {threads} threads"
        );
    }
}

#[test]
fn batching_policy_does_not_leak_into_results() {
    // Quick and Full use different chunk sizes; determinism must hold
    // for any chunking, which the multi-thread sweeps above cover only
    // at the policy's own chunk. Here table2 (20 jobs, shared per-ring
    // seeds) runs at 1 and 4 threads, where Quick's chunked cursor
    // claims jobs in batches.
    let reference = table2::run_with(
        &ExperimentRunner::new(Effort::Quick, SEED).with_threads(1),
    )
    .expect("simulates");
    let parallel = table2::run_with(
        &ExperimentRunner::new(Effort::Quick, SEED).with_threads(4),
    )
    .expect("simulates");
    assert_eq!(parallel, reference);
    assert_eq!(parallel.to_string(), reference.to_string());
}
