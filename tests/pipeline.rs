//! Cross-crate pipeline tests: the full stack from event-driven
//! simulation through analysis to TRNG evaluation, plus artifact export.

use strentropy::prelude::*;
use strentropy::trng::elementary::{ElementaryTrng, EntropySource};

/// sim -> rings -> trace -> VCD: the exported waveform is a well-formed
/// VCD document containing every stage of the ring.
#[test]
fn ring_waveforms_export_to_vcd() {
    let board = Board::new(Technology::cyclone_iii(), 0, 5);
    let mut sim = Simulator::new(3);
    let config = StrConfig::new(8, 4).expect("valid counts");
    let handle = strentropy::rings::str_ring::build(&config, &board, &mut sim).expect("wires");
    for &net in handle.nets() {
        sim.watch(net).expect("net exists");
    }
    sim.run_until(Time::from_ns(100.0)).expect("no limit");

    let mut out = Vec::new();
    sim.write_vcd(&mut out, "str8").expect("write to Vec");
    let text = String::from_utf8(out).expect("ascii");
    assert!(text.contains("$timescale 1 fs $end"));
    assert!(text.contains("$scope module str8 $end"));
    for i in 0..8 {
        assert!(text.contains(&format!("str{i}")), "stage {i} missing");
    }
    // Time-ordered change records exist.
    assert!(text.matches('#').count() > 50);
}

/// rings -> analysis: frequency and jitter measured through the public
/// API agree with the paper-calibrated analytic model.
#[test]
fn measured_statistics_match_analytic_models() {
    let board = Board::new(Technology::cyclone_iii(), 0, 5);
    for &(l, nt) in &[(8usize, 4usize), (24, 12), (48, 24)] {
        let config = StrConfig::new(l, nt).expect("valid counts");
        let run = measure::run_str(&config, &board, 9, 400).expect("oscillates");
        let predicted = analytic::str_frequency_mhz(&config, &board);
        assert!(
            (run.frequency_mhz / predicted - 1.0).abs() < 0.05,
            "L={l}: {} vs {predicted}",
            run.frequency_mhz
        );
    }
    for &l in &[3usize, 9, 25] {
        let config = IroConfig::new(l).expect("valid length");
        let run = measure::run_iro(&config, &board, 9, 400).expect("oscillates");
        let predicted = analytic::iro_frequency_mhz(&config, &board);
        assert!(
            (run.frequency_mhz / predicted - 1.0).abs() < 0.05,
            "L={l}: {} vs {predicted}",
            run.frequency_mhz
        );
    }
}

/// rings -> trng: full bit-exact path — simulate an STR, sample it with
/// a reference clock, condition the bits — is deterministic and
/// produces both symbols.
#[test]
fn simulated_trng_bits_end_to_end() {
    let board = Board::new(Technology::cyclone_iii(), 0, 5);
    let source = EntropySource::Str(StrConfig::new(16, 8).expect("valid counts"));
    let trng = ElementaryTrng::new(source, 7_777.0, 20.0).expect("valid");
    let bits = trng.generate_simulated(&board, 11, 600).expect("simulates");
    assert_eq!(bits.len(), 600);
    assert!(bits.count_ones() > 50 && bits.count_zeros() > 50);
    let again = trng.generate_simulated(&board, 11, 600).expect("simulates");
    assert_eq!(bits, again, "same seed, same bits");
    let other = trng.generate_simulated(&board, 12, 600).expect("simulates");
    assert_ne!(bits, other, "different seed, different bits");

    // Conditioning reduces bias below the raw stream's.
    let raw_bias = entropy::bias(&bits).expect("non-empty").abs();
    let vn = postprocess::von_neumann(&bits);
    if vn.len() >= 100 {
        let vn_bias = entropy::bias(&vn).expect("non-empty").abs();
        assert!(vn_bias < raw_bias + 0.1);
    }
}

/// analysis <- rings: the divider measurement applied to a simulated
/// IRO recovers the directly computed jitter (the EXT-METHOD headline
/// at integration scope).
#[test]
fn divider_method_on_simulated_iro() {
    let board = Board::new(Technology::cyclone_iii(), 0, 5);
    let config = IroConfig::new(9).expect("valid length");
    let run = measure::run_iro(&config, &board, 21, 8_000).expect("oscillates");
    let (direct, estimated, rel) =
        strentropy::analysis::divider::validate_against_direct(&run.periods_ps, 8)
            .expect("measures");
    assert!(rel < 0.15, "direct {direct} vs estimated {estimated}");
}

/// Determinism across the whole stack: an experiment rerun with the
/// same seed is bit-identical; a different seed moves the statistics.
#[test]
fn experiments_are_reproducible() {
    use strentropy::experiments::{fig12, Effort};
    let a = fig12::run(Effort::Quick, 7).expect("runs");
    let b = fig12::run(Effort::Quick, 7).expect("runs");
    assert_eq!(a, b);
    let c = fig12::run(Effort::Quick, 8).expect("runs");
    assert_ne!(a, c);
}

/// Boards are independent silicon: the same ring measured on different
/// boards of the farm gives close but not identical frequencies.
#[test]
fn board_farm_gives_distinct_but_close_frequencies() {
    let farm = BoardFarm::new(Technology::cyclone_iii(), 5, 77);
    let config = StrConfig::new(24, 12).expect("valid counts");
    let freqs: Vec<f64> = farm
        .iter()
        .map(|b| {
            measure::run_str(&config, b, 3, 200)
                .expect("oscillates")
                .frequency_mhz
        })
        .collect();
    let mean = freqs.iter().sum::<f64>() / freqs.len() as f64;
    for f in &freqs {
        assert!((f / mean - 1.0).abs() < 0.05, "outlier {f} vs mean {mean}");
    }
    let all_same = freqs.windows(2).all(|w| w[0] == w[1]);
    assert!(!all_same, "process variation must differentiate boards");
}
