//! Cross-crate property-based tests: arbitrary valid ring
//! configurations, end to end through the simulator and the analytic
//! models. Case counts are kept small because every case is a full
//! event-driven simulation.

use proptest::prelude::*;

use strentropy::prelude::*;

fn quiet_board() -> Board {
    Board::new(
        Technology::cyclone_iii()
            .with_sigma_g_ps(0.0)
            .with_sigma_intra(0.0)
            .with_sigma_inter(0.0),
        0,
        1,
    )
}

/// Valid `(length, tokens)` pairs for small STRs.
fn str_configs() -> impl Strategy<Value = (usize, usize)> {
    (4usize..=24).prop_flat_map(|len| {
        let max_pairs = (len - 1) / 2;
        (Just(len), 1..=max_pairs).prop_map(|(len, pairs)| (len, 2 * pairs))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every valid STR configuration oscillates, locks evenly spaced
    /// (Charlie-dominated fabric), and lands on the general timing-
    /// closure frequency within 3%.
    #[test]
    fn any_valid_str_matches_the_closure_formula((len, tokens) in str_configs()) {
        let board = quiet_board();
        let config = StrConfig::new(len, tokens).expect("strategy yields valid counts");
        let run = measure::run_str(&config, &board, 7, 150).expect("oscillates");
        prop_assert_eq!(
            mode::classify_half_periods(&run.half_periods_ps),
            OscillationMode::EvenlySpaced
        );
        let predicted = 1e6 / analytic::str_period_general_ps(&config, &board);
        prop_assert!(
            (run.frequency_mhz / predicted - 1.0).abs() < 0.03,
            "L={} NT={}: sim {} vs predicted {}",
            len, tokens, run.frequency_mhz, predicted
        );
    }

    /// Every IRO length oscillates at the analytic two-lap period.
    #[test]
    fn any_iro_matches_the_two_lap_period(len in 1usize..=20) {
        let board = quiet_board();
        let config = IroConfig::new(len).expect("positive length");
        let run = measure::run_iro(&config, &board, 7, 150).expect("oscillates");
        let predicted = analytic::iro_frequency_mhz(&config, &board);
        prop_assert!(
            (run.frequency_mhz / predicted - 1.0).abs() < 1e-6,
            "L={len}: sim {} vs predicted {}",
            run.frequency_mhz,
            predicted
        );
    }

    /// With jitter enabled, every valid STR keeps its period jitter in
    /// a bounded band independent of the configuration. Strongly
    /// unbalanced rings sit on the *linear* part of the Charlie curve
    /// where the smoothing vanishes (the paper's own caveat about its
    /// 4-stage STR), so the band is wider than the NT = NB value but
    /// never grows with length the way an IRO's does.
    #[test]
    fn any_str_has_bounded_jitter((len, tokens) in str_configs()) {
        let board = Board::new(
            Technology::cyclone_iii()
                .with_sigma_intra(0.0)
                .with_sigma_inter(0.0),
            0,
            1,
        );
        let config = StrConfig::new(len, tokens).expect("valid counts");
        let run = measure::run_str(&config, &board, 11, 400).expect("oscillates");
        let sigma = jitter::period_jitter(&run.periods_ps).expect("enough");
        // Token- or bubble-starved rings degrade markedly (the scarce
        // species stops averaging and the Charlie smoothing is lost) —
        // which is why the paper designs at NT = NB — but the jitter
        // never diverges: it stays within a small multiple of the
        // equal-length IRO's sqrt(2L) sigma_g.
        let sigma_g = board.technology().sigma_g_ps();
        let iro_equiv = (2.0 * len as f64).sqrt() * sigma_g;
        prop_assert!(
            sigma > 1.0 && sigma < 3.0 * iro_equiv,
            "L={} NT={}: sigma {} vs IRO-equivalent {}",
            len, tokens, sigma, iro_equiv
        );
        // Balanced rings stay in the paper's 2-4 ps band.
        if tokens * 2 == len {
            prop_assert!((2.0..4.5).contains(&sigma), "balanced sigma {sigma}");
        }
    }
}
