//! The paper's numbered equations, validated against the event-driven
//! simulation (not against themselves): each test measures the
//! simulated system and checks the equation's prediction.

use strentropy::prelude::*;

fn quiet_board() -> Board {
    Board::new(
        Technology::cyclone_iii()
            .with_sigma_intra(0.0)
            .with_sigma_inter(0.0),
        0,
        1,
    )
}

/// Eq. 1 / Eq. 2 — with `Dff = Drr` (single-LUT stages), `NT = NB`
/// satisfies the evenly-spaced design rule, and indeed every `NT = NB`
/// ring locks evenly spaced.
#[test]
fn eq1_design_rule_locks_evenly_spaced_mode() {
    let board = quiet_board();
    for &l in &[4usize, 8, 16, 24] {
        let config = StrConfig::new(l, l / 2).expect("valid counts");
        let (ratio, target) = analytic::design_rule(&config);
        assert_eq!(ratio, target);
        let run = measure::run_str(&config, &board, 3, 300).expect("oscillates");
        assert_eq!(
            mode::classify_half_periods(&run.half_periods_ps),
            OscillationMode::EvenlySpaced,
            "L = {l}"
        );
    }
}

/// Eq. 3 — the Charlie delay of a simulated `NT = NB` ring equals
/// `charlie(0) = Ds + Dcharlie` per stage: the period is `2 L
/// charlie(0) / NT` within 1%.
#[test]
fn eq3_charlie_delay_shapes_the_period() {
    let board = quiet_board();
    let tech = board.technology();
    let charlie0 = tech.lut_delay_ps() + tech.charlie_delay_ps();
    for &l in &[8usize, 16, 32] {
        let config = StrConfig::new(l, l / 2)
            .expect("valid counts")
            .with_routing_ps(0.0)
            .expect("valid routing");
        let run = measure::run_str(&config, &board, 3, 200).expect("oscillates");
        let period = 1e6 / run.frequency_mhz;
        let predicted = 2.0 * l as f64 * charlie0 / (l as f64 / 2.0);
        assert!(
            (period / predicted - 1.0).abs() < 0.01,
            "L = {l}: {period} vs {predicted}"
        );
    }
}

/// Eq. 4 — IRO period jitter follows `sigma_p = sqrt(2k) sigma_g`
/// within 10% for every measured length.
#[test]
fn eq4_iro_jitter_accumulation() {
    let board = quiet_board();
    let sigma_g = board.technology().sigma_g_ps();
    for &k in &[5usize, 15, 41] {
        let config = IroConfig::new(k).expect("valid length");
        let run = measure::run_iro(&config, &board, 5, 4_000).expect("oscillates");
        let sigma = jitter::period_jitter(&run.periods_ps).expect("enough");
        let predicted = (2.0 * k as f64).sqrt() * sigma_g;
        assert!(
            (sigma / predicted - 1.0).abs() < 0.10,
            "k = {k}: {sigma} vs {predicted}"
        );
    }
}

/// Eq. 5 — STR period jitter is independent of the ring length and of
/// the order of `sqrt(2) sigma_g`: within a factor 1.6 of the
/// prediction at every length, with no growth trend.
#[test]
fn eq5_str_jitter_is_length_independent() {
    let board = quiet_board();
    let predicted = std::f64::consts::SQRT_2 * board.technology().sigma_g_ps();
    let mut sigmas = Vec::new();
    for &l in &[8usize, 32, 96] {
        let config = StrConfig::new(l, l / 2).expect("valid counts");
        let run = measure::run_str(&config, &board, 5, 4_000).expect("oscillates");
        let sigma = jitter::period_jitter(&run.periods_ps).expect("enough");
        assert!(
            sigma / predicted < 1.6 && sigma / predicted > 0.6,
            "L = {l}: {sigma} vs {predicted}"
        );
        sigmas.push(sigma);
    }
    let spread = sigmas.iter().copied().fold(f64::MIN, f64::max)
        / sigmas.iter().copied().fold(f64::MAX, f64::min);
    assert!(spread < 1.25, "sigma spread over 12x length: {spread}");
}

/// Eq. 6 — the divider method: on i.i.d. periods (IRO), `sigma_p =
/// sigma_cc_mes / (2 sqrt(n))` recovers the true jitter for several
/// divider settings.
#[test]
fn eq6_divider_method_on_iid_periods() {
    let board = quiet_board();
    let config = IroConfig::new(5).expect("valid length");
    let run = measure::run_iro(&config, &board, 13, 16_000).expect("oscillates");
    let direct = jitter::period_jitter(&run.periods_ps).expect("enough");
    for &n in &[4usize, 16] {
        let m = strentropy::analysis::divider::measure(&run.periods_ps, n).expect("measures");
        assert!(
            (m.sigma_p_ps / direct - 1.0).abs() < 0.12,
            "n = {n}: {} vs {direct}",
            m.sigma_p_ps
        );
        assert!(m.normality.passes(0.001), "hypothesis check");
    }
}

/// Eq. 7 — `sigma_g = sigma_p / sqrt(2k)`: back-computing `sigma_g`
/// from different IRO lengths gives a consistent value equal to the
/// technology's configured local jitter.
#[test]
fn eq7_sigma_g_extraction_is_consistent() {
    let board = quiet_board();
    let true_sigma_g = board.technology().sigma_g_ps();
    let mut estimates = Vec::new();
    for &k in &[9usize, 25, 60] {
        let config = IroConfig::new(k).expect("valid length");
        let run = measure::run_iro(&config, &board, 17, 4_000).expect("oscillates");
        let sigma = jitter::period_jitter(&run.periods_ps).expect("enough");
        estimates.push(sigma / (2.0 * k as f64).sqrt());
    }
    for e in &estimates {
        assert!((e - true_sigma_g).abs() < 0.25, "estimate {e} vs {true_sigma_g}");
    }
}
